"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that the package can also be installed in environments whose tooling only
supports legacy (``setup.py``-based) editable installs, e.g.::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "PREDIcT: predicting the runtime of large-scale iterative analytics "
        "(VLDB 2013) - full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            # The prediction daemon + client CLI (docs/SERVICE.md); the
            # uninstalled spelling is ``python -m repro.service``.
            "repro-predict = repro.service.cli:main",
        ],
    },
    extras_require={
        "dev": ["pytest", "pytest-benchmark", "hypothesis"],
        # Opt-in compiled kernel tier (--kernel-tier numba; docs/KERNELS.md).
        "numba": ["numba"],
    },
)
