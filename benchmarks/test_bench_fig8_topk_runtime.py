"""Figure 8: top-k ranking end-to-end runtime prediction error.

(a) cost model trained on sample runs only;
(b) cost model trained on sample runs plus historical actual runs.
"""

from bench_utils import RUNTIME_RATIOS, publish

from repro.experiments import figures


def test_bench_fig8a_sample_runs_only(benchmark, ctx, results_dir):
    result = benchmark.pedantic(
        lambda: figures.fig8_topk_runtime(ctx, ratios=RUNTIME_RATIOS, use_history=False),
        rounds=1,
        iterations=1,
    )
    publish(results_dir, "fig8a_topk_runtime_no_history", result.render())
    assert set(result.sweep) == {"LJ", "Wiki", "UK"}
    assert all(0.0 < r2 <= 1.0 for r2 in result.extras["r_squared"].values())


def test_bench_fig8b_with_history(benchmark, ctx, results_dir):
    result = benchmark.pedantic(
        lambda: figures.fig8_topk_runtime(ctx, ratios=RUNTIME_RATIOS, use_history=True),
        rounds=1,
        iterations=1,
    )
    publish(results_dir, "fig8b_topk_runtime_with_history", result.render())
    assert result.extras["used_history"] is True
    assert all(r2 > 0.7 for r2 in result.extras["r_squared"].values())
