"""Performance regression guard for the CSR / vectorized superstep fast path.

Runs PageRank over a 50k-vertex uniform random graph through both engine
paths -- the scalar per-vertex loop on a ``DiGraph`` and the vectorized batch
loop on the frozen ``CSRGraph`` -- and records the wall-clock speedup under
``benchmarks/results/csr_fastpath_speedup.txt``.  The run fails if the fast
path falls below 5x (the ISSUE-1 acceptance bar), so a future change cannot
silently lose the optimisation.  The two paths must also still agree on
counters and convergence, otherwise the "speedup" would be comparing
different computations.
"""

from __future__ import annotations

import time

from bench_utils import bench_smoke, publish
from repro.algorithms.pagerank import PageRank, PageRankConfig
from repro.bsp.engine import BSPEngine, EngineConfig
from repro.cluster.cost_profile import DETERMINISTIC_PROFILE
from repro.cluster.spec import ClusterSpec
from repro.graph import generators

SMOKE = bench_smoke()

NUM_VERTICES = 2_000 if SMOKE else 50_000
NUM_EDGES = 16_000 if SMOKE else 400_000
SUPERSTEPS = 3
MIN_SPEEDUP = 5.0


def test_bench_csr_fastpath(results_dir):
    frozen = generators.uniform_csr(NUM_VERTICES, NUM_EDGES, seed=17, name="fastpath-50k")
    scalar_graph = frozen.to_digraph()
    engine = BSPEngine(
        cluster=ClusterSpec(num_nodes=1, workers_per_node=8),
        cost_profile=DETERMINISTIC_PROFILE,
    )
    config = PageRankConfig(tolerance=1e-12)

    def timed_run(graph, vectorized):
        engine_config = EngineConfig(
            num_workers=8, max_supersteps=SUPERSTEPS, runtime_seed=1,
            vectorized=vectorized,
        )
        start = time.perf_counter()
        result = engine.run(graph, PageRank(), config, engine_config)
        return time.perf_counter() - start, result

    scalar_time, scalar_result = timed_run(scalar_graph, vectorized=False)
    vector_time, vector_result = timed_run(frozen, vectorized=True)

    # The speedup is only meaningful if both paths did identical work.
    assert scalar_result.num_iterations == vector_result.num_iterations
    assert scalar_result.convergence_history == vector_result.convergence_history
    for left, right in zip(scalar_result.iterations, vector_result.iterations):
        assert left.graph_feature_dict() == right.graph_feature_dict()

    speedup = scalar_time / vector_time
    lines = [
        "CSR fast-path speedup (PageRank, "
        f"{NUM_VERTICES:,} vertices / {NUM_EDGES:,} edges / {SUPERSTEPS} supersteps)",
        "",
        f"  scalar path      : {scalar_time * 1000:9.1f} ms",
        f"  vectorized path  : {vector_time * 1000:9.1f} ms",
        f"  speedup          : {speedup:9.1f} x   (regression floor: {MIN_SPEEDUP:.0f}x)",
    ]
    if SMOKE:
        lines.append("  smoke mode: reduced sizes, floor not enforced")
    publish(results_dir, "csr_fastpath_speedup", "\n".join(lines))
    if not SMOKE:
        assert speedup >= MIN_SPEEDUP, (
            f"vectorized superstep speedup regressed: {speedup:.1f}x < {MIN_SPEEDUP}x"
        )
