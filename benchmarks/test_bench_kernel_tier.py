"""Performance regression guard for the compiled kernel tier.

Runs top-k ranking -- whose batch fold is dominated by the segment
sort/unique/top-k kernel -- over a uniform random graph once per kernel tier
and records the fold-phase speedup under
``benchmarks/results/kernel_tier_speedup.txt``.  The guarded number is the
**fold phase**: the time spent inside ``compute_batch``, which is exactly
where the kernel tier dispatches (routing, delivery and accounting are
shared by both tiers).

The 2x floor is enforced only when numba is importable *and* the host has at
least two cores: without numba the "numba" tier silently resolves to the
NumPy reference (by design -- see ``docs/KERNELS.md``), and on a single core
the JIT'd kernels still win but shared single-core runners are too noisy for
a hard gate.  Either caveat is recorded in the published result instead.

Both tiers must produce identical results -- the bit-identity contract --
otherwise the "speedup" would be comparing different computations.
"""

from __future__ import annotations

import os
import time

from bench_utils import bench_smoke, publish, warm_up
from repro.algorithms.topk_ranking import TopKRanking, TopKRankingConfig
from repro.bsp.engine import BSPEngine, EngineConfig
from repro.bsp.kernels import available_kernel_tiers, get_kernels, numba_available
from repro.bsp.kernels import reference as ref_kernels
from repro.cluster.cost_profile import DETERMINISTIC_PROFILE
from repro.cluster.spec import ClusterSpec
from repro.graph import generators

SMOKE = bench_smoke()

NUM_VERTICES = 1_500 if SMOKE else 20_000
NUM_EDGES = 6_000 if SMOKE else 120_000
SUPERSTEPS = 5
MIN_SPEEDUP = 2.0


def available_cores() -> int:
    return os.cpu_count() or 1


class FoldTimed(TopKRanking):
    """Accumulates the wall-clock time spent in the batch fold."""

    def __init__(self) -> None:
        super().__init__()
        self.fold_seconds = 0.0

    def compute_batch(self, batch, config) -> None:
        start = time.perf_counter()
        super().compute_batch(batch, config)
        self.fold_seconds += time.perf_counter() - start


def test_numpy_tier_binds_reference_directly():
    """The numpy tier must stay zero-overhead: the dispatch table binds the
    reference functions themselves, not wrappers, so the pure-NumPy path's
    performance is unchanged by the tier machinery *by construction*."""
    kernels = get_kernels("numpy")
    assert kernels.segment_left_fold_sums is ref_kernels.segment_left_fold_sums
    assert kernels.masked_segment_left_fold is ref_kernels.masked_segment_left_fold
    assert kernels.segment_unique_topk_desc is ref_kernels.segment_unique_topk_desc
    assert kernels.segment_unique_records is ref_kernels.segment_unique_records
    assert kernels.pack_rank_keys is ref_kernels.pack_rank_keys
    assert kernels.filter_range is ref_kernels.filter_range


def test_bench_kernel_tier(results_dir):
    frozen = generators.uniform_csr(NUM_VERTICES, NUM_EDGES, seed=7, name="kt-20k")
    engine = BSPEngine(
        cluster=ClusterSpec(num_nodes=1, workers_per_node=8),
        cost_profile=DETERMINISTIC_PROFILE,
    )
    config = TopKRankingConfig(k=8, tolerance=1e-9, max_iterations=60)

    def timed_run(tier: str):
        algorithm = FoldTimed()
        engine_config = EngineConfig(
            num_workers=8, max_supersteps=SUPERSTEPS, runtime_seed=1,
            collect_vertex_values=True, kernel_tier=tier,
        )
        # Untimed warm-up pass: JIT compilation (compiled tier) and page
        # faults land here, not in the timed run.
        warm_up(lambda: engine.run(frozen, algorithm, config, engine_config))
        algorithm.fold_seconds = 0.0
        start = time.perf_counter()
        result = engine.run(frozen, algorithm, config, engine_config)
        return time.perf_counter() - start, algorithm.fold_seconds, result

    numpy_time, numpy_fold, numpy_result = timed_run("numpy")
    numba_time, numba_fold, numba_result = timed_run("numba")

    # The speedup is only meaningful if both tiers did identical work --
    # and the bit-identity contract says they must.
    assert numpy_result.num_iterations == numba_result.num_iterations
    assert numpy_result.convergence_history == numba_result.convergence_history
    assert numpy_result.vertex_values == numba_result.vertex_values
    for left, right in zip(numpy_result.iterations, numba_result.iterations):
        assert left.graph_feature_dict() == right.graph_feature_dict()
    assert numpy_result.kernel_tier == "numpy"
    assert numba_result.kernel_tier == ("numba" if numba_available() else "numpy")

    fold_speedup = numpy_fold / numba_fold
    run_speedup = numpy_time / numba_time
    enforce = numba_available() and available_cores() >= 2 and not SMOKE
    lines = [
        "Compiled kernel tier speedup (numpy reference fold vs. numba nogil "
        f"kernels, {NUM_VERTICES:,} vertices / {NUM_EDGES:,} edges / "
        f"{SUPERSTEPS} supersteps)",
        "",
        f"  kernel tiers available : {', '.join(available_kernel_tiers())}",
        f"  cpu cores available    : {available_cores()}",
        f"  numpy fold phase       : {numpy_fold * 1000:9.1f} ms   "
        f"(full run {numpy_time * 1000:9.1f} ms)",
        f"  numba fold phase       : {numba_fold * 1000:9.1f} ms   "
        f"(full run {numba_time * 1000:9.1f} ms)",
        f"  fold-phase speedup     : {fold_speedup:9.2f} x   (regression floor: "
        f"{MIN_SPEEDUP:.0f}x)",
        f"  full-run speedup       : {run_speedup:9.2f} x",
    ]
    if SMOKE:
        lines.append("  smoke mode: reduced sizes, floor not enforced")
    if not numba_available():
        lines.append(
            "  floor not enforced: numba not installed -- the 'numba' tier "
            "silently resolves to the numpy reference, so both runs measured "
            "the same kernels (install with `pip install .[numba]`)"
        )
    elif available_cores() < 2:
        lines.append(
            "  floor not enforced: 1 core(s) -- single-core shared runners "
            "are too noisy for a hard timing gate"
        )
    publish(results_dir, "kernel_tier_speedup", "\n".join(lines))
    if enforce:
        assert fold_speedup >= MIN_SPEEDUP, (
            f"compiled kernel tier fold speedup regressed: "
            f"{fold_speedup:.2f}x < {MIN_SPEEDUP}x"
        )
