"""Perf guard for the prediction service's sample-run cache (docs/SERVICE.md).

The service's promise: a warm prediction is a cache lookup plus JSON
framing, not a sample-run sweep.  This guard measures the same question
asked cold (caches cleared -- the full PREDIcT pipeline executes) and warm
(served from the prediction cache) **through the daemon socket**, so the
warm figure honestly includes the wire round-trip, and floors the speedup
at ``MIN_WARM_SPEEDUP`` (the real ratio is orders of magnitude).

It also re-asserts the cache contract while timing: the warm answer is
``==`` the cold one field by field (floats cross the wire bit for bit).

``REPRO_BENCH_SMOKE=1`` shrinks the dataset scale and skips the floor;
the committed ``benchmarks/results/service_cache_speedup.txt`` always
records a full run.
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path

from bench_utils import bench_smoke, measure_best, publish
from repro.service.client import PredictionClient
from repro.service.daemon import PredictionDaemon, PredictionService

SMOKE = bench_smoke()

SCALE = 0.05 if SMOKE else 0.25
WORKERS = 4
REPEATS = 2 if SMOKE else 5
MIN_WARM_SPEEDUP = 20.0

QUESTION = dict(dataset="livejournal", algorithm="pagerank", sampling_ratio=0.1)


def test_bench_service_cache_speedup(results_dir):
    socket_path = str(Path(tempfile.mkdtemp()) / "bench.sock")
    service = PredictionService(dataset_scale=SCALE, num_workers=WORKERS, seed=42)
    daemon = PredictionDaemon(service, socket_path=socket_path, max_workers=2)
    thread = threading.Thread(target=daemon.serve_forever, daemon=True)
    thread.start()

    client = PredictionClient(socket_path)
    client.wait_until_ready(timeout=60.0)
    try:
        client.predict(**QUESTION)  # warm-up: dataset load, freeze, partitions

        def cold():
            client.clear_cache()
            return client.predict(**QUESTION)

        cold_time = float("inf")
        cold_answer = None
        for _ in range(REPEATS):
            start = time.perf_counter()
            cold_answer = cold()
            cold_time = min(cold_time, time.perf_counter() - start)
        assert cold_answer["cache"] == "miss"

        warm_answer = client.predict(**QUESTION)
        assert warm_answer["cache"] == "hit"
        strip = lambda wire: {k: v for k, v in wire.items() if k != "cache"}
        assert strip(warm_answer) == strip(cold_answer), (
            "warm answer must replay the cold answer bit for bit"
        )

        warm_time = measure_best(
            lambda: client.predict(**QUESTION), repeats=5 * REPEATS, warmup=1
        )
        speedup = cold_time / warm_time

        stats = client.stats()
        client.shutdown()
    finally:
        daemon.request_shutdown()
        client.close()
        thread.join(timeout=60)

    lines = [
        "Prediction service: warm-vs-cold speedup over the daemon socket",
        f"(pagerank on livejournal, scale {SCALE}, ratio 0.1, "
        f"{WORKERS} workers; best of {REPEATS} cold / {5 * REPEATS} warm)",
        "",
        f"  cold prediction (caches cleared): {cold_time * 1000:9.1f} ms",
        f"  warm prediction (cache + wire)  : {warm_time * 1000:9.3f} ms",
        f"  speedup                         : {speedup:9.0f} x"
        f"   (guard: >= {MIN_WARM_SPEEDUP:.0f} x)",
        "",
        f"  cache hits/misses (prediction)  : "
        f"{stats['caches']['prediction']['hits']}/"
        f"{stats['caches']['prediction']['misses']}",
    ]
    if SMOKE:
        lines.append("")
        lines.append("  smoke mode: reduced scale, floor not enforced")
    publish(results_dir, "service_cache_speedup", "\n".join(lines))

    if not SMOKE:
        assert speedup >= MIN_WARM_SPEEDUP, (
            f"warm path only {speedup:.1f}x faster than cold "
            f"(floor {MIN_WARM_SPEEDUP}x)"
        )
