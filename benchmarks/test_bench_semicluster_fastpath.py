"""Performance regression guard for the numeric semi-clustering plane.

Runs semi-clustering -- the last algorithm whose batch fold used to run on
Python payload objects -- over a 20k-vertex uniform random graph through both
``"object"``-kind planes and records the speedup under
``benchmarks/results/semicluster_fastpath_speedup.txt``.  The guarded number
is the **fold phase**: the time spent inside ``compute_batch``, which is
exactly what the numeric record plane replaces (routing, delivery and
accounting are shared by both planes).  The run fails if the fold-phase
speedup falls below 3x (the ISSUE-4 acceptance bar), so a future change
cannot silently lose the optimisation.  Both planes must also agree on
values and convergence, otherwise the "speedup" would be comparing
different computations.
"""

from __future__ import annotations

import time

from bench_utils import bench_smoke, publish
from repro.algorithms.semi_clustering import SemiClustering, SemiClusteringConfig
from repro.bsp.engine import BSPEngine, EngineConfig
from repro.cluster.cost_profile import DETERMINISTIC_PROFILE
from repro.cluster.spec import ClusterSpec
from repro.graph import generators

SMOKE = bench_smoke()

NUM_VERTICES = 1_500 if SMOKE else 20_000
NUM_EDGES = 6_000 if SMOKE else 80_000
SUPERSTEPS = 4
MIN_SPEEDUP = 3.0


class FoldTimed(SemiClustering):
    """Accumulates the wall-clock time spent in the batch fold."""

    def __init__(self) -> None:
        super().__init__()
        self.fold_seconds = 0.0

    def compute_batch(self, batch, config) -> None:
        start = time.perf_counter()
        super().compute_batch(batch, config)
        self.fold_seconds += time.perf_counter() - start


def test_bench_semicluster_fastpath(results_dir):
    frozen = generators.uniform_csr(NUM_VERTICES, NUM_EDGES, seed=3, name="sc-20k")
    engine = BSPEngine(
        cluster=ClusterSpec(num_nodes=1, workers_per_node=8),
        cost_profile=DETERMINISTIC_PROFILE,
    )
    config = SemiClusteringConfig(
        c_max=2, s_max=2, v_max=5, tolerance=1e-9, max_iterations=60
    )

    def timed_run(numeric: bool):
        algorithm = FoldTimed()
        engine_config = EngineConfig(
            num_workers=8, max_supersteps=SUPERSTEPS, runtime_seed=1,
            semicluster_numeric=numeric, collect_vertex_values=True,
        )
        start = time.perf_counter()
        result = engine.run(frozen, algorithm, config, engine_config)
        return time.perf_counter() - start, algorithm.fold_seconds, result

    object_time, object_fold, object_result = timed_run(numeric=False)
    numeric_time, numeric_fold, numeric_result = timed_run(numeric=True)

    # The speedup is only meaningful if both planes did identical work.
    assert object_result.num_iterations == numeric_result.num_iterations
    assert object_result.convergence_history == numeric_result.convergence_history
    assert object_result.vertex_values == numeric_result.vertex_values
    for left, right in zip(object_result.iterations, numeric_result.iterations):
        assert left.graph_feature_dict() == right.graph_feature_dict()

    fold_speedup = object_fold / numeric_fold
    run_speedup = object_time / numeric_time
    lines = [
        "Numeric semi-clustering plane speedup (object fold vs. numeric records, "
        f"{NUM_VERTICES:,} vertices / {NUM_EDGES:,} edges / {SUPERSTEPS} supersteps)",
        "",
        f"  object fold phase   : {object_fold * 1000:9.1f} ms   "
        f"(full run {object_time * 1000:9.1f} ms)",
        f"  numeric fold phase  : {numeric_fold * 1000:9.1f} ms   "
        f"(full run {numeric_time * 1000:9.1f} ms)",
        f"  fold-phase speedup  : {fold_speedup:9.1f} x   (regression floor: "
        f"{MIN_SPEEDUP:.0f}x)",
        f"  full-run speedup    : {run_speedup:9.1f} x",
    ]
    if SMOKE:
        lines.append("  smoke mode: reduced sizes, floor not enforced")
    publish(results_dir, "semicluster_fastpath_speedup", "\n".join(lines))
    if not SMOKE:
        assert fold_speedup >= MIN_SPEEDUP, (
            f"numeric semi-clustering fold speedup regressed: "
            f"{fold_speedup:.1f}x < {MIN_SPEEDUP}x"
        )
