"""Figure 5: relative error of predicted semi-clustering iterations vs sampling
ratio, for convergence ratios tau = 0.01 and tau = 0.001 (Twitter excluded, as
in the paper, where it exceeds cluster memory)."""

from bench_utils import SWEEP_RATIOS, publish

from repro.experiments import figures


def test_bench_fig5_semiclustering_iterations(benchmark, ctx, results_dir):
    result = benchmark.pedantic(
        lambda: figures.fig5_semiclustering_iterations(ctx, ratios=SWEEP_RATIOS),
        rounds=1,
        iterations=1,
    )
    text = "\n\n".join(result[tau].render() for tau in sorted(result, reverse=True))
    publish(results_dir, "fig5_semiclustering_iterations", text)

    for sweep in result.values():
        assert set(sweep.sweep) == {"LJ", "Wiki", "UK"}
        for points in sweep.sweep.values():
            assert len(points) == len(SWEEP_RATIOS)
    # Paper shape: at a 10% sample the web graphs are within ~20-40%.
    tight = result[min(result)]
    web_errors = [
        abs(err)
        for name, points in tight.sweep.items()
        if name in {"Wiki", "UK"}
        for ratio, err in points
        if abs(ratio - 0.1) < 1e-9
    ]
    assert max(web_errors) <= 0.8
