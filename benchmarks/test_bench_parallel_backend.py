"""Performance guard for the shared-memory multiprocess execution backend.

Measures **full engine-run wall-clock** of PageRank under the two execution
backends on the ISSUE-5 acceptance setup -- 50k vertices / 400k edges,
4 simulated workers, 4 worker processes:

* ``backend="inline"`` -- the single-process batch plane (the baseline every
  earlier perf PR optimised);
* ``backend="process"`` -- compute and owner-sharded message reduction run
  on 4 OS processes over shared-memory CSR slices and stream arenas.

Both backends must report identical counters and convergence histories
(otherwise the "speedup" would compare different computations).  The pool is
persistent and warmed up before timing, so the measurement reflects
steady-state superstep throughput -- the regime sweeps and long runs live
in -- not interpreter start-up.

True parallelism needs hardware: when fewer CPU cores than worker processes
are available (CI containers, the 1-core build sandbox), the measured number
is recorded with a core-count caveat and the floor is *not* enforced -- a
speedup is physically impossible there, not a regression.  On hosts with
>= 4 cores the run fails below ``MIN_SPEEDUP`` (1.5x).

``REPRO_BENCH_SMOKE=1`` (the ``make bench-smoke`` CI target) shrinks the
graph and skips the floor, exercising the whole backend -- spawn, shared
memory, the stream protocol -- on every PR.
"""

from __future__ import annotations

import time

from bench_utils import bench_smoke, publish
from repro.algorithms.pagerank import PageRank, PageRankConfig
from repro.bsp.engine import BSPEngine, EngineConfig
from repro.bsp.parallel.pool import available_cores
from repro.cluster.cost_profile import DETERMINISTIC_PROFILE
from repro.cluster.spec import ClusterSpec
from repro.graph import generators

SMOKE = bench_smoke()

NUM_VERTICES = 2_000 if SMOKE else 50_000
NUM_EDGES = 16_000 if SMOKE else 400_000
NUM_WORKERS = 4
PROCESSES = 4
SUPERSTEPS = 3 if SMOKE else 10
MIN_SPEEDUP = 1.5


def _engine_config(backend: str) -> EngineConfig:
    return EngineConfig(
        num_workers=NUM_WORKERS,
        max_supersteps=SUPERSTEPS,
        runtime_seed=1,
        backend=backend,
        processes=PROCESSES,
    )


def _timed_run(engine, graph, backend: str):
    start = time.perf_counter()
    result = engine.run(
        graph, PageRank(), PageRankConfig(tolerance=1e-12), _engine_config(backend)
    )
    return time.perf_counter() - start, result


def test_bench_parallel_backend(results_dir):
    graph = generators.uniform_csr(
        NUM_VERTICES, NUM_EDGES, seed=17, name="parallel-backend"
    )
    engine = BSPEngine(
        cluster=ClusterSpec(num_nodes=1, workers_per_node=NUM_WORKERS),
        cost_profile=DETERMINISTIC_PROFILE,
    )
    try:
        # Warm-up: spawns + initialises the persistent pool, touches caches.
        _timed_run(engine, graph, "inline")
        _timed_run(engine, graph, "process")

        inline_time = process_time = float("inf")
        inline_result = process_result = None
        for _ in range(3):  # best-of-3, attempts interleaved
            elapsed, inline_result = _timed_run(engine, graph, "inline")
            inline_time = min(inline_time, elapsed)
            elapsed, process_result = _timed_run(engine, graph, "process")
            process_time = min(process_time, elapsed)
    finally:
        engine.close_pools()

    # The comparison is only meaningful if both backends ran the identical
    # computation, counter for counter.
    assert inline_result.convergence_history == process_result.convergence_history
    for left, right in zip(inline_result.iterations, process_result.iterations):
        assert left.graph_feature_dict() == right.graph_feature_dict()
        assert left.critical_feature_dict() == right.critical_feature_dict()

    cores = available_cores()
    enforce = not SMOKE and cores >= PROCESSES
    speedup = inline_time / process_time
    lines = [
        "Process-backend speedup (PageRank full run, "
        f"{NUM_VERTICES:,} vertices / {NUM_EDGES:,} edges / "
        f"{NUM_WORKERS} workers / {PROCESSES} processes)",
        "",
        f"  inline backend   : {inline_time * 1000:9.1f} ms  ({SUPERSTEPS} supersteps)",
        f"  process backend  : {process_time * 1000:9.1f} ms",
        f"  speedup          : {speedup:9.2f} x"
        f"   (regression floor: {MIN_SPEEDUP:.1f}x on >= {PROCESSES} cores)",
        "",
        f"  cpu cores available: {cores}",
    ]
    if not enforce:
        if SMOKE:
            lines.append("  smoke mode: reduced sizes, floor not enforced")
        else:
            lines.append(
                f"  floor not enforced: {cores} core(s) < {PROCESSES} processes -- "
                "parallel speedup is physically impossible on this host"
            )
    publish(results_dir, "parallel_backend_speedup", "\n".join(lines))
    if enforce:
        assert speedup >= MIN_SPEEDUP, (
            f"process-backend speedup regressed: {speedup:.2f}x < {MIN_SPEEDUP}x "
            f"on {cores} cores"
        )
