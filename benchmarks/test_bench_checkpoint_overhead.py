"""Overhead guard for superstep checkpointing (docs/RESILIENCE.md).

The promise: arming ``EngineConfig(checkpoint_every=5)`` on the Figure 4
PageRank workload costs **under 10 %** wall clock against an unarmed run.
A checkpoint deep-copies the batch plane, the aggregator values and the
RNG state -- the guard bounds that snapshot cost at the paper-benchmark
cadence.  Disk persistence (``checkpoint_dir=``) is measured and recorded
alongside but not floored: fsync behaviour is too host-dependent for a CI
gate.

``REPRO_BENCH_SMOKE=1`` shrinks the graph and skips the floor (shared CI
runners flake on single-digit-percent timing), still exercising both
paths; the committed ``benchmarks/results/checkpoint_overhead.txt``
always records a full run.
"""

from __future__ import annotations

import tempfile
import time

from bench_utils import bench_smoke, publish
from repro.algorithms.pagerank import PageRank, PageRankConfig
from repro.bsp.engine import BSPEngine, EngineConfig
from repro.cluster.cost_profile import DETERMINISTIC_PROFILE
from repro.cluster.spec import ClusterSpec
from repro.graph import generators

SMOKE = bench_smoke()

NUM_VERTICES = 2_000 if SMOKE else 50_000
NUM_EDGES = 16_000 if SMOKE else 400_000
NUM_WORKERS = 4
SUPERSTEPS = 6 if SMOKE else 15
REPEATS = 2 if SMOKE else 9

CHECKPOINT_EVERY = 5
MAX_CHECKPOINT_OVERHEAD = 0.10


def _timed_run(engine, graph, **overrides):
    config = EngineConfig(
        num_workers=NUM_WORKERS, max_supersteps=SUPERSTEPS,
        runtime_seed=1, **overrides,
    )
    start = time.perf_counter()
    result = engine.run(graph, PageRank(), PageRankConfig(tolerance=1e-12), config)
    return time.perf_counter() - start, result


def test_bench_checkpoint_overhead(results_dir):
    graph = generators.uniform_csr(
        NUM_VERTICES, NUM_EDGES, seed=17, name="checkpoint-overhead"
    )
    engine = BSPEngine(
        cluster=ClusterSpec(num_nodes=1, workers_per_node=NUM_WORKERS),
        cost_profile=DETERMINISTIC_PROFILE,
    )
    _timed_run(engine, graph)  # warm-up: caches, freeze, partitions

    # Paired measurements with alternating order, summarised by the median
    # ratio (same protocol as the trace-overhead guard): host-level drift
    # hits both halves of a pair, and the median shrugs off outlier pairs.
    off_time = on_time = float("inf")
    off_result = on_result = None
    overheads = []
    for index in range(REPEATS):
        if index % 2 == 0:
            off, off_result = _timed_run(engine, graph)
            on, on_result = _timed_run(
                engine, graph, checkpoint_every=CHECKPOINT_EVERY
            )
        else:
            on, on_result = _timed_run(
                engine, graph, checkpoint_every=CHECKPOINT_EVERY
            )
            off, off_result = _timed_run(engine, graph)
        off_time = min(off_time, off)
        on_time = min(on_time, on)
        overheads.append(on / off - 1.0)
    overheads.sort()
    overhead = overheads[len(overheads) // 2]  # median paired ratio

    # Checkpointing must not perturb the run: identical trajectory.
    assert off_result.convergence_history == on_result.convergence_history
    assert off_result.vertex_values == on_result.vertex_values

    # Disk persistence, recorded for reference (no floor).
    with tempfile.TemporaryDirectory() as checkpoint_dir:
        disk_time, _ = _timed_run(
            engine, graph,
            checkpoint_every=CHECKPOINT_EVERY, checkpoint_dir=checkpoint_dir,
        )

    lines = [
        "Checkpointing overhead (PageRank inline run, "
        f"{NUM_VERTICES:,} vertices / {NUM_EDGES:,} edges / "
        f"{SUPERSTEPS} supersteps, checkpoint_every={CHECKPOINT_EVERY})",
        "",
        f"  unarmed run             : {off_time * 1000:9.1f} ms  (best of {REPEATS})",
        f"  checkpointed run        : {on_time * 1000:9.1f} ms  (best of {REPEATS})",
        f"  checkpoint overhead     : {overhead * 100:9.2f} %"
        f"   (median of {REPEATS} paired runs; guard: <= "
        f"{MAX_CHECKPOINT_OVERHEAD * 100:.0f} %)",
        "",
        f"  with on-disk persistence: {disk_time * 1000:9.1f} ms  (single run, informational)",
    ]
    if SMOKE:
        lines.append("")
        lines.append("  smoke mode: reduced sizes, floor not enforced")
    publish(results_dir, "checkpoint_overhead", "\n".join(lines))

    if not SMOKE:
        assert overhead <= MAX_CHECKPOINT_OVERHEAD, (
            f"checkpointing overhead regressed: "
            f"{overhead * 100:.2f}% > {MAX_CHECKPOINT_OVERHEAD * 100:.0f}%"
        )
