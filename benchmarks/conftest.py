"""Shared fixtures for the benchmark suite.

The benchmarks regenerate every table and figure of the paper's evaluation on
the stand-in datasets.  They share one :class:`ExperimentContext` per session
so that expensive *actual runs* (the ground truth of every figure) are
executed once and reused across benchmark files.

Two environment variables control the cost/fidelity trade-off:

``REPRO_BENCH_SCALE``
    Multiplier on the stand-in dataset sizes (default ``0.4``).  Larger values
    give smoother error curves at the cost of a longer benchmark run.
``REPRO_BENCH_WORKERS``
    Number of simulated BSP workers (default ``8``).

Each benchmark prints its rendered table/series and also writes it to
``benchmarks/results/<name>.txt`` so the output survives pytest's capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from bench_utils import RESULTS_DIR, bench_scale, bench_workers
from repro.cluster.cost_profile import DEFAULT_PROFILE
from repro.experiments.harness import ExperimentContext


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    """The shared experiment context (cached actual runs live here)."""
    return ExperimentContext(
        cost_profile=DEFAULT_PROFILE,
        dataset_scale=bench_scale(),
        num_workers=bench_workers(),
        seed=42,
        max_supersteps=200,
    )


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where rendered benchmark outputs are written."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR
