"""Performance regression guard for the ragged message plane.

Runs neighborhood estimation -- the variable-size-message algorithm with
fully array-native batch compute -- over a 50k-vertex uniform random graph
through both engine paths and records the wall-clock speedup under
``benchmarks/results/ragged_fastpath_speedup.txt``.  The run fails if the
ragged plane falls below 3x (the ISSUE-2 acceptance bar), so a future change
cannot silently lose the optimisation.  The two paths must also still agree
on counters and convergence, otherwise the "speedup" would be comparing
different computations.
"""

from __future__ import annotations

import time

from bench_utils import bench_smoke, publish
from repro.algorithms.neighborhood import NeighborhoodConfig, NeighborhoodEstimation
from repro.bsp.engine import BSPEngine, EngineConfig
from repro.cluster.cost_profile import DETERMINISTIC_PROFILE
from repro.cluster.spec import ClusterSpec
from repro.graph import generators

SMOKE = bench_smoke()

NUM_VERTICES = 2_000 if SMOKE else 50_000
NUM_EDGES = 16_000 if SMOKE else 400_000
SUPERSTEPS = 3
MIN_SPEEDUP = 3.0


def test_bench_ragged_fastpath(results_dir):
    frozen = generators.uniform_csr(NUM_VERTICES, NUM_EDGES, seed=17, name="ragged-50k")
    scalar_graph = frozen.to_digraph()
    engine = BSPEngine(
        cluster=ClusterSpec(num_nodes=1, workers_per_node=8),
        cost_profile=DETERMINISTIC_PROFILE,
    )
    config = NeighborhoodConfig(num_sketches=4, max_hops=30, tolerance=1e-9)

    def timed_run(graph, vectorized):
        engine_config = EngineConfig(
            num_workers=8, max_supersteps=SUPERSTEPS, runtime_seed=1,
            vectorized=vectorized,
        )
        start = time.perf_counter()
        result = engine.run(graph, NeighborhoodEstimation(), config, engine_config)
        return time.perf_counter() - start, result

    scalar_time, scalar_result = timed_run(scalar_graph, vectorized=False)
    ragged_time, ragged_result = timed_run(frozen, vectorized=True)

    # The speedup is only meaningful if both paths did identical work.
    assert scalar_result.num_iterations == ragged_result.num_iterations
    assert scalar_result.convergence_history == ragged_result.convergence_history
    for left, right in zip(scalar_result.iterations, ragged_result.iterations):
        assert left.graph_feature_dict() == right.graph_feature_dict()

    speedup = scalar_time / ragged_time
    lines = [
        "Ragged message-plane speedup (neighborhood estimation, "
        f"{NUM_VERTICES:,} vertices / {NUM_EDGES:,} edges / {SUPERSTEPS} supersteps)",
        "",
        f"  scalar path      : {scalar_time * 1000:9.1f} ms",
        f"  ragged plane     : {ragged_time * 1000:9.1f} ms",
        f"  speedup          : {speedup:9.1f} x   (regression floor: {MIN_SPEEDUP:.0f}x)",
    ]
    if SMOKE:
        lines.append("  smoke mode: reduced sizes, floor not enforced")
    publish(results_dir, "ragged_fastpath_speedup", "\n".join(lines))
    if not SMOKE:
        assert speedup >= MIN_SPEEDUP, (
            f"ragged message plane speedup regressed: {speedup:.1f}x < {MIN_SPEEDUP}x"
        )
