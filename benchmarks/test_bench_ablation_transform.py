"""Ablation (DESIGN.md): the transform function on vs off.

Running the PageRank sample run *without* scaling the convergence threshold
(identity transform) breaks the iteration invariant the methodology relies on;
this ablation quantifies the damage, mirroring the motivating example of
Figure 2 in the paper."""

from bench_utils import publish

from repro.experiments import figures


def test_bench_ablation_transform(benchmark, ctx, results_dir):
    result = benchmark.pedantic(
        lambda: figures.ablation_transform_function(
            ctx, datasets=("wikipedia", "uk-2002"), ratios=(0.05, 0.1, 0.2)
        ),
        rounds=1,
        iterations=1,
    )
    text = result["with-transform"].render() + "\n\n" + result["without-transform"].render()
    publish(results_dir, "ablation_transform_function", text)

    # Averaged over datasets and ratios, scaling the threshold must not be
    # worse than ignoring it.
    def mean_abs(sweep):
        errors = [abs(err) for points in sweep.sweep.values() for _, err in points]
        return sum(errors) / len(errors)

    assert mean_abs(result["with-transform"]) <= mean_abs(result["without-transform"]) + 1e-9
