"""Figure 7: semi-clustering end-to-end runtime prediction error.

(a) cost model trained on sample runs only;
(b) cost model trained on sample runs plus the actual runs of the *other*
    datasets (historical runs).

The per-dataset cost-model R^2 values (the paper quotes 0.82-0.89 without
history and 0.88-0.95 with history) are reported in the sweep extras.
"""

from bench_utils import RUNTIME_RATIOS, publish

from repro.experiments import figures


def test_bench_fig7a_sample_runs_only(benchmark, ctx, results_dir):
    result = benchmark.pedantic(
        lambda: figures.fig7_semiclustering_runtime(ctx, ratios=RUNTIME_RATIOS, use_history=False),
        rounds=1,
        iterations=1,
    )
    publish(results_dir, "fig7a_semiclustering_runtime_no_history", result.render())
    assert set(result.sweep) == {"LJ", "Wiki", "UK"}
    assert all(0.0 < r2 <= 1.0 for r2 in result.extras["r_squared"].values())


def test_bench_fig7b_with_history(benchmark, ctx, results_dir):
    result = benchmark.pedantic(
        lambda: figures.fig7_semiclustering_runtime(ctx, ratios=RUNTIME_RATIOS, use_history=True),
        rounds=1,
        iterations=1,
    )
    publish(results_dir, "fig7b_semiclustering_runtime_with_history", result.render())
    assert result.extras["used_history"] is True
    # History-trained models fit at least as well as the paper's no-history
    # models on the scale-free graphs.
    assert result.extras["r_squared"]["UK"] > 0.7
