"""Memory-footprint guard for the out-of-core ingestion pipeline.

Generates a ~10M-edge uniform random edge list on disk, ingests it through
the chunked two-pass pipeline of :mod:`repro.graph.ingest` into an on-disk
CSR cache, then runs PageRank twice from that cache -- once loaded fully
into RAM, once memmap-backed -- in separate measured subprocesses.  Three
properties are pinned (full mode; smoke mode only exercises the code path):

1. *Ingest is out-of-core*: the ingest subprocess's peak-RSS delta stays
   below ``INGEST_RSS_FRACTION`` of the final cache size.  The pipeline
   never holds the edge list, the spill, or more than one sort bucket in
   memory at once, so its footprint is bounded by the bucket budget --
   not by the graph.
2. *Memmap runs are bit-identical*: both runs report exactly the same
   convergence history (the engine promises observational equivalence; the
   differential suite pins it broadly, this pins it at benchmark scale).
3. *Memmap backing saves real memory*: the memmap run's peak-RSS delta is
   below the in-RAM run's by at least ``MMAP_MARGIN_FRACTION`` of the
   weights array -- PageRank never reads edge weights, and the memmap path
   simply never pages them in, while the RAM load must materialise them.

Peak RSS is measured with ``resource.getrusage`` inside each subprocess,
relative to a baseline taken after imports, so interpreter and NumPy
overheads cancel out.  The measured floors are recorded under
``benchmarks/results/outofcore_ingest.txt``.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np

from bench_utils import bench_smoke, publish

SMOKE = bench_smoke()

NUM_VERTICES = 20_000 if SMOKE else 250_000
NUM_EDGES = 200_000 if SMOKE else 10_000_000
BUCKET_BYTES = 1 << 20 if SMOKE else 8 * (1 << 20)
SUPERSTEPS = 3

#: Ingest peak-RSS delta must stay below this fraction of the cache size.
INGEST_RSS_FRACTION = 0.6
#: The memmap run must beat the RAM run by at least this fraction of the
#: (never-read) weights array.
MMAP_MARGIN_FRACTION = 0.2

SRC_DIR = str(Path(__file__).parent.parent / "src")

#: Peak-RSS probe shared by both subprocess scripts.  ``VmHWM`` (and not
#: ``getrusage``'s ``ru_maxrss``) because ``ru_maxrss`` survives ``exec``:
#: a child forked off a fat parent inherits the parent's peak and can never
#: register a peak below it, which silently blinds the assertions.  ``VmHWM``
#: is per-``mm`` and resets on ``exec``, so it measures only this process.
_PEAK_RSS_PROBE = textwrap.dedent("""
    def peak_rss_kb():
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
        raise RuntimeError("VmHWM not found in /proc/self/status")
""")

_INGEST_SCRIPT = _PEAK_RSS_PROBE + textwrap.dedent("""
    import json, os, sys
    sys.path.insert(0, sys.argv[1])
    from repro.graph.ingest import ingest_edge_list
    baseline = peak_rss_kb()
    cache = ingest_edge_list(
        sys.argv[2], sys.argv[3],
        deduplicate=False, bucket_bytes=int(sys.argv[4]), force=True,
    )
    peak = peak_rss_kb()
    cache_bytes = sum(
        os.path.getsize(os.path.join(cache, entry)) for entry in os.listdir(cache)
    )
    print(json.dumps({
        "rss_delta_bytes": (peak - baseline) * 1024,
        "baseline_bytes": baseline * 1024,
        "cache_bytes": cache_bytes,
        "cache": str(cache),
    }))
""")

_RUN_SCRIPT = _PEAK_RSS_PROBE + textwrap.dedent("""
    import json, sys
    sys.path.insert(0, sys.argv[1])
    from repro.algorithms.pagerank import PageRank, PageRankConfig
    from repro.bsp.engine import BSPEngine, EngineConfig
    from repro.cluster.cost_profile import DETERMINISTIC_PROFILE
    from repro.cluster.spec import ClusterSpec
    from repro.graph.ingest import load_csr_cache
    from repro.graph.partition import ContiguousPartitioner
    baseline = peak_rss_kb()
    graph = load_csr_cache(sys.argv[2], mmap_mode="r" if sys.argv[3] == "mmap" else None)
    engine = BSPEngine(
        cluster=ClusterSpec(num_nodes=1, workers_per_node=8),
        cost_profile=DETERMINISTIC_PROFILE,
    )
    # The contiguous partitioner yields an identity layout, so repartitioning
    # is a metadata no-op: no relabelled copy of the arrays is materialised.
    # (A shuffling partitioner would force a full in-RAM copy on both paths
    # and erase the memmap advantage -- that copy is what out-of-core
    # ingestion + contiguous partitioning exists to avoid.)
    result = engine.run(
        graph, PageRank(), PageRankConfig(tolerance=1e-12),
        EngineConfig(num_workers=8, max_supersteps=int(sys.argv[4]),
                     runtime_seed=1, collect_vertex_values=False,
                     partitioner=ContiguousPartitioner()),
    )
    peak = peak_rss_kb()
    print(json.dumps({
        "rss_delta_bytes": (peak - baseline) * 1024,
        "baseline_bytes": baseline * 1024,
        "history": result.convergence_history,
        "num_iterations": result.num_iterations,
    }))
""")


def _measured(script: str, *args: str) -> dict:
    completed = subprocess.run(
        [sys.executable, "-c", script, SRC_DIR, *map(str, args)],
        capture_output=True, text=True, check=True,
    )
    return json.loads(completed.stdout.splitlines()[-1])


def _write_edge_list(path: Path, num_vertices: int, num_edges: int) -> None:
    """Stream a seeded uniform edge list to disk in bounded chunks."""
    rng = np.random.default_rng(20260808)
    chunk = 1_000_000
    with open(path, "wb") as handle:
        handle.write(b"# synthetic uniform graph for the out-of-core benchmark\n")
        # Pin the vertex-count contract: make ids 0 and n-1 appear.
        handle.write(b"0 %d\n" % (num_vertices - 1))
        remaining = num_edges - 1
        while remaining > 0:
            count = min(chunk, remaining)
            sources = rng.integers(0, num_vertices, size=count)
            targets = rng.integers(0, num_vertices, size=count)
            body = b"\n".join(
                b"%d %d" % (s, t) for s, t in zip(sources, targets)
            )
            handle.write(body + b"\n")
            remaining -= count


def test_bench_outofcore_ingest_and_memmap_run(results_dir, tmp_path):
    edge_list = tmp_path / "uniform.txt"
    _write_edge_list(edge_list, NUM_VERTICES, NUM_EDGES)
    edge_list_bytes = edge_list.stat().st_size

    ingest = _measured(_INGEST_SCRIPT, edge_list, tmp_path / "cache", BUCKET_BYTES)
    cache_bytes = ingest["cache_bytes"]
    weights_bytes = 8 * NUM_EDGES

    ram = _measured(_RUN_SCRIPT, ingest["cache"], "ram", SUPERSTEPS)
    mmap = _measured(_RUN_SCRIPT, ingest["cache"], "mmap", SUPERSTEPS)

    # Bit-identity at benchmark scale: same history, same iteration count.
    assert mmap["history"] == ram["history"]
    assert mmap["num_iterations"] == ram["num_iterations"] == SUPERSTEPS

    mib = 1 << 20
    lines = [
        "Out-of-core ingestion + memmap-backed PageRank "
        f"({NUM_VERTICES:,} vertices, {NUM_EDGES:,} edges)",
        "",
        "Peak-RSS deltas are measured against a post-import baseline "
        f"(~{ingest['baseline_bytes'] / mib:.0f} MiB of interpreter + NumPy), "
        "so 0.0 means the phase never grew past that baseline.",
        "",
        f"edge list on disk      : {edge_list_bytes / mib:8.1f} MiB",
        f"CSR cache on disk      : {cache_bytes / mib:8.1f} MiB",
        f"ingest peak RSS delta  : {ingest['rss_delta_bytes'] / mib:8.1f} MiB "
        f"(floor: < {INGEST_RSS_FRACTION:.0%} of cache)",
        f"PageRank RSS (in-RAM)  : {ram['rss_delta_bytes'] / mib:8.1f} MiB",
        f"PageRank RSS (memmap)  : {mmap['rss_delta_bytes'] / mib:8.1f} MiB "
        f"(floor: < in-RAM - {MMAP_MARGIN_FRACTION:.0%} of weights; the "
        "remainder is the engine's O(edges) message plane, identical in "
        "both modes)",
        f"supersteps             : {SUPERSTEPS} (histories bit-identical: "
        f"{mmap['history'] == ram['history']})",
    ]
    publish(results_dir, "outofcore_ingest", "\n".join(lines))

    if SMOKE:
        return
    # 1. Ingest never materialises the graph: bounded by the bucket budget.
    assert ingest["rss_delta_bytes"] < INGEST_RSS_FRACTION * cache_bytes, (
        f"ingest RSS {ingest['rss_delta_bytes'] / mib:.1f} MiB exceeds "
        f"{INGEST_RSS_FRACTION:.0%} of the {cache_bytes / mib:.1f} MiB cache"
    )
    # (The run phase itself is NOT asserted below the cache size: the
    # engine's message plane legitimately allocates several O(edges) arrays
    # per superstep -- identically in both modes -- so run peaks track the
    # plane, not the graph backing.  The graph-backing saving is exactly the
    # in-RAM minus memmap delta asserted next.)
    # 3. Memmap backing avoids paging the never-read weights array in.
    assert mmap["rss_delta_bytes"] < ram["rss_delta_bytes"] - (
        MMAP_MARGIN_FRACTION * weights_bytes
    ), (
        f"memmap run RSS {mmap['rss_delta_bytes'] / mib:.1f} MiB not measurably "
        f"below in-RAM run RSS {ram['rss_delta_bytes'] / mib:.1f} MiB"
    )
