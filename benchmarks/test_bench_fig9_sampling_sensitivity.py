"""Figure 9: sensitivity of the iteration prediction to the sampling technique
(BRJ vs RJ vs MHRW) for semi-clustering and top-k ranking on the UK stand-in."""

from bench_utils import SWEEP_RATIOS, publish

from repro.experiments import figures


def test_bench_fig9_sampling_sensitivity(benchmark, ctx, results_dir):
    result = benchmark.pedantic(
        lambda: figures.fig9_sampling_sensitivity(ctx, dataset="uk-2002", ratios=SWEEP_RATIOS),
        rounds=1,
        iterations=1,
    )
    text = result["semi-clustering"].render() + "\n\n" + result["topk-ranking"].render()
    publish(results_dir, "fig9_sampling_sensitivity", text)

    for sweep in result.values():
        assert set(sweep.sweep) == {"BRJ", "RJ", "MHRW"}
        for points in sweep.sweep.values():
            assert len(points) == len(SWEEP_RATIOS)

    # Paper shape: at a 10% sample BRJ's error is smaller than or similar to
    # the other techniques (we allow a small tolerance for "similar").
    for sweep in result.values():
        at_10 = {
            name: abs(dict(points)[0.1]) for name, points in sweep.sweep.items()
        }
        assert at_10["BRJ"] <= min(at_10["RJ"], at_10["MHRW"]) + 0.25
