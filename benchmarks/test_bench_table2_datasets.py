"""Table 2: characteristics of the (stand-in) datasets."""

from bench_utils import publish

from repro.experiments import figures


def test_bench_table2_datasets(benchmark, ctx, results_dir):
    result = benchmark.pedantic(
        lambda: figures.table2_datasets(ctx), rounds=1, iterations=1
    )
    text = result.render()
    publish(results_dir, "table2_datasets", text)
    # Sanity: all four datasets characterised, Twitter densest, LJ the only
    # stand-in built from a non-power-law generator (as in the paper's
    # footnote about its out-degree distribution).
    assert len(result.rows) == 4
    by_name = {row[0]: row for row in result.rows}
    density = {name: row[5] / row[4] for name, row in by_name.items()}
    assert density["twitter"] == max(density.values())
    generator_flag = {name: row[-2] for name, row in by_name.items()}
    assert generator_flag["livejournal"] is False
    assert all(generator_flag[name] for name in ("wikipedia", "uk-2002", "twitter"))
