"""Ablation (DESIGN.md): sequential forward feature selection vs training the
cost model on all candidate features, for semi-clustering runtime prediction."""

from bench_utils import publish

from repro.experiments import figures


def test_bench_ablation_feature_selection(benchmark, ctx, results_dir):
    result = benchmark.pedantic(
        lambda: figures.ablation_feature_selection(ctx, dataset="uk-2002"),
        rounds=1,
        iterations=1,
    )
    publish(results_dir, "ablation_feature_selection", result.render())

    rows = {row[0]: row for row in result.rows}
    assert set(rows) == {"forward-selection", "all-features"}
    # Forward selection uses a strict subset of the candidate pool and still
    # fits the training data well.
    assert rows["forward-selection"][1] <= rows["all-features"][1]
    assert rows["forward-selection"][2] > 0.8
