"""Figure 4: relative error of predicted PageRank iterations vs sampling ratio,
for tolerance levels epsilon = 0.01 and epsilon = 0.001, on all four datasets."""

from bench_utils import SWEEP_RATIOS, publish

from repro.experiments import figures


def test_bench_fig4_pagerank_iterations(benchmark, ctx, results_dir):
    result = benchmark.pedantic(
        lambda: figures.fig4_pagerank_iterations(ctx, ratios=SWEEP_RATIOS),
        rounds=1,
        iterations=1,
    )
    text = "\n\n".join(result[eps].render() for eps in sorted(result, reverse=True))
    publish(results_dir, "fig4_pagerank_iterations", text)

    # Shape checks mirroring the paper: every dataset has a full series, and
    # the scale-free graphs stay within a moderate error band at a 10% sample.
    for sweep in result.values():
        assert set(sweep.sweep) == {"LJ", "Wiki", "TW", "UK"}
        for points in sweep.sweep.values():
            assert len(points) == len(SWEEP_RATIOS)
    tight = result[min(result)]
    scale_free_errors = [
        abs(err)
        for name, points in tight.sweep.items()
        if name != "LJ"
        for ratio, err in points
        if abs(ratio - 0.1) < 1e-9
    ]
    assert max(scale_free_errors) <= 0.6
