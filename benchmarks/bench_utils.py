"""Helpers shared by the benchmark files (kept out of conftest.py so that the
module name is unique when several test roots are collected together)."""

from __future__ import annotations

import os
import time
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: The sampling-ratio sweep used by the figure benchmarks (as in the paper).
SWEEP_RATIOS = (0.05, 0.1, 0.15, 0.2, 0.25)

#: The (cheaper) sweep used by the runtime-prediction benchmarks.
RUNTIME_RATIOS = (0.05, 0.1, 0.15, 0.2)


def bench_scale() -> float:
    """Dataset scale used by the benchmarks (env: REPRO_BENCH_SCALE)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.4"))


def bench_workers() -> int:
    """Simulated worker count used by the benchmarks (env: REPRO_BENCH_WORKERS)."""
    return int(os.environ.get("REPRO_BENCH_WORKERS", "8"))


def bench_smoke() -> bool:
    """True in smoke mode (env: REPRO_BENCH_SMOKE; the `make bench-smoke` target).

    Smoke mode shrinks the perf-guard benchmarks to tiny graphs and skips the
    speedup floors: CI exercises every guard code path on every PR without
    paying full benchmark time or flaking on shared-runner timing noise.
    """
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def warm_up(fn, passes: int = 1) -> None:
    """Run ``fn`` untimed before measurement.

    Benchmarks call this once per configuration so one-time costs -- JIT
    compilation of the compiled kernel tier, page-faulting memmapped CSR
    caches, allocator growth -- land outside the timed iterations.
    """
    for _ in range(passes):
        fn()


def measure_best(fn, repeats: int = 3, warmup: int = 1) -> float:
    """Best-of-``repeats`` wall time of ``fn()``, after ``warmup`` untimed passes.

    Minimum (not mean) is the standard noise-robust estimator for
    speedup-floor guards on shared runners.
    """
    warm_up(fn, passes=warmup)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def publish(results_dir: Path, name: str, text: str) -> None:
    """Print a rendered result and persist it under ``benchmarks/results/``.

    Smoke mode prints only: the committed results files always describe the
    full-scale runs, never a CI sanity pass.
    """
    print(f"\n{text}\n")
    if not bench_smoke():
        (results_dir / f"{name}.txt").write_text(text + "\n")
