"""§5.1 "Upper Bound Estimates": the analytical Langville & Meyer bound on
PageRank iterations vs the actual iteration counts measured on every dataset.

The paper reports misprediction factors of ~2x (epsilon = 0.001) up to ~3.5x
(epsilon = 0.1); the benchmark asserts the bound is loose in the same
direction, which is the argument for PREDIcT's sample-run approach."""

from bench_utils import publish

from repro.experiments import figures


def test_bench_upper_bounds(benchmark, ctx, results_dir):
    result = benchmark.pedantic(
        lambda: figures.upper_bound_comparison(ctx),
        rounds=1,
        iterations=1,
    )
    publish(results_dir, "upper_bound_estimates", result.render())

    num_datasets = (len(result.headers) - 2) // 2
    for row in result.rows:
        bound = row[1]
        actuals = row[2 : 2 + num_datasets]
        factors = row[2 + num_datasets :]
        # The analytical bound over-predicts the iterations of every dataset.
        assert all(bound >= actual for actual in actuals)
        assert all(factor >= 1.0 for factor in factors)
