"""Table 3: simulated runtime of sample runs (SR = 0.01, 0.1, 0.2) and of the
actual runs (SR = 1.0) for PageRank, semi-clustering, connected components,
top-k ranking and neighborhood estimation on the largest stand-ins."""

from bench_utils import publish

from repro.experiments import figures


def test_bench_table3_overhead(benchmark, ctx, results_dir):
    result = benchmark.pedantic(
        lambda: figures.table3_overhead(ctx),
        rounds=1,
        iterations=1,
    )
    publish(results_dir, "table3_overhead", result.render())

    # The rows are ordered by sampling ratio with the actual run (1.0) last;
    # every sample run must be cheaper than its actual run, and the 10% sample
    # of the long-running algorithms should stay a small fraction of it.
    header_ratio_rows = {row[0]: row[1:] for row in result.rows}
    actual = header_ratio_rows[1.0]
    for ratio, runtimes in header_ratio_rows.items():
        if ratio >= 1.0:
            continue
        assert all(sample < full for sample, full in zip(runtimes, actual))
    ten_percent = header_ratio_rows[0.1]
    fractions = [sample / full for sample, full in zip(ten_percent, actual)]
    assert min(fractions) < 0.35
