"""Figure 6: top-k ranking key input features -- relative error of the number
of iterations (top) and of the remote message bytes (bottom) vs sampling ratio."""

from bench_utils import SWEEP_RATIOS, publish

from repro.experiments import figures


def test_bench_fig6_topk_features(benchmark, ctx, results_dir):
    result = benchmark.pedantic(
        lambda: figures.fig6_topk_features(ctx, ratios=SWEEP_RATIOS),
        rounds=1,
        iterations=1,
    )
    text = result["iterations"].render() + "\n\n" + result["remote_bytes"].render()
    publish(results_dir, "fig6_topk_features", text)

    assert set(result["iterations"].sweep) == {"LJ", "Wiki", "UK"}
    assert set(result["remote_bytes"].sweep) == {"LJ", "Wiki", "UK"}
    # The paper's observation: message-byte estimates are tighter than
    # iteration estimates matter-of-factly because runtimes follow bytes.
    byte_errors_10 = [
        abs(err)
        for name, points in result["remote_bytes"].sweep.items()
        if name != "LJ"
        for ratio, err in points
        if abs(ratio - 0.1) < 1e-9
    ]
    assert max(byte_errors_10) <= 0.7
