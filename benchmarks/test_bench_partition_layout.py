"""Performance regression guard for the partition-native execution layout.

Measures the **per-superstep messaging phase** -- out-edge expansion, message
routing/reduction, local/remote classification, counter updates and the
barrier swap -- of the engine's scalar-payload batch plane under the two
layouts:

* the legacy *gather-based* layout (``partition_native=False``): per-worker
  vertex index gathers, ``concat_ranges`` edge-slot gathers, a
  vertex-to-worker map gather per send, ``np.add.at`` scatters;
* the *partition-native* layout (``partition_native=True``): contiguous
  per-worker CSR slices, range-comparison classification, one ``bincount``
  fold per superstep.

Setup follows the ISSUE-3 acceptance bar: PageRank payloads on a uniform
random graph of 50k vertices / 400k edges over 8 workers.  The run fails if
the partition-native messaging phase is less than 2x faster, so a future
change cannot silently lose the layout optimisation.  Both layouts must also
report identical counters, otherwise the "speedup" would be comparing
different computations.  A full engine-run comparison is recorded alongside
for context (not guarded: it dilutes the messaging phase with compute).

``REPRO_BENCH_SMOKE=1`` (the ``make bench-smoke`` CI target) shrinks the
graph and skips the floor assertion -- a sanity run that exercises every
perf-guard code path on every PR without timing noise flakes.
"""

from __future__ import annotations

import time

import numpy as np

from bench_utils import bench_smoke, publish
from repro.algorithms.pagerank import PageRank, PageRankConfig
from repro.bsp.engine import BSPEngine, EngineConfig, _build_batch_state, _EngineRun
from repro.cluster.cost_profile import DETERMINISTIC_PROFILE
from repro.cluster.spec import ClusterSpec
from repro.graph import generators

SMOKE = bench_smoke()

NUM_VERTICES = 2_000 if SMOKE else 50_000
NUM_EDGES = 16_000 if SMOKE else 400_000
NUM_WORKERS = 8
MESSAGING_REPS = 2 if SMOKE else 10
SUPERSTEPS = 3 if SMOKE else 10
MIN_SPEEDUP = 2.0


def _build_state(engine, graph, partition_native):
    """An engine run + its scalar-payload batch plane, without executing."""
    algorithm = PageRank()
    config = PageRankConfig(tolerance=1e-12)
    run = _EngineRun(
        engine=engine,
        graph=graph,
        algorithm=algorithm,
        config=config,
        engine_config=EngineConfig(
            num_workers=NUM_WORKERS,
            runtime_seed=1,
            partition_native=partition_native,
        ),
        num_workers=NUM_WORKERS,
    )
    for vertex in graph.vertices():
        run.values[vertex] = algorithm.initial_value(vertex, graph, config)
    state = _build_batch_state(run)
    assert state is not None
    assert (state.worker_offsets is not None) == partition_native
    return run, state


def _worker_indices(state, worker_id):
    if state.worker_offsets is not None:
        return np.arange(
            state.worker_offsets[worker_id], state.worker_offsets[worker_id + 1]
        )
    return state.own[worker_id]


def _messaging_cycle(run, state, superstep):
    """One superstep's messaging phase: every worker sends along every edge."""
    for worker in run.workers:
        worker.begin_superstep(superstep)
        indices = _worker_indices(state, worker.worker_id)
        payloads = np.full(len(indices), 0.5, dtype=np.float64)
        state.send_to_all_neighbors(worker, indices, payloads, None)
    state._commit_superstep()
    state.advance()


def _timed_messaging_attempt(run, state):
    start = time.perf_counter()
    for superstep in range(1, MESSAGING_REPS + 1):
        _messaging_cycle(run, state, superstep)
    return time.perf_counter() - start


def _sent_totals(run):
    # Counters reset at begin_superstep, so these totals describe the last
    # superstep of the loop (every superstep routes the identical stream).
    return {
        "sent": sum(w.counters.messages_sent for w in run.workers),
        "local": sum(w.counters.local_messages for w in run.workers),
        "remote": sum(w.counters.remote_messages for w in run.workers),
        "local_bytes": sum(w.counters.local_message_bytes for w in run.workers),
        "remote_bytes": sum(w.counters.remote_message_bytes for w in run.workers),
    }


def _time_messaging_both(engine, graph):
    """Best-of-3 per layout, attempts interleaved so load spikes hit both."""
    gather_run, gather_state = _build_state(engine, graph, partition_native=False)
    native_run, native_state = _build_state(engine, graph, partition_native=True)
    _messaging_cycle(gather_run, gather_state, 0)  # warm-up: caches, allocator
    _messaging_cycle(native_run, native_state, 0)
    gather_time = native_time = float("inf")
    for attempt in range(3):
        gather_time = min(gather_time, _timed_messaging_attempt(gather_run, gather_state))
        native_time = min(native_time, _timed_messaging_attempt(native_run, native_state))
    return gather_time, _sent_totals(gather_run), native_time, _sent_totals(native_run)


def _timed_run_attempt(engine, graph, engine_config):
    start = time.perf_counter()
    result = engine.run(
        graph, PageRank(), PageRankConfig(tolerance=1e-12), engine_config
    )
    return time.perf_counter() - start, result


def _time_full_runs_both(engine, graph):
    """Best-of-3 full engine runs per layout, attempts interleaved."""
    configs = {
        native: EngineConfig(
            num_workers=NUM_WORKERS,
            max_supersteps=SUPERSTEPS,
            runtime_seed=1,
            partition_native=native,
        )
        for native in (False, True)
    }
    times = {False: float("inf"), True: float("inf")}
    results = {}
    for attempt in range(3):
        for native in (False, True):
            elapsed, results[native] = _timed_run_attempt(engine, graph, configs[native])
            times[native] = min(times[native], elapsed)
    return times[False], results[False], times[True], results[True]


def test_bench_partition_layout(results_dir):
    graph = generators.uniform_csr(
        NUM_VERTICES, NUM_EDGES, seed=17, name="partition-layout"
    )
    engine = BSPEngine(
        cluster=ClusterSpec(num_nodes=1, workers_per_node=NUM_WORKERS),
        cost_profile=DETERMINISTIC_PROFILE,
    )

    gather_time, gather_totals, native_time, native_totals = _time_messaging_both(
        engine, graph
    )

    # The speedup is only meaningful if both layouts routed identical traffic.
    assert native_totals == gather_totals
    assert native_totals["sent"] == NUM_EDGES

    full_gather, gather_result, full_native, native_result = _time_full_runs_both(
        engine, graph
    )
    assert gather_result.convergence_history == native_result.convergence_history
    for left, right in zip(gather_result.iterations, native_result.iterations):
        assert left.graph_feature_dict() == right.graph_feature_dict()

    speedup = gather_time / native_time
    full_speedup = full_gather / full_native
    lines = [
        "Partition-native layout speedup (PageRank messaging phase, "
        f"{NUM_VERTICES:,} vertices / {NUM_EDGES:,} edges / {NUM_WORKERS} workers)",
        "",
        f"  messaging phase, gather layout  : {gather_time * 1000:9.1f} ms"
        f"  ({MESSAGING_REPS} supersteps)",
        f"  messaging phase, native layout  : {native_time * 1000:9.1f} ms",
        f"  messaging speedup               : {speedup:9.1f} x"
        f"   (regression floor: {MIN_SPEEDUP:.0f}x)",
        "",
        f"  full run, gather layout         : {full_gather * 1000:9.1f} ms"
        f"  ({SUPERSTEPS} supersteps)",
        f"  full run, native layout         : {full_native * 1000:9.1f} ms",
        f"  full-run speedup                : {full_speedup:9.1f} x   (recorded, not guarded)",
    ]
    if SMOKE:
        lines.append("")
        lines.append("  smoke mode: reduced sizes, floor not enforced")
    publish(results_dir, "partition_layout_speedup", "\n".join(lines))
    if not SMOKE:
        assert speedup >= MIN_SPEEDUP, (
            f"partition-native messaging speedup regressed: "
            f"{speedup:.1f}x < {MIN_SPEEDUP}x"
        )
