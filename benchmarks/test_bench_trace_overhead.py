"""Overhead guard for the ``repro.obs`` telemetry subsystem.

Two promises from docs/OBSERVABILITY.md, both measured on a full inline
PageRank engine run:

* **disabled <= 2 %** -- with tracing off (the default) every
  instrumentation point hits the allocation-free ``NULL_TRACER``.  The
  hypothetical uninstrumented engine cannot be run, so the guard bounds
  the overhead from first principles: measure the cost of one null
  span begin/finish cycle in isolation, multiply by the number of
  instrumentation points a run executes (5 run-level spans plus 4 spans
  per superstep), and require that total to stay under 2 % of the
  measured run time;
* **enabled <= 10 %** -- a traced run (real ``Tracer``, spans recorded
  and attributed, nothing exported) must finish within 10 % of the
  untraced run.

``REPRO_BENCH_SMOKE=1`` shrinks the graph and skips both floors (shared
CI runners flake on single-digit-percent timing), still exercising the
traced and untraced paths; the committed
``benchmarks/results/trace_overhead.txt`` always records a full run.
"""

from __future__ import annotations

import time

from bench_utils import bench_smoke, publish
from repro.algorithms.pagerank import PageRank, PageRankConfig
from repro.bsp.engine import BSPEngine, EngineConfig
from repro.cluster.cost_profile import DETERMINISTIC_PROFILE
from repro.cluster.spec import ClusterSpec
from repro.graph import generators
from repro.obs import NULL_TRACER, Tracer

SMOKE = bench_smoke()

NUM_VERTICES = 2_000 if SMOKE else 50_000
NUM_EDGES = 16_000 if SMOKE else 400_000
NUM_WORKERS = 4
SUPERSTEPS = 3 if SMOKE else 12
REPEATS = 2 if SMOKE else 9

MAX_DISABLED_OVERHEAD = 0.02
MAX_ENABLED_OVERHEAD = 0.10

#: Instrumentation points of one inline batch-plane run: engine.run +
#: 4 phase spans, then superstep/compute/messaging/barrier per superstep.
SPANS_PER_RUN = 5 + 4 * SUPERSTEPS

#: Iterations of the null-cycle micro-benchmark.
NULL_CYCLES = 50_000 if SMOKE else 500_000


def _null_cycle_cost() -> float:
    """Seconds per disabled instrumentation point (begin + finish + guard)."""
    tracer = NULL_TRACER
    start = time.perf_counter()
    for _ in range(NULL_CYCLES):
        span = tracer.begin("x")
        if tracer.enabled:  # the attr guard every hot-path site uses
            span.set("k", 1)
        span.finish()
    return (time.perf_counter() - start) / NULL_CYCLES


def _timed_run(engine, graph, tracer):
    config = EngineConfig(
        num_workers=NUM_WORKERS, max_supersteps=SUPERSTEPS,
        runtime_seed=1, trace=tracer,
    )
    start = time.perf_counter()
    result = engine.run(graph, PageRank(), PageRankConfig(tolerance=1e-12), config)
    return time.perf_counter() - start, result


def test_bench_trace_overhead(results_dir):
    graph = generators.uniform_csr(
        NUM_VERTICES, NUM_EDGES, seed=17, name="trace-overhead"
    )
    engine = BSPEngine(
        cluster=ClusterSpec(num_nodes=1, workers_per_node=NUM_WORKERS),
        cost_profile=DETERMINISTIC_PROFILE,
    )
    _timed_run(engine, graph, None)  # warm-up: caches, freeze, partitions

    # Paired measurements with alternating order, summarised by the median
    # ratio: host-level drift (thermal, scheduler) hits both halves of a
    # pair, and the median shrugs off the odd outlier pair that a
    # min-of-N comparison of independent minima is defenceless against.
    off_time = on_time = float("inf")
    off_result = on_result = None
    overheads = []
    for index in range(REPEATS):
        if index % 2 == 0:
            off, off_result = _timed_run(engine, graph, None)
            on, on_result = _timed_run(engine, graph, Tracer())
        else:
            on, on_result = _timed_run(engine, graph, Tracer())
            off, off_result = _timed_run(engine, graph, None)
        off_time = min(off_time, off)
        on_time = min(on_time, on)
        overheads.append(on / off - 1.0)
    overheads.sort()

    # Identical computation either way, and the traced run saw every span.
    assert off_result.convergence_history == on_result.convergence_history
    assert off_result.trace is None
    assert len([s for s in on_result.trace.spans if s.name == "superstep"]) == SUPERSTEPS

    cycle_cost = _null_cycle_cost()
    disabled_overhead = (SPANS_PER_RUN * cycle_cost) / off_time
    enabled_overhead = overheads[len(overheads) // 2]  # median paired ratio

    lines = [
        "Tracing overhead (PageRank inline run, "
        f"{NUM_VERTICES:,} vertices / {NUM_EDGES:,} edges / "
        f"{SUPERSTEPS} supersteps)",
        "",
        f"  untraced run            : {off_time * 1000:9.1f} ms  (best of {REPEATS})",
        f"  traced run              : {on_time * 1000:9.1f} ms  (best of {REPEATS})",
        f"  enabled overhead        : {enabled_overhead * 100:9.2f} %"
        f"   (median of {REPEATS} paired runs; guard: <= "
        f"{MAX_ENABLED_OVERHEAD * 100:.0f} %)",
        "",
        f"  null span cycle         : {cycle_cost * 1e9:9.1f} ns",
        f"  instrumentation points  : {SPANS_PER_RUN:9d}  per run",
        f"  disabled overhead       : {disabled_overhead * 100:9.4f} %"
        f"   (guard: <= {MAX_DISABLED_OVERHEAD * 100:.0f} %)",
    ]
    if SMOKE:
        lines.append("")
        lines.append("  smoke mode: reduced sizes, floors not enforced")
    publish(results_dir, "trace_overhead", "\n".join(lines))

    if not SMOKE:
        assert disabled_overhead <= MAX_DISABLED_OVERHEAD, (
            f"disabled-tracing overhead regressed: "
            f"{disabled_overhead * 100:.4f}% > {MAX_DISABLED_OVERHEAD * 100:.0f}%"
        )
        assert enabled_overhead <= MAX_ENABLED_OVERHEAD, (
            f"enabled-tracing overhead regressed: "
            f"{enabled_overhead * 100:.2f}% > {MAX_ENABLED_OVERHEAD * 100:.0f}%"
        )
