"""Static cluster description.

Mirrors the paper's experimental setup section: a cluster of ``num_nodes``
machines, each running ``workers_per_node`` BSP worker tasks (the paper uses
three mappers per node, 29 workers plus one master), each worker having a
fixed memory allocation and the node a fixed network bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ClusterSpec:
    """Description of the simulated cluster.

    Attributes
    ----------
    num_nodes:
        Number of physical machines.
    workers_per_node:
        BSP worker tasks per machine (Giraph mappers minus the master).
    worker_memory_bytes:
        Memory allocated to each worker task.
    network_bandwidth_bytes_per_s:
        Point-to-point bandwidth available to one worker for remote messages.
    local_bandwidth_bytes_per_s:
        Effective bandwidth for messages whose destination vertex lives on the
        same worker (memory copies; much faster than the network).
    """

    num_nodes: int = 10
    workers_per_node: int = 3
    worker_memory_bytes: int = 15 * 1024**3
    network_bandwidth_bytes_per_s: float = 125e6  # 1 Gbps
    local_bandwidth_bytes_per_s: float = 2e9

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigurationError("num_nodes must be positive")
        if self.workers_per_node <= 0:
            raise ConfigurationError("workers_per_node must be positive")
        if self.worker_memory_bytes <= 0:
            raise ConfigurationError("worker_memory_bytes must be positive")
        if self.network_bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("network_bandwidth_bytes_per_s must be positive")
        if self.local_bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("local_bandwidth_bytes_per_s must be positive")

    @property
    def num_workers(self) -> int:
        """Total BSP workers (one slot per node is reserved for the master)."""
        total_slots = self.num_nodes * self.workers_per_node
        return max(1, total_slots - 1)

    @property
    def total_memory_bytes(self) -> int:
        """Aggregate worker memory across the cluster."""
        return self.num_workers * self.worker_memory_bytes

    def scaled(self, num_nodes: int) -> "ClusterSpec":
        """Return a copy of this spec with a different node count."""
        return ClusterSpec(
            num_nodes=num_nodes,
            workers_per_node=self.workers_per_node,
            worker_memory_bytes=self.worker_memory_bytes,
            network_bandwidth_bytes_per_s=self.network_bandwidth_bytes_per_s,
            local_bandwidth_bytes_per_s=self.local_bandwidth_bytes_per_s,
        )


#: The paper's 10-node deployment (29 workers + master).
PAPER_CLUSTER = ClusterSpec()

#: A small deployment used by the unit tests (4 workers) to keep runs fast.
TEST_CLUSTER = ClusterSpec(num_nodes=1, workers_per_node=5, worker_memory_bytes=2 * 1024**3)
