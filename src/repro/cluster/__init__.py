"""Simulated cluster substrate.

The paper runs on a 10-node Hadoop/Giraph cluster (2 x 6-core Xeon X5660,
48 GB RAM, 1 Gbps per node, 29 workers + 1 master).  This package models that
environment:

* :class:`repro.cluster.spec.ClusterSpec` -- the static description (nodes,
  workers per node, memory, network bandwidth).
* :class:`repro.cluster.cost_profile.CostProfile` -- the *ground-truth* cost
  factors used by the BSP engine to convert per-worker counters into simulated
  wall-clock seconds.  PREDIcT never reads these factors; it has to learn them
  back through its regression-based cost model, exactly as the paper learns
  Giraph's cost behaviour from profiled runs.
* :class:`repro.cluster.network.NetworkModel` -- byte/message level timing.
* :class:`repro.cluster.memory.MemoryModel` -- per-worker memory accounting
  used to reproduce the paper's out-of-memory observations (semi-clustering
  and top-k on Twitter).
"""

from repro.cluster.cost_profile import CostProfile
from repro.cluster.memory import MemoryModel
from repro.cluster.network import NetworkModel
from repro.cluster.spec import ClusterSpec

__all__ = ["ClusterSpec", "CostProfile", "NetworkModel", "MemoryModel"]
