"""Network timing model.

The messaging phase of a BSP superstep is dominated by shipping messages to
other workers.  :class:`NetworkModel` converts (message count, byte count)
pairs into time, distinguishing local deliveries (same worker: a memory copy)
from remote deliveries (different worker: serialisation + 1 Gbps link), and
optionally applying a congestion penalty that grows superlinearly with the
volume shipped in a single superstep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cost_profile import CostProfile


@dataclass(frozen=True)
class NetworkModel:
    """Times the messaging phase of one worker in one superstep."""

    profile: CostProfile

    def local_delivery_time(self, num_messages: int, num_bytes: int) -> float:
        """Time to deliver messages whose destination is on the same worker."""
        return (
            num_messages * self.profile.cost_per_local_message
            + num_bytes * self.profile.cost_per_local_byte
        )

    def remote_delivery_time(self, num_messages: int, num_bytes: int) -> float:
        """Time to deliver messages to other workers over the network."""
        base = (
            num_messages * self.profile.cost_per_remote_message
            + num_bytes * self.profile.cost_per_remote_byte
        )
        if self.profile.congestion_factor > 0 and num_bytes > 0:
            # Mild superlinearity: shipping x MB costs an extra
            # congestion_factor * (x MB)^1.2 * per-byte cost.
            megabytes = num_bytes / 1e6
            base += (
                self.profile.congestion_factor
                * (megabytes**1.2)
                * 1e6
                * self.profile.cost_per_remote_byte
            )
        return base

    def messaging_time(
        self,
        local_messages: int,
        local_bytes: int,
        remote_messages: int,
        remote_bytes: int,
    ) -> float:
        """Total messaging-phase time for one worker in one superstep."""
        return self.local_delivery_time(local_messages, local_bytes) + self.remote_delivery_time(
            remote_messages, remote_bytes
        )
