"""Network timing model.

The messaging phase of a BSP superstep is dominated by shipping messages to
other workers.  :class:`NetworkModel` converts (message count, byte count)
pairs into time, distinguishing local deliveries (same worker: a memory copy)
from remote deliveries (different worker: serialisation + 1 Gbps link), and
optionally applying a congestion penalty that grows superlinearly with the
volume shipped in a single superstep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cost_profile import CostProfile


@dataclass(frozen=True)
class NetworkModel:
    """Times the messaging phase of one worker in one superstep."""

    profile: CostProfile

    def local_delivery_time(self, num_messages: int, num_bytes: int) -> float:
        """Time to deliver messages whose destination is on the same worker."""
        return (
            num_messages * self.profile.cost_per_local_message
            + num_bytes * self.profile.cost_per_local_byte
        )

    def remote_delivery_time(self, num_messages: int, num_bytes: int) -> float:
        """Time to deliver messages to other workers over the network."""
        base = (
            num_messages * self.profile.cost_per_remote_message
            + num_bytes * self.profile.cost_per_remote_byte
        )
        if self.profile.congestion_factor > 0 and num_bytes > 0:
            # Mild superlinearity: shipping x MB costs an extra
            # congestion_factor * (x MB)^1.2 * per-byte cost.
            megabytes = num_bytes / 1e6
            base += (
                self.profile.congestion_factor
                * (megabytes**1.2)
                * 1e6
                * self.profile.cost_per_remote_byte
            )
        return base

    def messaging_time(
        self,
        local_messages: int,
        local_bytes: int,
        remote_messages: int,
        remote_bytes: int,
    ) -> float:
        """Total messaging-phase time for one worker in one superstep."""
        return self.local_delivery_time(local_messages, local_bytes) + self.remote_delivery_time(
            remote_messages, remote_bytes
        )

    def messaging_time_batch(
        self,
        local_messages: np.ndarray,
        local_bytes: np.ndarray,
        remote_messages: np.ndarray,
        remote_bytes: np.ndarray,
    ) -> np.ndarray:
        """Messaging-phase time of every worker at once.

        The array counterpart of :meth:`messaging_time`: the engine hands over
        the per-worker local/remote message and byte split as aligned arrays
        and all workers are timed in one vectorized expression.  The formula
        mirrors the scalar methods term for term (same association order, same
        float64 operations), so each element is bit-identical to the scalar
        result for that worker.  The congestion power term is evaluated with
        Python's float ``**`` per worker (the worker count is tiny): numpy's
        array power can differ from it in the last ulp, which would break the
        bit-identity promise above.
        """
        profile = self.profile
        local = (
            local_messages * profile.cost_per_local_message
            + local_bytes * profile.cost_per_local_byte
        )
        remote = (
            remote_messages * profile.cost_per_remote_message
            + remote_bytes * profile.cost_per_remote_byte
        )
        if profile.congestion_factor > 0:
            extra = np.asarray(
                [
                    profile.congestion_factor
                    * ((num_bytes / 1e6) ** 1.2)
                    * 1e6
                    * profile.cost_per_remote_byte
                    if num_bytes > 0
                    else 0.0
                    for num_bytes in remote_bytes.tolist()
                ],
                dtype=np.float64,
            )
            remote = remote + extra
        return local + remote
