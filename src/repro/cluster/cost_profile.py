"""Ground-truth cost factors of the simulated cluster.

The BSP engine uses these factors to turn per-worker, per-superstep counters
into simulated wall-clock time.  They play the role of the *true* (unknown)
cost behaviour of Giraph on the paper's cluster: PREDIcT never reads them --
it observes only (key input features, per-iteration runtime) pairs and fits
its own multivariate linear cost model.  The reproduction therefore measures
exactly what the paper measures: how well a linear model trained on sample
runs (and optionally historical runs) recovers the true cost factors, and how
feature-extrapolation errors propagate into runtime errors.

The default factors make *networking dominate* (per-remote-byte and
per-remote-message terms are the largest contributors for realistic message
sizes), matching modelling assumption (v) of the paper.  A small superlinear
memory-pressure term and multiplicative noise keep the relationship from
being perfectly linear, so the regression has realistic residuals.

Calibration note: the per-unit costs are deliberately *not* the physical
constants of a 1 Gbps network.  The stand-in datasets are three to four
orders of magnitude smaller than the paper's graphs, so the per-unit costs
are scaled up by a comparable factor to keep (a) per-superstep times in the
tens-of-seconds range the paper reports and, more importantly, (b) the
feature-dependent terms dominant over the fixed barrier overhead -- otherwise
every superstep would cost the same and there would be nothing for PREDIcT's
cost model to learn, which is not the regime the paper studies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostProfile:
    """Per-feature time costs (seconds) used by the runtime model.

    Attributes
    ----------
    cost_per_active_vertex:
        CPU time per active vertex executing the compute function.
    cost_per_message_sent:
        CPU time to construct and enqueue one outgoing message.
    cost_per_local_message / cost_per_remote_message:
        Per-message delivery overhead (serialisation, queueing); remote
        messages additionally pay the RPC overhead.
    cost_per_local_byte / cost_per_remote_byte:
        Per-byte transfer cost (inverse bandwidth); the remote value reflects
        the 1 Gbps network shared between workers of the same node.
    barrier_overhead:
        Fixed synchronisation cost per superstep (master coordination,
        ZooKeeper round trips in real Giraph).
    setup_time / per_vertex_read_cost / per_edge_read_cost / per_vertex_write_cost:
        Costs of the non-superstep phases (setup, read, write).
    noise_std:
        Standard deviation of the multiplicative log-normal noise applied to
        each superstep time (0 disables noise).
    congestion_factor:
        Strength of a mild superlinear penalty on remote bytes, modelling
        network congestion when supersteps ship very large volumes.
    """

    cost_per_active_vertex: float = 2.0e-4
    cost_per_message_sent: float = 5.0e-5
    cost_per_local_message: float = 2.0e-5
    cost_per_remote_message: float = 2.0e-4
    cost_per_local_byte: float = 2.0e-6
    cost_per_remote_byte: float = 4.0e-5
    barrier_overhead: float = 0.1
    setup_time: float = 4.0
    per_vertex_read_cost: float = 1.0e-3
    per_edge_read_cost: float = 2.0e-4
    per_vertex_write_cost: float = 5.0e-4
    noise_std: float = 0.0
    congestion_factor: float = 0.0

    def with_noise(self, noise_std: float) -> "CostProfile":
        """Return a copy with multiplicative noise enabled."""
        return replace(self, noise_std=noise_std)

    def with_congestion(self, congestion_factor: float) -> "CostProfile":
        """Return a copy with the superlinear congestion term enabled."""
        return replace(self, congestion_factor=congestion_factor)

    def scaled(self, factor: float) -> "CostProfile":
        """Return a copy with every per-unit cost multiplied by ``factor``.

        Useful for modelling faster/slower clusters in what-if examples.
        """
        return CostProfile(
            cost_per_active_vertex=self.cost_per_active_vertex * factor,
            cost_per_message_sent=self.cost_per_message_sent * factor,
            cost_per_local_message=self.cost_per_local_message * factor,
            cost_per_remote_message=self.cost_per_remote_message * factor,
            cost_per_local_byte=self.cost_per_local_byte * factor,
            cost_per_remote_byte=self.cost_per_remote_byte * factor,
            barrier_overhead=self.barrier_overhead * factor,
            setup_time=self.setup_time * factor,
            per_vertex_read_cost=self.per_vertex_read_cost * factor,
            per_edge_read_cost=self.per_edge_read_cost * factor,
            per_vertex_write_cost=self.per_vertex_write_cost * factor,
            noise_std=self.noise_std,
            congestion_factor=self.congestion_factor,
        )


#: Default profile: network-dominated, mild noise, used by the benchmarks.
DEFAULT_PROFILE = CostProfile(noise_std=0.03, congestion_factor=0.02)

#: Deterministic profile used by unit tests (no noise, strictly linear).
DETERMINISTIC_PROFILE = CostProfile(noise_std=0.0, congestion_factor=0.0)
