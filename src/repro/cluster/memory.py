"""Per-worker memory accounting.

Giraph keeps the input graph, per-vertex state and all incoming message
buffers in memory and (at the version the paper uses) cannot spill messages to
disk.  The paper reports that semi-clustering, top-k ranking and neighborhood
estimation therefore run out of memory on the Twitter dataset.  This module
reproduces that failure mode: the BSP engine can ask the memory model whether
a superstep's buffered messages plus the resident graph exceed a worker's
allocation and raise :class:`repro.exceptions.OutOfMemoryError` if so.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.spec import ClusterSpec
from repro.exceptions import OutOfMemoryError

#: Rough per-object overheads (bytes) used to estimate the resident footprint.
VERTEX_OVERHEAD_BYTES = 64
EDGE_OVERHEAD_BYTES = 16
MESSAGE_OVERHEAD_BYTES = 24


@dataclass(frozen=True)
class MemoryEstimate:
    """Estimated footprint of one worker during a superstep."""

    graph_bytes: int
    state_bytes: int
    message_bytes: int

    @property
    def total_bytes(self) -> int:
        """Total estimated resident bytes."""
        return self.graph_bytes + self.state_bytes + self.message_bytes


@dataclass(frozen=True)
class MemoryModel:
    """Checks worker memory usage against the cluster allocation."""

    spec: ClusterSpec
    enforce: bool = False

    def estimate(
        self,
        num_vertices: int,
        num_edges: int,
        state_bytes: int,
        buffered_messages: int,
        buffered_message_bytes: int,
    ) -> MemoryEstimate:
        """Estimate the footprint of a worker holding the given structures."""
        graph_bytes = num_vertices * VERTEX_OVERHEAD_BYTES + num_edges * EDGE_OVERHEAD_BYTES
        message_bytes = buffered_messages * MESSAGE_OVERHEAD_BYTES + buffered_message_bytes
        return MemoryEstimate(
            graph_bytes=graph_bytes,
            state_bytes=state_bytes,
            message_bytes=message_bytes,
        )

    def estimate_batch(
        self,
        num_vertices: np.ndarray,
        num_edges: np.ndarray,
        state_bytes: np.ndarray,
        buffered_messages: np.ndarray,
        buffered_message_bytes: np.ndarray,
    ) -> np.ndarray:
        """Per-worker total footprint, all workers in one array expression.

        The array counterpart of :meth:`estimate` for the engine's
        partition-native batch path: the per-worker vertex/edge counts and the
        delivered message split arrive as aligned arrays (segment sums over
        the worker boundaries) and the estimate never leaves NumPy.  Returns
        the ``total_bytes`` vector; the integer arithmetic is identical to the
        scalar method.
        """
        graph_bytes = num_vertices * VERTEX_OVERHEAD_BYTES + num_edges * EDGE_OVERHEAD_BYTES
        message_bytes = buffered_messages * MESSAGE_OVERHEAD_BYTES + buffered_message_bytes
        return graph_bytes + state_bytes + message_bytes

    def check(self, worker_id: int, estimate: MemoryEstimate) -> None:
        """Raise :class:`OutOfMemoryError` when enforcement is on and exceeded."""
        if not self.enforce:
            return
        self._raise_if_exceeded(worker_id, estimate.total_bytes)

    def check_batch(self, total_bytes: np.ndarray) -> None:
        """Check every worker's total at once (first offender raises)."""
        if not self.enforce:
            return
        exceeded = np.nonzero(total_bytes > self.spec.worker_memory_bytes)[0]
        if len(exceeded):
            worker_id = int(exceeded[0])
            self._raise_if_exceeded(worker_id, int(total_bytes[worker_id]))

    def _raise_if_exceeded(self, worker_id: int, total_bytes: int) -> None:
        if total_bytes > self.spec.worker_memory_bytes:
            raise OutOfMemoryError(
                f"worker {worker_id} needs {total_bytes} bytes "
                f"but only {self.spec.worker_memory_bytes} are allocated "
                "(Giraph cannot spill messages to disk)"
            )

    def utilisation(self, estimate: MemoryEstimate) -> float:
        """Fraction of the worker allocation used by ``estimate``."""
        return estimate.total_bytes / self.spec.worker_memory_bytes
