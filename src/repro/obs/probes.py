"""Cheap process/iteration probes attached to spans as attributes.

Everything here is only called when tracing is enabled (call sites guard on
``tracer.enabled``), so the probes trade a little cost for portability-free
simplicity: RSS comes straight from ``/proc/self/statm``.
"""

from __future__ import annotations

import os
from typing import Any, Dict

_PAGE_KB = os.sysconf("SC_PAGE_SIZE") // 1024 if hasattr(os, "sysconf") else 4


def rss_kb() -> int:
    """Resident set size of this process in KiB (0 where /proc is absent)."""
    try:
        with open("/proc/self/statm", "rb") as handle:
            return int(handle.read().split()[1]) * _PAGE_KB
    except (OSError, IndexError, ValueError):  # pragma: no cover - non-Linux
        return 0


def worker_imbalance(worker_counters) -> float:
    """Max-over-mean of the per-worker simulated times (1.0 = balanced).

    This is the straggler factor the paper's per-worker features exist to
    capture: the barrier waits for the slowest worker, so superstep runtime
    scales with max(worker_time) while total work scales with the mean.
    """
    times = [c.worker_time for c in worker_counters]
    if not times:
        return 1.0
    mean = sum(times) / len(times)
    if mean <= 0.0:
        return 1.0
    return max(times) / mean


def superstep_attrs(profile, kernel_tier=None, threads=None) -> Dict[str, Any]:
    """Span attributes summarising one :class:`IterationProfile`.

    ``modeled_s`` is the :class:`RuntimeModel` simulated superstep time --
    the quantity the predictor extrapolates -- so each superstep span pairs
    it with the measured wall duration the span itself records.  When the
    caller passes the run's resolved ``kernel_tier`` (and thread count),
    they ride along so every measured time says which kernel implementation
    produced it.
    """
    attrs = {
        "superstep": profile.superstep,
        "modeled_s": profile.runtime,
        "barrier_s": profile.barrier_time,
        "active_vertices": profile.active_vertices,
        "messages_sent": profile.total_messages,
        "local_message_bytes": profile.local_message_bytes,
        "remote_message_bytes": profile.remote_message_bytes,
        "critical_worker": profile.critical_worker,
        "worker_imbalance": round(worker_imbalance(profile.worker_counters), 4),
        "rss_kb": rss_kb(),
    }
    if kernel_tier is not None:
        attrs["kernel_tier"] = kernel_tier
        attrs["threads"] = 1 if threads is None else threads
    return attrs
