"""Telemetry: low-overhead spans/counters plus exporters.

See ``docs/OBSERVABILITY.md`` for the span taxonomy and the
measured-vs-modeled semantics.  Quick use::

    from repro.obs import Tracer, write_chrome_trace

    tracer = Tracer()
    result = engine.run(graph, algorithm, config,
                        EngineConfig(trace=tracer))
    write_chrome_trace(tracer, "out.json")   # load in ui.perfetto.dev

When ``EngineConfig.trace`` is None the engine instruments against
:data:`NULL_TRACER`, which is allocation-free -- tracing off costs nothing.
"""

from repro.obs.export import (
    span_dicts,
    summary_table,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.probes import rss_kb, superstep_attrs, worker_imbalance
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    Tracer,
    activate,
    current_tracer,
)

__all__ = [
    "Span",
    "Tracer",
    "NullSpan",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "current_tracer",
    "activate",
    "span_dicts",
    "summary_table",
    "write_chrome_trace",
    "write_jsonl",
    "rss_kb",
    "superstep_attrs",
    "worker_imbalance",
]
