"""Low-overhead tracing core: spans, counters, gauges, and the no-op twin.

Design constraints, in priority order:

1. **Off means free.**  Every instrumentation point in the engine hot path
   runs against :data:`NULL_TRACER` when tracing is disabled.  The null
   objects are allocation-free: singletons with ``__slots__ = ()``, fixed
   argument signatures (no ``*args``/``**kwargs`` -- star-args build a tuple
   or dict per call), and bodies that touch nothing.
   ``tests/test_obs_trace.py`` pins this with a tracemalloc probe.
2. **Spans are context managers.**  ``with tracer.span("compute") as sp:``
   records a monotonic (``time.perf_counter``) start/duration pair, nests
   under the innermost open span of the same tracer, and may carry
   attributes attached via :meth:`Span.set` / :meth:`Span.merge`.
   Instrumented code guards attribute computation with
   ``if tracer.enabled:`` so the disabled path never evaluates them.
3. **Cross-process shipping.**  Pool children each run their own
   :class:`Tracer` and :meth:`Tracer.drain` closed spans into picklable
   tuples with *wall-clock* timestamps; the master re-bases them onto its
   own ``perf_counter`` timeline in :meth:`Tracer.adopt`, remapping span ids
   and re-parenting roots under a master span.  Wall clocks are shared
   across processes on one host (perf_counter is not), so drained spans
   line up with master spans up to NTP jitter -- microseconds locally.

The ambient-tracer helpers (:func:`current_tracer` / :func:`activate`) are
for *cold* layers only -- the predictor and regression instrument themselves
through the ambient tracer so callers need not thread one through every
signature.  The engine hot path never touches the context variable (a
ContextVar set/reset allocates a Token) and takes the tracer explicitly via
``EngineConfig.trace``.
"""

from __future__ import annotations

import contextlib
import time
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Span",
    "Tracer",
    "NullSpan",
    "NullTracer",
    "NULL_TRACER",
    "NULL_SPAN",
    "current_tracer",
    "activate",
]

#: Picklable drained-span record:
#: ``(span_id, parent_id, name, track, start_wall, duration, attrs)``.
SpanRecord = Tuple[int, Optional[int], str, str, float, float, Optional[dict]]


class Span:
    """One timed region.  Created via :meth:`Tracer.span`; use as a
    context manager (or pair :meth:`Tracer.begin` with :meth:`finish`)."""

    __slots__ = ("_tracer", "span_id", "parent_id", "name", "track",
                 "start", "duration", "attrs", "_open")

    def __init__(self, tracer: "Tracer", name: str, track: str) -> None:
        self._tracer = tracer
        self.name = name
        self.track = track
        self.span_id: int = 0
        self.parent_id: Optional[int] = None
        self.start: float = 0.0
        self.duration: float = 0.0
        self.attrs: Optional[Dict[str, Any]] = None
        self._open = False

    def __enter__(self) -> "Span":
        tracer = self._tracer
        tracer._next_id += 1
        self.span_id = tracer._next_id
        stack = tracer._stack
        self.parent_id = stack[-1].span_id if stack else None
        stack.append(self)
        self._open = True
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish()

    def finish(self) -> None:
        """Close the span; idempotent."""
        if not self._open:
            return
        self.duration = time.perf_counter() - self.start
        self._open = False
        tracer = self._tracer
        if tracer._stack and tracer._stack[-1] is self:
            tracer._stack.pop()
        else:  # out-of-order finish (begin/finish misuse); drop from stack
            try:
                tracer._stack.remove(self)
            except ValueError:
                pass
        tracer.spans.append(self)

    def set(self, key: str, value: Any) -> "Span":
        """Attach one attribute; returns self for chaining."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs[key] = value
        return self

    def merge(self, mapping: Dict[str, Any]) -> "Span":
        """Attach every item of ``mapping`` as attributes."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs.update(mapping)
        return self


class Tracer:
    """Recording tracer: collects closed spans, counters and gauges.

    Spans land in :attr:`spans` in *close* order (children before parents).
    :attr:`counters` accumulates name -> total; :attr:`gauges` keeps
    ``(name, track, wall_time, value)`` samples for time-series export.
    """

    enabled = True

    def __init__(self, track: str = "main") -> None:
        self.track = track
        self.spans: List[Span] = []
        self.counters: Dict[str, float] = {}
        self.gauges: List[Tuple[str, str, float, float]] = []
        self._stack: List[Span] = []
        self._next_id = 0
        # Wall/perf anchors taken at the same instant: ``drain`` converts
        # perf timestamps to wall clock for shipping, ``adopt`` converts back
        # onto this tracer's perf timeline.
        self._wall0 = time.time()
        self._perf0 = time.perf_counter()

    # ------------------------------------------------------------------ spans
    def span(self, name: str, track: Optional[str] = None) -> Span:
        """New (unstarted) span; enter it with ``with`` to start the clock."""
        return Span(self, name, track if track is not None else self.track)

    def begin(self, name: str, track: Optional[str] = None) -> Span:
        """Start a span without ``with``; close it via :meth:`Span.finish`."""
        return self.span(name, track).__enter__()

    # --------------------------------------------------------------- counters
    def counter(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the running total for ``name``."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float, track: Optional[str] = None) -> None:
        """Record an instantaneous sample of ``name`` at the current time."""
        now = time.perf_counter()
        self.gauges.append(
            (name, track if track is not None else self.track, now, float(value))
        )

    def merge_counters(self, totals: Dict[str, float], prefix: str = "") -> None:
        """Fold a ``name -> total`` mapping into the counters.

        Used by subsystems keeping their own accounting (the prediction
        service's cache backends) to land their totals in the trace summary
        at shutdown, optionally namespaced with ``prefix``.
        """
        for name, value in totals.items():
            self.counter(f"{prefix}{name}", value)

    # ------------------------------------------------- cross-process shipping
    def drain(self) -> List[SpanRecord]:
        """Pop all closed spans as picklable wall-clock records.

        Open spans stay on the stack untouched; call sites drain at a
        barrier, after the spans of the finished phase are closed.
        """
        offset = self._wall0 - self._perf0
        records = [
            (s.span_id, s.parent_id, s.name, s.track,
             s.start + offset, s.duration, s.attrs)
            for s in self.spans
        ]
        self.spans = []
        return records

    def adopt(self, records: Sequence[SpanRecord],
              parent_id: Optional[int] = None) -> None:
        """Graft drained ``records`` from another tracer into this one.

        Span ids are remapped into this tracer's id space; records whose
        parent is not in the batch become children of ``parent_id``.  Wall
        timestamps are re-based to this tracer's ``perf_counter`` timeline
        so adopted spans and locally recorded ones share one clock.
        """
        offset = self._perf0 - self._wall0
        mapping: Dict[int, int] = {}
        for old_id, _, _, _, _, _, _ in records:
            self._next_id += 1
            mapping[old_id] = self._next_id
        for old_id, old_parent, name, track, start_wall, duration, attrs in records:
            span = Span(self, name, track)
            span.span_id = mapping[old_id]
            span.parent_id = mapping.get(old_parent, parent_id)
            span.start = start_wall + offset
            span.duration = duration
            span.attrs = dict(attrs) if attrs else None
            self.spans.append(span)


class NullSpan:
    """Allocation-free no-op span.  A single shared instance stands in for
    every span when tracing is off; all methods are empty and return fast."""

    __slots__ = ()

    span_id: Optional[int] = None
    parent_id: Optional[int] = None
    name = ""
    track = ""
    start = 0.0
    duration = 0.0
    attrs: Optional[dict] = None

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def finish(self) -> None:
        return None

    def set(self, key: str, value: Any) -> "NullSpan":
        return self

    def merge(self, mapping: Dict[str, Any]) -> "NullSpan":
        return self


class NullTracer:
    """Allocation-free no-op tracer; the default when tracing is off."""

    __slots__ = ()

    enabled = False
    track = ""

    def span(self, name: str, track: Optional[str] = None) -> NullSpan:
        return NULL_SPAN

    def begin(self, name: str, track: Optional[str] = None) -> NullSpan:
        return NULL_SPAN

    def counter(self, name: str, value: float = 1) -> None:
        return None

    def merge_counters(self, totals: Dict[str, float], prefix: str = "") -> None:
        return None

    def gauge(self, name: str, value: float, track: Optional[str] = None) -> None:
        return None

    def drain(self) -> List[SpanRecord]:
        return []

    def adopt(self, records: Sequence[SpanRecord],
              parent_id: Optional[int] = None) -> None:
        return None


NULL_SPAN = NullSpan()
NULL_TRACER = NullTracer()

_ACTIVE: ContextVar = ContextVar("repro_tracer", default=NULL_TRACER)


def current_tracer():
    """The ambient tracer (:data:`NULL_TRACER` unless one is activated)."""
    return _ACTIVE.get()


@contextlib.contextmanager
def activate(tracer) -> Iterator[None]:
    """Make ``tracer`` ambient for the duration of the ``with`` block."""
    token = _ACTIVE.set(tracer if tracer is not None else NULL_TRACER)
    try:
        yield
    finally:
        _ACTIVE.reset(token)
