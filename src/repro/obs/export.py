"""Trace exporters: JSONL, Chrome ``trace_event`` JSON, text summary.

All three consume a finished :class:`~repro.obs.tracer.Tracer`.  The Chrome
format is the ``traceEvents`` array documented for ``chrome://tracing`` --
load the file in https://ui.perfetto.dev to browse the span tree.  Tracks
("main", "proc0", "proc1", ...) map to Chrome *thread* ids inside one
process, each labelled with a ``thread_name`` metadata event, so the
per-worker spans stack as separate rows under the master timeline.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.utils.tables import format_table

__all__ = [
    "span_dicts",
    "write_jsonl",
    "write_chrome_trace",
    "summary_table",
]

_PID = 1


def _json_safe(value: Any) -> Any:
    """Coerce numpy scalars and other oddities to plain JSON types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    item = getattr(value, "item", None)  # numpy scalar
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return str(value)


def span_dicts(tracer) -> List[Dict[str, Any]]:
    """Closed spans as plain dicts (start-ordered), the JSONL row format."""
    rows = [
        {
            "span_id": s.span_id,
            "parent_id": s.parent_id,
            "name": s.name,
            "track": s.track,
            "start_s": s.start,
            "duration_s": s.duration,
            "attrs": _json_safe(s.attrs) if s.attrs else {},
        }
        for s in tracer.spans
    ]
    rows.sort(key=lambda row: row["start_s"])
    return rows


def write_jsonl(tracer, path: str) -> None:
    """One JSON object per line: spans, then counters, then gauges."""
    with open(path, "w", encoding="utf-8") as handle:
        for row in span_dicts(tracer):
            handle.write(json.dumps({"type": "span", **row}) + "\n")
        for name, total in sorted(tracer.counters.items()):
            handle.write(json.dumps(
                {"type": "counter", "name": name, "total": _json_safe(total)}
            ) + "\n")
        for name, track, when, value in tracer.gauges:
            handle.write(json.dumps(
                {"type": "gauge", "name": name, "track": track,
                 "time_s": when, "value": value}
            ) + "\n")


def chrome_trace_events(tracer) -> List[Dict[str, Any]]:
    """The ``traceEvents`` array for one tracer."""
    spans = list(tracer.spans)
    if spans:
        t0 = min(s.start for s in spans)
    elif tracer.gauges:
        t0 = min(g[2] for g in tracer.gauges)
    else:
        t0 = 0.0

    tracks = sorted({s.track for s in spans} | {g[1] for g in tracer.gauges})
    # Keep "main" first so Perfetto shows the master timeline on top.
    tracks.sort(key=lambda t: (t != "main", t))
    tids = {track: index for index, track in enumerate(tracks)}

    events: List[Dict[str, Any]] = [
        {
            "ph": "M", "name": "thread_name", "pid": _PID, "tid": tid,
            "args": {"name": track},
        }
        for track, tid in tids.items()
    ]
    for s in sorted(spans, key=lambda s: s.start):
        event = {
            "ph": "X",
            "name": s.name,
            "cat": "repro",
            "pid": _PID,
            "tid": tids[s.track],
            "ts": (s.start - t0) * 1e6,
            "dur": s.duration * 1e6,
        }
        if s.attrs:
            event["args"] = _json_safe(s.attrs)
        events.append(event)
    for name, track, when, value in tracer.gauges:
        events.append({
            "ph": "C", "name": name, "cat": "repro", "pid": _PID,
            "tid": tids[track], "ts": (when - t0) * 1e6,
            "args": {"value": value},
        })
    return events


def write_chrome_trace(tracer, path: str) -> None:
    """Write a Chrome ``trace_event`` JSON file (loads in Perfetto)."""
    payload = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def summary_table(tracer) -> str:
    """Aggregate text report: per-span-name totals, then the superstep
    measured-vs-modeled table (the pair ROADMAP item 3 calibrates on)."""
    by_name: Dict[str, List[float]] = {}
    for s in tracer.spans:
        by_name.setdefault(s.name, []).append(s.duration)
    rows = [
        (name, len(durs), f"{sum(durs):.6f}",
         f"{sum(durs) / len(durs):.6f}", f"{max(durs):.6f}")
        for name, durs in sorted(
            by_name.items(), key=lambda item: -sum(item[1])
        )
    ]
    parts = [format_table(
        ["span", "count", "total_s", "mean_s", "max_s"], rows,
        title="Span summary",
    )]

    supersteps = sorted(
        (s for s in tracer.spans if s.name == "superstep" and s.attrs),
        key=lambda s: s.attrs.get("superstep", 0),
    )
    if supersteps:
        ss_rows = []
        for s in supersteps:
            a = s.attrs
            tier = a.get("kernel_tier")
            ss_rows.append((
                a.get("superstep"),
                f"{s.duration:.6f}",
                f"{a.get('modeled_s', 0.0):.6f}",
                a.get("active_vertices"),
                a.get("messages_sent"),
                a.get("remote_message_bytes"),
                a.get("worker_imbalance"),
                "-" if tier is None else f"{tier}/{a.get('threads', 1)}",
            ))
        parts.append(format_table(
            ["superstep", "measured_s", "modeled_s", "active",
             "messages", "remote_bytes", "imbalance", "tier"],
            ss_rows,
            title="Measured vs modeled supersteps",
        ))

    if tracer.counters:
        parts.append(format_table(
            ["counter", "total"],
            [(name, _json_safe(total))
             for name, total in sorted(tracer.counters.items())],
            title="Counters",
        ))
    return "\n\n".join(parts)
