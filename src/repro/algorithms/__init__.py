"""Iterative vertex-centric algorithms evaluated in the paper.

* :mod:`repro.algorithms.pagerank` -- PageRank (constant per-iteration
  runtime; category i of §4).
* :mod:`repro.algorithms.semi_clustering` -- parallel semi-clustering from the
  Pregel paper (variable runtime caused by growing message sizes; category
  ii.a).
* :mod:`repro.algorithms.topk_ranking` -- top-k ranking over PageRank output
  (variable runtime caused by a varying number of messages; category ii.b).
* :mod:`repro.algorithms.connected_components` -- labelling weakly connected
  components by min-id propagation.
* :mod:`repro.algorithms.neighborhood` -- neighborhood-size estimation with
  Flajolet-Martin sketches.

All algorithms implement :class:`repro.algorithms.base.IterativeAlgorithm` and
run unmodified on the BSP engine; their configuration dataclasses expose the
convergence parameters the PREDIcT transform functions manipulate.
"""

from repro.algorithms.base import IterativeAlgorithm
from repro.algorithms.connected_components import ConnectedComponents, ConnectedComponentsConfig
from repro.algorithms.neighborhood import NeighborhoodEstimation, NeighborhoodConfig
from repro.algorithms.pagerank import PageRank, PageRankConfig
from repro.algorithms.registry import algorithm_by_name, available_algorithms
from repro.algorithms.semi_clustering import SemiClustering, SemiClusteringConfig
from repro.algorithms.topk_ranking import TopKRanking, TopKRankingConfig

__all__ = [
    "IterativeAlgorithm",
    "PageRank",
    "PageRankConfig",
    "SemiClustering",
    "SemiClusteringConfig",
    "TopKRanking",
    "TopKRankingConfig",
    "ConnectedComponents",
    "ConnectedComponentsConfig",
    "NeighborhoodEstimation",
    "NeighborhoodConfig",
    "algorithm_by_name",
    "available_algorithms",
]
