"""Top-k ranking over PageRank output.

Top-k ranking (as used in Mizan / the paper's §4.3) finds, for every vertex,
the ``k`` highest PageRank values reachable from it.  It runs on the *output*
of PageRank:

* iteration 0: every vertex initialises its list with its own rank and sends
  the rank to its direct neighbours;
* iteration ``i``: every vertex merges the rank lists received from its
  neighbours into its local top-k list; only vertices whose list *changed*
  send their updated list onwards and stay active.

Because the number of vertices performing updates (and therefore the number
and size of messages) shrinks -- non-monotonically -- across iterations, the
per-iteration runtime varies widely; this is the paper's category ii.b.

Convergence: the fraction of vertices that performed an update during the
iteration drops below ``tau`` (``activeVertices / totalVertices < tau``).
That threshold is a *ratio*, not tuned to the dataset size, so PREDIcT's
default transform keeps it unchanged for the sample run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.algorithms.base import (
    IterativeAlgorithm,
    require_in_unit_interval,
    require_positive,
)
from repro.bsp.aggregators import Aggregator, sum_aggregator
from repro.bsp.master import GraphInfo
from repro.bsp.ragged import Ragged, ragged_rows_equal
from repro.bsp.vertex import VertexContext
from repro.graph.csr import concat_ranges
from repro.exceptions import ConfigurationError
from repro.graph.digraph import DiGraph

#: Aggregator counting vertices that updated their top-k list this superstep.
UPDATES_AGGREGATOR = "topk.updated_vertices"


@dataclass(frozen=True)
class TopKRankingConfig:
    """Configuration of a top-k ranking run.

    Attributes
    ----------
    k:
        Number of top ranks each vertex tracks (``topK`` in the paper).
    tolerance:
        Convergence threshold on the ratio of vertices performing updates.
    ranks:
        Per-vertex input rank values (PageRank output).  When None, every
        vertex's out-degree is used as a deterministic fallback so the
        algorithm remains runnable stand-alone (tests, examples).
    max_iterations:
        Safety budget on supersteps.
    """

    k: int = 5
    tolerance: float = 0.001
    ranks: Optional[Dict[Any, float]] = field(default=None, compare=False)
    max_iterations: int = 100


class TopKRanking(IterativeAlgorithm):
    """Propagate the k highest reachable PageRank values to every vertex."""

    name = "topk-ranking"
    prefix = "TOP-K"
    convergence_attribute = "tolerance"
    convergence_tuned_to_input_size = False
    requires_undirected = False

    def default_config(self) -> TopKRankingConfig:
        return TopKRankingConfig()

    def validate_config(self, config: TopKRankingConfig) -> None:
        require_positive("k", config.k)
        require_in_unit_interval("tolerance", config.tolerance)
        require_positive("max_iterations", config.max_iterations)

    # ------------------------------------------------------------ vertex API
    def initial_value(self, vertex, graph: DiGraph, config: TopKRankingConfig) -> Tuple[float, ...]:
        rank = self._rank_of(vertex, graph, config)
        return (rank,)

    def aggregators(self, config: TopKRankingConfig) -> List[Aggregator]:
        return [sum_aggregator(UPDATES_AGGREGATOR)]

    def message_size(self, payload: Any) -> int:
        # A list of doubles plus a small framing overhead.
        return 4 + 8 * len(payload)

    def compute(
        self, ctx: VertexContext, messages: List[Tuple[float, ...]], config: TopKRankingConfig
    ) -> None:
        if ctx.superstep == 0:
            ctx.aggregate(UPDATES_AGGREGATOR, 1.0)
            ctx.send_message_to_all_neighbors(ctx.value)
            return

        current = ctx.value
        merged = set(current)
        for rank_list in messages:
            merged.update(rank_list)
        best = tuple(sorted(merged, reverse=True)[: config.k])
        if best != current:
            ctx.value = best
            ctx.aggregate(UPDATES_AGGREGATOR, 1.0)
            ctx.send_message_to_all_neighbors(best)
        else:
            # A vertex whose list did not change sends nothing and goes to
            # sleep; incoming rank lists will re-activate it.
            ctx.vote_to_halt()

    # ------------------------------------------------------- vectorized batch
    batch_payload = "ragged"

    def compute_batch(self, batch, config: TopKRankingConfig) -> None:
        """Array-pass equivalent of :meth:`compute` (one call per worker).

        Rank lists are variable-length float rows on the ragged plane.  The
        scalar ``sorted(set(current) | received, reverse=True)[:k]`` is a
        segment-wise sort/unique/top-k kernel -- value comparisons only, no
        arithmetic -- so merged lists, counters and the convergence history
        are bit-identical to the per-vertex path.
        """
        indices = batch.indices
        if batch.superstep == 0:
            batch.aggregate(UPDATES_AGGREGATOR, np.ones(len(indices)))
            rows = batch.values.take(indices)
            batch.send_ragged_to_all_neighbors(indices, rows, 4 + 8 * rows.lengths)
            return

        current = batch.values.take(indices)
        in_data, in_indptr = batch.incoming_elements()
        received = in_indptr[indices + 1] - in_indptr[indices]
        # Candidate segments: each vertex's current list followed by every
        # delivered rank-list element (set semantics make the order moot).
        seg_lengths = current.lengths + received
        seg_starts = np.cumsum(seg_lengths) - seg_lengths
        candidates = np.empty(int(seg_lengths.sum()), dtype=np.float64)
        candidates[concat_ranges(seg_starts, current.lengths)] = current.data
        candidates[concat_ranges(seg_starts + current.lengths, received)] = in_data[
            concat_ranges(in_indptr[:-1][indices], received)
        ]
        seg_ids = np.repeat(np.arange(len(indices), dtype=np.int64), seg_lengths)
        best = Ragged.from_lengths(
            *batch.kernels.segment_unique_topk_desc(
                candidates, seg_ids, len(indices), config.k
            )
        )

        changed = ~ragged_rows_equal(best, current)
        if changed.any():
            positions = np.nonzero(changed)[0]
            updated = indices[positions]
            best_rows = best.take(positions)
            batch.set_rows(updated, best_rows)
            batch.aggregate(UPDATES_AGGREGATOR, np.ones(len(updated)))
            batch.send_ragged_to_all_neighbors(
                updated, best_rows, 4 + 8 * best_rows.lengths
            )
        batch.vote_to_halt(~changed)

    # ------------------------------------------------------------ convergence
    def check_convergence(
        self,
        aggregates: Dict[str, float],
        superstep: int,
        graph_info: GraphInfo,
        config: TopKRankingConfig,
    ) -> Tuple[bool, Optional[float]]:
        if superstep == 0:
            return False, None
        updated = aggregates.get(UPDATES_AGGREGATOR, 0.0)
        ratio = updated / graph_info.num_vertices
        return ratio < config.tolerance, ratio

    # -------------------------------------------------------------- internals
    @staticmethod
    def _rank_of(vertex, graph: DiGraph, config: TopKRankingConfig) -> float:
        if config.ranks is not None:
            if vertex not in config.ranks:
                raise ConfigurationError(
                    f"no input rank provided for vertex {vertex!r}"
                )
            return float(config.ranks[vertex])
        # Deterministic stand-alone fallback: normalised out-degree.
        return (graph.out_degree(vertex) + 1.0) / (graph.num_edges + graph.num_vertices)


def config_with_ranks(config: TopKRankingConfig, ranks: Dict[Any, float]) -> TopKRankingConfig:
    """Return a copy of ``config`` carrying the PageRank output ``ranks``."""
    return TopKRankingConfig(
        k=config.k,
        tolerance=config.tolerance,
        ranks=dict(ranks),
        max_iterations=config.max_iterations,
    )
