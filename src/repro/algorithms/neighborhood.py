"""Neighborhood-size estimation with Flajolet-Martin sketches.

Neighborhood estimation answers "how many vertices are reachable from v within
h hops?" for every vertex -- the LinkedIn-style statistic the paper's
introduction motivates ("total number of professionals reachable within a few
hops").  Computing the exact neighbourhood function is quadratic, so the
standard approach (PEGASUS' HADI, Pregel implementations) keeps a small
Flajolet-Martin (FM) bitstring sketch per vertex and iterates:

* iteration 0: every vertex initialises its sketch with its own id and sends
  it to its neighbours;
* iteration ``i``: every vertex ORs the received sketches into its own; if the
  sketch changed, the vertex forwards it, otherwise it votes to halt.

The number of active vertices decreases over iterations (sparse computation),
making this another variable-runtime workload.  Convergence: the fraction of
vertices whose sketch changed drops below ``tolerance``, or a fixed hop budget
``max_hops`` is reached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.algorithms.base import (
    IterativeAlgorithm,
    require_in_unit_interval,
    require_positive,
)
from repro.bsp.aggregators import Aggregator, sum_aggregator
from repro.bsp.master import GraphInfo
from repro.bsp.vertex import VertexContext
from repro.graph.digraph import DiGraph

#: Aggregator counting vertices whose sketch changed this superstep.
UPDATES_AGGREGATOR = "neighborhood.updated"

#: Correction constant of the Flajolet-Martin estimator.
FM_PHI = 0.77351


@dataclass(frozen=True)
class NeighborhoodConfig:
    """Configuration of a neighborhood-estimation run.

    Attributes
    ----------
    num_sketches:
        Number of independent FM sketches per vertex (averaged to reduce the
        estimator's variance).
    sketch_bits:
        Width of each sketch bitmap.
    max_hops:
        Maximum neighbourhood radius to explore.
    tolerance:
        Convergence threshold on the ratio of vertices whose sketch changed.
    seed:
        Seed of the hash functions (keeps runs deterministic).
    """

    num_sketches: int = 4
    sketch_bits: int = 32
    max_hops: int = 30
    tolerance: float = 0.001
    seed: int = 1234


class NeighborhoodEstimation(IterativeAlgorithm):
    """Per-vertex reachable-set size estimation via FM sketches."""

    name = "neighborhood-estimation"
    prefix = "NH"
    convergence_attribute = "tolerance"
    convergence_tuned_to_input_size = False
    requires_undirected = False

    def default_config(self) -> NeighborhoodConfig:
        return NeighborhoodConfig()

    def validate_config(self, config: NeighborhoodConfig) -> None:
        require_positive("num_sketches", config.num_sketches)
        require_positive("sketch_bits", config.sketch_bits)
        require_positive("max_hops", config.max_hops)
        require_in_unit_interval("tolerance", config.tolerance)

    # ------------------------------------------------------------ vertex API
    def initial_value(self, vertex, graph: DiGraph, config: NeighborhoodConfig) -> Tuple[int, ...]:
        return tuple(
            1 << self._fm_bit(vertex, sketch, config)
            for sketch in range(config.num_sketches)
        )

    def aggregators(self, config: NeighborhoodConfig) -> List[Aggregator]:
        return [sum_aggregator(UPDATES_AGGREGATOR)]

    def message_size(self, payload: Any) -> int:
        # One bitmap word per sketch.
        return 4 * len(payload)

    def compute(
        self, ctx: VertexContext, messages: List[Tuple[int, ...]], config: NeighborhoodConfig
    ) -> None:
        if ctx.superstep == 0:
            ctx.aggregate(UPDATES_AGGREGATOR, 1.0)
            ctx.send_message_to_all_neighbors(ctx.value)
            return
        if ctx.superstep >= config.max_hops:
            ctx.vote_to_halt()
            return
        current = ctx.value
        merged = list(current)
        for sketches in messages:
            for index, bitmap in enumerate(sketches):
                merged[index] |= bitmap
        merged_tuple = tuple(merged)
        if merged_tuple != current:
            ctx.value = merged_tuple
            ctx.aggregate(UPDATES_AGGREGATOR, 1.0)
            ctx.send_message_to_all_neighbors(merged_tuple)
        else:
            ctx.vote_to_halt()

    # ------------------------------------------------------- vectorized batch
    batch_payload = "rows"
    batch_row_reducer = "bitwise_or"

    def compute_batch(self, batch, config: NeighborhoodConfig) -> None:
        """Array-pass equivalent of :meth:`compute` (one call per worker).

        Sketches are fixed-width integer rows, so the ragged plane's
        ``"rows"`` kind applies: incoming sketches are OR-reduced per
        destination at send time, and merging is a single ``|`` over the
        active rows.  OR is exact and order-insensitive on integers, so
        values and counters are bit-identical to the per-vertex path.
        """
        indices = batch.indices
        width = batch.values.shape[1]
        if batch.superstep == 0:
            batch.aggregate(UPDATES_AGGREGATOR, np.ones(len(indices)))
            batch.send_rows_to_all_neighbors(
                indices,
                batch.values[indices],
                np.full(len(indices), 4 * width, dtype=np.int64),
            )
            return
        if batch.superstep >= config.max_hops:
            batch.vote_to_halt()
            return
        current = batch.values[indices]
        merged = current | batch.incoming[indices]
        changed = np.any(merged != current, axis=1)
        if changed.any():
            updated = indices[changed]
            batch.values[updated] = merged[changed]
            batch.aggregate(UPDATES_AGGREGATOR, np.ones(int(changed.sum())))
            batch.send_rows_to_all_neighbors(
                updated,
                merged[changed],
                np.full(len(updated), 4 * width, dtype=np.int64),
            )
        batch.vote_to_halt(~changed)

    # ------------------------------------------------------------ convergence
    def check_convergence(
        self,
        aggregates: Dict[str, float],
        superstep: int,
        graph_info: GraphInfo,
        config: NeighborhoodConfig,
    ) -> Tuple[bool, Optional[float]]:
        if superstep == 0:
            return False, None
        updated = aggregates.get(UPDATES_AGGREGATOR, 0.0)
        ratio = updated / graph_info.num_vertices
        return ratio < config.tolerance, ratio

    # -------------------------------------------------------------- internals
    @staticmethod
    def _fm_bit(vertex: Any, sketch: int, config: NeighborhoodConfig) -> int:
        """Position of the least-significant set bit for ``vertex`` in ``sketch``.

        The geometric distribution of FM sketch bit positions is obtained by
        counting trailing zeros of a deterministic hash of (vertex, sketch).
        """
        value = hash((vertex, sketch, config.seed)) & 0xFFFFFFFF
        if value == 0:
            return config.sketch_bits - 1
        position = 0
        while value & 1 == 0 and position < config.sketch_bits - 1:
            value >>= 1
            position += 1
        return position


def estimate_neighborhood_sizes(vertex_values: Dict, config: NeighborhoodConfig) -> Dict[Any, float]:
    """Convert final FM sketches into per-vertex reachable-set size estimates."""
    estimates: Dict[Any, float] = {}
    for vertex, sketches in vertex_values.items():
        positions = []
        for bitmap in sketches:
            position = 0
            while position < config.sketch_bits and (bitmap >> position) & 1:
                position += 1
            positions.append(position)
        mean_position = sum(positions) / len(positions)
        estimates[vertex] = (2.0**mean_position) / FM_PHI
    return estimates
