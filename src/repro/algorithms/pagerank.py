"""PageRank on the BSP engine.

PageRank is the paper's representative of algorithms with *constant*
per-iteration runtime: every vertex is active in every superstep and sends one
message per outgoing edge, so the key input features barely change across
iterations.

The implementation follows equation (1) of the paper:

``PR(p_i) = (1 - d) / N + d * sum_{p_j in M(p_i)} PR(p_j) / L(p_j)``

with the rank of every vertex initialised to ``1/N``.  Convergence uses the
paper's criterion: the *average delta change* of PageRank per vertex
(``1/N * sum_i |PR_i(it) - PR_i(it-1)|``) must fall below a user threshold
``tau``.  The evaluation sets ``tau = epsilon / N`` where ``epsilon`` is a
tolerance level (0.1, 0.01 or 0.001); since that threshold is tuned to the
dataset size, PREDIcT's default transform scales it by ``1/sampling_ratio``
for the sample run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.algorithms.base import IterativeAlgorithm, require_in_unit_interval, require_positive
from repro.bsp.aggregators import Aggregator, sum_aggregator
from repro.bsp.master import GraphInfo
from repro.bsp.messages import Combiner, SumCombiner
from repro.bsp.vertex import VertexContext
from repro.exceptions import ConfigurationError
from repro.graph.digraph import DiGraph

#: Aggregator collecting the total |delta PR| across vertices each superstep.
DELTA_AGGREGATOR = "pagerank.delta_sum"


@dataclass(frozen=True)
class PageRankConfig:
    """Configuration of a PageRank run.

    Attributes
    ----------
    damping:
        The damping factor ``d`` (0.85 in the paper and in the original
        PageRank formulation).
    tolerance:
        Convergence threshold ``tau`` on the average per-vertex delta change.
        The paper sets ``tau = epsilon / N`` for a tolerance level ``epsilon``.
    max_iterations:
        Safety budget on supersteps.
    """

    damping: float = 0.85
    tolerance: float = 1e-6
    max_iterations: int = 100

    @staticmethod
    def for_tolerance_level(epsilon: float, num_vertices: int,
                            damping: float = 0.85) -> "PageRankConfig":
        """Build the paper's configuration ``tau = epsilon / N``."""
        require_positive("epsilon", epsilon)
        require_positive("num_vertices", num_vertices)
        return PageRankConfig(damping=damping, tolerance=epsilon / num_vertices)


class PageRank(IterativeAlgorithm):
    """Vertex-centric PageRank with average-delta convergence."""

    name = "pagerank"
    prefix = "PR"
    convergence_attribute = "tolerance"
    convergence_tuned_to_input_size = True
    requires_undirected = False

    MESSAGE_SIZE_BYTES = 8

    def default_config(self) -> PageRankConfig:
        return PageRankConfig()

    def validate_config(self, config: PageRankConfig) -> None:
        require_in_unit_interval("damping", config.damping)
        require_positive("tolerance", config.tolerance)
        require_positive("max_iterations", config.max_iterations)

    # ------------------------------------------------------------ vertex API
    def initial_value(self, vertex, graph: DiGraph, config: PageRankConfig) -> float:
        return 1.0 / graph.num_vertices

    def aggregators(self, config: PageRankConfig) -> List[Aggregator]:
        return [sum_aggregator(DELTA_AGGREGATOR)]

    def combiner(self, config: PageRankConfig) -> Optional[Combiner]:
        return SumCombiner()

    def message_size(self, payload: Any) -> int:
        return self.MESSAGE_SIZE_BYTES

    def compute(self, ctx: VertexContext, messages: List[float], config: PageRankConfig) -> None:
        if ctx.superstep == 0:
            # First superstep: ranks are already initialised to 1/N; just
            # propagate the initial contribution along outgoing edges.
            rank = ctx.value
        else:
            incoming = sum(messages)
            new_rank = (1.0 - config.damping) / ctx.num_vertices + config.damping * incoming
            delta = abs(new_rank - ctx.value)
            ctx.aggregate(DELTA_AGGREGATOR, delta)
            ctx.value = new_rank
            rank = new_rank
        out_degree = ctx.out_degree()
        if out_degree > 0:
            contribution = rank / out_degree
            ctx.send_message_to_all_neighbors(contribution)

    # ------------------------------------------------------- vectorized batch
    batch_message_reducer = "sum"
    batch_message_size = MESSAGE_SIZE_BYTES

    def compute_batch(self, batch, config: PageRankConfig) -> None:
        """Array-pass equivalent of :meth:`compute` (one call per worker).

        Mirrors the scalar arithmetic operation-for-operation -- same
        expression structure, same float64 types -- so vertex values, deltas
        and the convergence metric are bit-identical to the per-vertex path.
        """
        indices = batch.indices
        if batch.superstep == 0:
            ranks = batch.values[indices]
        else:
            incoming = batch.incoming[indices]
            new_ranks = (1.0 - config.damping) / batch.num_vertices + config.damping * incoming
            batch.aggregate(DELTA_AGGREGATOR, np.abs(new_ranks - batch.values[indices]))
            batch.values[indices] = new_ranks
            ranks = new_ranks
        degrees = batch.out_degrees[indices]
        senders = degrees > 0
        contributions = np.divide(
            ranks, degrees, out=np.zeros_like(ranks), where=senders
        )
        batch.send_to_all_neighbors(contributions, senders)

    # ------------------------------------------------------------ convergence
    def check_convergence(
        self,
        aggregates: Dict[str, float],
        superstep: int,
        graph_info: GraphInfo,
        config: PageRankConfig,
    ) -> Tuple[bool, Optional[float]]:
        if superstep == 0:
            # No rank update happened yet; the delta aggregate is meaningless.
            return False, None
        average_delta = aggregates.get(DELTA_AGGREGATOR, 0.0) / graph_info.num_vertices
        return average_delta < config.tolerance, average_delta


def extract_ranks(vertex_values: Dict) -> Dict:
    """Return the PageRank output as a plain ``vertex -> rank`` dictionary.

    Provided for symmetry with the other algorithms' output helpers and used
    when piping PageRank output into top-k ranking.
    """
    if vertex_values is None:
        raise ConfigurationError(
            "run PageRank with collect_vertex_values=True to extract ranks"
        )
    return dict(vertex_values)
