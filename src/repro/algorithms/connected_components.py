"""Connected components by minimum-label propagation (HCC / hash-min).

Every vertex starts with its own id as label, propagates the smallest label it
has seen to its neighbours and votes to halt; a vertex is re-activated only
when it receives a smaller label.  The algorithm reaches a fixed point when no
labels change, i.e. when every vertex has the minimum id of its (weakly)
connected component.

This is the paper's example of *sparse computation*: "propagating the smallest
vertex identifier in a graph structure using only point to point messages
among neighboring elements" -- the number of active vertices and messages
drops sharply across iterations, which is why per-iteration worst-case bounds
are useless for such algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.algorithms.base import IterativeAlgorithm, require_positive
from repro.bsp.aggregators import Aggregator, sum_aggregator
from repro.bsp.master import GraphInfo
from repro.bsp.vertex import VertexContext
from repro.graph.digraph import DiGraph

#: Aggregator counting label updates per superstep (progress metric).
UPDATES_AGGREGATOR = "cc.updates"


@dataclass(frozen=True)
class ConnectedComponentsConfig:
    """Configuration of a connected-components run."""

    max_iterations: int = 200


class ConnectedComponents(IterativeAlgorithm):
    """Weakly connected components via min-id propagation."""

    name = "connected-components"
    prefix = "CC"
    convergence_attribute = None
    convergence_tuned_to_input_size = False
    requires_undirected = True

    MESSAGE_SIZE_BYTES = 8

    def default_config(self) -> ConnectedComponentsConfig:
        return ConnectedComponentsConfig()

    def validate_config(self, config: ConnectedComponentsConfig) -> None:
        require_positive("max_iterations", config.max_iterations)

    def initial_value(self, vertex, graph: DiGraph, config) -> Any:
        return vertex

    def aggregators(self, config) -> List[Aggregator]:
        return [sum_aggregator(UPDATES_AGGREGATOR)]

    def message_size(self, payload: Any) -> int:
        return self.MESSAGE_SIZE_BYTES

    def compute(self, ctx: VertexContext, messages: List[Any], config) -> None:
        if ctx.superstep == 0:
            ctx.aggregate(UPDATES_AGGREGATOR, 1.0)
            ctx.send_message_to_all_neighbors(ctx.value)
            ctx.vote_to_halt()
            return
        smallest = min(messages) if messages else ctx.value
        if smallest < ctx.value:
            ctx.value = smallest
            ctx.aggregate(UPDATES_AGGREGATOR, 1.0)
            ctx.send_message_to_all_neighbors(smallest)
        ctx.vote_to_halt()

    # ------------------------------------------------------- vectorized batch
    batch_message_reducer = "min"
    batch_message_size = MESSAGE_SIZE_BYTES

    def compute_batch(self, batch, config) -> None:
        """Array-pass equivalent of :meth:`compute` (one call per worker).

        Labels must vectorize (integer vertex ids); otherwise the engine
        falls back to the scalar path automatically.  Min-reduction is
        order-insensitive and exact on integers, so values and counters are
        identical to the per-vertex path.
        """
        indices = batch.indices
        if batch.superstep == 0:
            batch.aggregate(UPDATES_AGGREGATOR, np.ones(len(indices)))
            batch.send_to_all_neighbors(batch.values[indices])
            batch.vote_to_halt()
            return
        current = batch.values[indices]
        smallest = batch.incoming[indices]
        improved = (batch.message_counts[indices] > 0) & (smallest < current)
        if improved.any():
            new_labels = np.where(improved, smallest, current)
            batch.values[indices] = new_labels
            batch.aggregate(UPDATES_AGGREGATOR, np.ones(int(improved.sum())))
            batch.send_to_all_neighbors(new_labels, improved)
        batch.vote_to_halt()

    def check_convergence(
        self,
        aggregates: Dict[str, float],
        superstep: int,
        graph_info: GraphInfo,
        config,
    ) -> Tuple[bool, Optional[float]]:
        updates = aggregates.get(UPDATES_AGGREGATOR, 0.0)
        # Convergence is the fixed point: no updates -> all vertices halt and
        # the engine's native termination fires.  We still expose the update
        # count as the convergence metric.
        return False, updates


def extract_components(vertex_values: Dict) -> Dict[Any, List[Any]]:
    """Group vertices by their component label.

    Returns a map ``component_label -> list of member vertices``.
    """
    components: Dict[Any, List[Any]] = {}
    for vertex, label in vertex_values.items():
        components.setdefault(label, []).append(vertex)
    return components
