"""Base class for iterative vertex-centric algorithms.

An :class:`IterativeAlgorithm` bundles:

* the vertex ``compute`` function and initial vertex values (the Pregel
  program),
* the global aggregators it contributes to and the *global convergence
  condition* evaluated by the master from those aggregators,
* a message-size estimator used by the engine's byte counters, and
* metadata that PREDIcT's transform functions need: which configuration field
  holds the convergence threshold and whether that threshold is tuned to the
  size of the input dataset (PageRank's ``tau = epsilon / N`` is; ratio-based
  thresholds such as semi-clustering's update ratio are not).

Configurations are plain dataclasses; the transform function produces a new
configuration for the sample run without mutating the original.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple

from repro.bsp.aggregators import Aggregator
from repro.bsp.master import GraphInfo
from repro.bsp.messages import Combiner, default_message_size
from repro.bsp.vertex import VertexContext
from repro.exceptions import ConfigurationError
from repro.graph.digraph import DiGraph


class IterativeAlgorithm:
    """Interface every iterative algorithm implements."""

    #: Human-readable name, also used by the registry and the history store.
    name: str = "iterative-algorithm"

    #: Short prefix used in the paper's tables (PR, SC, CC, TOP-K, NH).
    prefix: str = "ALG"

    #: Name of the configuration field holding the convergence threshold, or
    #: None when the algorithm converges by fixed point only.
    convergence_attribute: Optional[str] = None

    #: True when the convergence threshold is tuned to the input size (an
    #: absolute aggregate, like PageRank's average delta); False when it is a
    #: ratio that transfers unchanged to a proportionally smaller sample.
    convergence_tuned_to_input_size: bool = False

    #: True when the algorithm operates on an undirected graph (the engine
    #: symmetrises the input by adding reverse edges, as Giraph users do).
    requires_undirected: bool = False

    # ---------------------------------------------------------------- config
    def default_config(self):
        """Return the default configuration dataclass instance."""
        raise NotImplementedError

    def validate_config(self, config) -> None:
        """Raise :class:`ConfigurationError` when ``config`` is invalid."""

    def config_dict(self, config) -> Dict[str, Any]:
        """Return the configuration as a plain dict (for result records)."""
        if dataclasses.is_dataclass(config):
            return {
                f.name: getattr(config, f.name)
                for f in dataclasses.fields(config)
                if not f.name.startswith("_") and _is_scalar(getattr(config, f.name))
            }
        return {}

    # ----------------------------------------------------------------- graph
    def prepare_graph(self, graph: DiGraph, config) -> DiGraph:
        """Return the graph the algorithm actually runs on.

        The default adds reverse edges when the algorithm requires an
        undirected graph, mirroring the paper's preprocessing.
        """
        if self.requires_undirected:
            return graph.as_undirected()
        return graph

    # ------------------------------------------------------------ vertex API
    def initial_value(self, vertex, graph: DiGraph, config) -> Any:
        """Initial value of ``vertex``."""
        raise NotImplementedError

    def compute(self, ctx: VertexContext, messages: List[Any], config) -> None:
        """The per-vertex compute function executed every superstep."""
        raise NotImplementedError

    # ----------------------------------------------------- vectorized batches
    #: Optional vectorized superstep implementation.  When an algorithm
    #: defines ``compute_batch(batch, config)`` and the run's graph is a
    #: frozen :class:`repro.graph.csr.CSRGraph`, the engine processes all
    #: active vertices of a worker in one array pass instead of one
    #: ``compute`` call per vertex.  The context handed in depends on
    #: ``batch_payload``: :class:`repro.bsp.engine.BatchContext` for
    #: ``"scalar"`` payloads, and the ragged-plane contexts of
    #: :mod:`repro.bsp.ragged` for the variable-size kinds.  The batch path
    #: must be observationally identical to ``compute`` -- same values, same
    #: counters, same aggregates -- which the differential-testing harness
    #: enforces.  ``None`` means scalar only.
    compute_batch = None

    #: Payload representation of the batch path:
    #:
    #: * ``"scalar"`` -- fixed-size numeric messages reduced with
    #:   ``batch_message_reducer`` (PageRank, connected components);
    #: * ``"rows"`` -- fixed-width numeric rows reduced element-wise with
    #:   ``batch_row_reducer`` (neighborhood estimation's FM sketches);
    #: * ``"ragged"`` -- variable-length numeric rows delivered per vertex in
    #:   scalar send order (top-k rank lists);
    #: * ``"object"`` -- arbitrary Python payloads, batch-routed but folded
    #:   per vertex (semi-cluster lists).
    batch_payload: str = "scalar"

    #: How the engine reduces messages addressed to the same vertex for the
    #: ``"scalar"`` batch payload kind: ``"sum"`` (numeric accumulation,
    #: e.g. PageRank) or ``"min"`` (label propagation, e.g. connected
    #: components).  Must agree with how ``compute`` folds its ``messages``
    #: list.
    batch_message_reducer: str = "sum"

    #: Element-wise reducer of the ``"rows"`` payload kind (a key of
    #: :data:`repro.bsp.ragged.ROW_REDUCERS`, e.g. ``"bitwise_or"``).
    batch_row_reducer: str = "bitwise_or"

    #: Constant per-message payload size in bytes for the ``"scalar"`` batch
    #: payload kind (``message_size`` must return this value for every
    #: payload); ``None`` disables the scalar-payload batch path.  The ragged
    #: payload kinds report per-message sizes at send time instead.
    batch_message_size: Optional[int] = None

    @classmethod
    def supports_batch(cls) -> bool:
        """True when the algorithm implements the vectorized batch protocol."""
        return callable(cls.compute_batch)

    def aggregators(self, config) -> List[Aggregator]:
        """Global aggregators used by the algorithm (may be empty)."""
        return []

    def combiner(self, config) -> Optional[Combiner]:
        """Optional message combiner."""
        return None

    def message_size(self, payload: Any) -> int:
        """Size in bytes of one message payload (used by the byte counters)."""
        return default_message_size(payload)

    # ------------------------------------------------------------ convergence
    def check_convergence(
        self,
        aggregates: Dict[str, float],
        superstep: int,
        graph_info: GraphInfo,
        config,
    ) -> Tuple[bool, Optional[float]]:
        """Return ``(converged, convergence_metric)`` after a superstep.

        The metric is recorded in the run result's convergence history; None
        means the algorithm has no scalar convergence metric.
        """
        return False, None

    # ------------------------------------------------------------ conveniences
    def convergence_threshold(self, config) -> Optional[float]:
        """Return the convergence threshold from ``config`` (None if absent)."""
        if self.convergence_attribute is None:
            return None
        return getattr(config, self.convergence_attribute)

    def with_convergence_threshold(self, config, threshold: float):
        """Return a copy of ``config`` with the convergence threshold replaced."""
        if self.convergence_attribute is None:
            raise ConfigurationError(
                f"{self.name} has no convergence threshold to adjust"
            )
        return dataclasses.replace(config, **{self.convergence_attribute: threshold})


def _is_scalar(value: Any) -> bool:
    return isinstance(value, (int, float, str, bool, type(None)))


def require_positive(name: str, value: float) -> None:
    """Validation helper: raise unless ``value`` is strictly positive."""
    if value is None or value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")


def require_in_unit_interval(name: str, value: float, inclusive: bool = False) -> None:
    """Validation helper: raise unless ``value`` is in (0, 1) (or [0, 1])."""
    if value is None:
        raise ConfigurationError(f"{name} must be set")
    if inclusive:
        ok = 0.0 <= value <= 1.0
    else:
        ok = 0.0 < value < 1.0
    if not ok:
        raise ConfigurationError(f"{name} must be in the unit interval, got {value!r}")
