"""Name-based registry of the available iterative algorithms.

The experiment harness, the history store and the command-line examples refer
to algorithms by name (``"pagerank"``, ``"semi-clustering"``, ...); this
module centralises the mapping.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.algorithms.base import IterativeAlgorithm
from repro.algorithms.connected_components import ConnectedComponents
from repro.algorithms.neighborhood import NeighborhoodEstimation
from repro.algorithms.pagerank import PageRank
from repro.algorithms.semi_clustering import SemiClustering
from repro.algorithms.topk_ranking import TopKRanking
from repro.exceptions import ConfigurationError

_REGISTRY: Dict[str, Type[IterativeAlgorithm]] = {
    PageRank.name: PageRank,
    SemiClustering.name: SemiClustering,
    TopKRanking.name: TopKRanking,
    ConnectedComponents.name: ConnectedComponents,
    NeighborhoodEstimation.name: NeighborhoodEstimation,
}

_ALIASES: Dict[str, str] = {
    "pr": PageRank.name,
    "sc": SemiClustering.name,
    "top-k": TopKRanking.name,
    "topk": TopKRanking.name,
    "cc": ConnectedComponents.name,
    "nh": NeighborhoodEstimation.name,
}


def available_algorithms() -> List[str]:
    """Return the canonical names of all registered algorithms."""
    return list(_REGISTRY)


def _resolve(name: str) -> Type[IterativeAlgorithm]:
    key = name.lower()
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; available: {', '.join(_REGISTRY)}"
        )
    return _REGISTRY[key]


def algorithm_by_name(name: str) -> IterativeAlgorithm:
    """Instantiate the algorithm registered under ``name`` (or an alias)."""
    return _resolve(name)()


def supports_batch(name: str) -> bool:
    """True when the named algorithm implements ``compute_batch``.

    Algorithms that support batching ride the engine's array fast path
    (scalar plane or ragged message plane, per their ``batch_payload``)
    whenever the run graph is frozen; the rest fall back to per-vertex
    ``compute``.
    """
    return _resolve(name).supports_batch()


def batch_support() -> Dict[str, bool]:
    """Map every registered algorithm name to its batch-path support."""
    return {name: cls.supports_batch() for name, cls in _REGISTRY.items()}


def register_algorithm(algorithm_cls: Type[IterativeAlgorithm]) -> None:
    """Register a user-defined algorithm class under its ``name`` attribute."""
    if not issubclass(algorithm_cls, IterativeAlgorithm):
        raise ConfigurationError("algorithm must subclass IterativeAlgorithm")
    _REGISTRY[algorithm_cls.name] = algorithm_cls
