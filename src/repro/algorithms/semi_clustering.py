"""Parallel semi-clustering (Malewicz et al., Pregel, SIGMOD 2010).

Semi-clustering groups vertices that interact frequently with each other; a
vertex may belong to several semi-clusters.  Each semi-cluster ``c`` carries a
score

``S_c = (I_c - f_B * B_c) / (V_c * (V_c - 1) / 2)``

where ``I_c`` is the total weight of internal edges, ``B_c`` the total weight
of boundary edges, ``f_B`` the boundary-edge penalty factor and ``V_c`` the
number of member vertices (the normalisation prevents large clusters from
dominating).

Execution (per the paper's §4.2):

* iteration 0: every vertex creates the singleton semi-cluster ``{v}`` and
  sends it to all neighbours;
* iteration ``i``: every vertex iterates over the semi-clusters received; any
  cluster that does not contain the vertex and has fewer than ``Vmax`` members
  is extended with it; received plus newly-formed clusters are sorted by score
  and the best ``Smax`` are forwarded to the neighbours; the vertex keeps the
  best ``Cmax`` clusters that contain it.

Messages are *lists of semi-clusters*, each of which grows over iterations --
this is the paper's category ii.a (variable per-iteration runtime caused by
growing message sizes).

Convergence: the practical stopping condition from the paper,
``updatedClusters / totalClusters < tau``, where ``updatedClusters`` counts
vertices whose best-cluster list changed during the iteration.  The ratio is
not tuned to the dataset size, so the PREDIcT default transform keeps ``tau``
unchanged on the sample run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.algorithms.base import (
    IterativeAlgorithm,
    require_in_unit_interval,
    require_positive,
)
from repro.bsp.aggregators import Aggregator, sum_aggregator
from repro.bsp.master import GraphInfo
from repro.bsp.vertex import VertexContext
from repro.graph.digraph import DiGraph

#: Aggregator counting vertices whose semi-cluster list changed.
UPDATES_AGGREGATOR = "semiclustering.updated"
#: Aggregator counting the total number of semi-clusters maintained.
TOTAL_AGGREGATOR = "semiclustering.total"


@dataclass(frozen=True)
class SemiCluster:
    """An immutable semi-cluster: members plus incremental score terms."""

    members: FrozenSet[Any]
    internal_weight: float
    boundary_weight: float

    def score(self, boundary_factor: float) -> float:
        """The paper's normalised score ``S_c``."""
        size = len(self.members)
        if size <= 1:
            # A singleton has no internal edges; define its score as 0 so it
            # never beats a real cluster (this matches the Pregel paper).
            return 0.0
        normaliser = size * (size - 1) / 2.0
        return (self.internal_weight - boundary_factor * self.boundary_weight) / normaliser

    def contains(self, vertex: Any) -> bool:
        """True when ``vertex`` is already a member."""
        return vertex in self.members

    def extended_with(self, vertex: Any, out_edges: List[Tuple[Any, float]]) -> "SemiCluster":
        """Return a new cluster with ``vertex`` added.

        The score terms are updated incrementally from the vertex's own edge
        list: edges from the vertex to existing members become internal (and
        stop being boundary edges), all other edges of the vertex become
        boundary edges.
        """
        weight_to_members = 0.0
        weight_to_outside = 0.0
        for target, weight in out_edges:
            if target in self.members:
                weight_to_members += weight
            elif target != vertex:
                weight_to_outside += weight
        internal = self.internal_weight + weight_to_members
        boundary = max(0.0, self.boundary_weight - weight_to_members) + weight_to_outside
        return SemiCluster(
            members=self.members | {vertex},
            internal_weight=internal,
            boundary_weight=boundary,
        )

    @staticmethod
    def singleton(vertex: Any, out_edges: List[Tuple[Any, float]]) -> "SemiCluster":
        """The initial single-member cluster of ``vertex``."""
        boundary = sum(weight for target, weight in out_edges if target != vertex)
        return SemiCluster(members=frozenset([vertex]), internal_weight=0.0, boundary_weight=boundary)


@dataclass(frozen=True)
class SemiClusteringConfig:
    """Configuration of a semi-clustering run (paper base settings).

    Attributes
    ----------
    c_max:
        Maximum number of semi-clusters a vertex keeps (``Cmax``).
    s_max:
        Maximum number of semi-clusters a vertex forwards (``Smax``).
    v_max:
        Maximum number of vertices in a semi-cluster (``Vmax``).
    boundary_factor:
        The boundary edge penalty ``f_B`` (0 < f_B < 1).
    tolerance:
        Convergence threshold on ``updatedClusters / totalClusters``.
    max_iterations:
        Safety budget on supersteps.
    """

    c_max: int = 1
    s_max: int = 1
    v_max: int = 10
    boundary_factor: float = 0.1
    tolerance: float = 0.001
    max_iterations: int = 60


class SemiClustering(IterativeAlgorithm):
    """The Pregel parallel semi-clustering algorithm."""

    name = "semi-clustering"
    prefix = "SC"
    convergence_attribute = "tolerance"
    convergence_tuned_to_input_size = False
    requires_undirected = True

    def default_config(self) -> SemiClusteringConfig:
        return SemiClusteringConfig()

    def validate_config(self, config: SemiClusteringConfig) -> None:
        require_positive("c_max", config.c_max)
        require_positive("s_max", config.s_max)
        require_positive("v_max", config.v_max)
        require_in_unit_interval("boundary_factor", config.boundary_factor)
        require_in_unit_interval("tolerance", config.tolerance)
        require_positive("max_iterations", config.max_iterations)

    # ------------------------------------------------------------ vertex API
    def initial_value(self, vertex, graph: DiGraph, config) -> Tuple[SemiCluster, ...]:
        return ()

    def aggregators(self, config) -> List[Aggregator]:
        return [sum_aggregator(UPDATES_AGGREGATOR), sum_aggregator(TOTAL_AGGREGATOR)]

    def message_size(self, payload: Any) -> int:
        # payload is a tuple of SemiCluster objects: 8 bytes per member id
        # plus two doubles of score terms and small framing per cluster.
        size = 4
        for cluster in payload:
            size += 20 + 8 * len(cluster.members)
        return size

    def _fold_vertex(
        self,
        vertex,
        received: List[SemiCluster],
        out_edges: List[Tuple[Any, float]],
        value: Tuple[SemiCluster, ...],
        config: SemiClusteringConfig,
    ) -> Tuple[Optional[Tuple[SemiCluster, ...]], Tuple[SemiCluster, ...], bool]:
        """One vertex's candidate fold, shared by the scalar and batch paths.

        Returns ``(to_send, new_value, updated)``; ``to_send`` is None when
        there were no candidates at all (the vertex goes to sleep).
        """
        # Extend received clusters with this vertex where allowed.
        candidates: List[SemiCluster] = list(received)
        for cluster in received:
            if not cluster.contains(vertex) and len(cluster.members) < config.v_max:
                candidates.append(cluster.extended_with(vertex, out_edges))

        if not candidates:
            return None, value, False

        def sort_key(cluster: SemiCluster):
            # Deterministic ordering: score first, then members for ties.
            return (-cluster.score(config.boundary_factor), tuple(sorted(map(str, cluster.members))))

        candidates.sort(key=sort_key)

        # Forward the best Smax candidates; keep the best Cmax that contain
        # this vertex.
        to_send = tuple(candidates[: config.s_max])
        containing = [cluster for cluster in candidates if cluster.contains(vertex)]
        new_value = tuple(containing[: config.c_max])
        if new_value and set(new_value) != set(value):
            return to_send, new_value, True
        return to_send, value, False

    def compute(
        self,
        ctx: VertexContext,
        messages: List[Tuple[SemiCluster, ...]],
        config: SemiClusteringConfig,
    ) -> None:
        vertex = ctx.vertex_id
        out_edges = ctx.out_edges()

        if ctx.superstep == 0:
            singleton = SemiCluster.singleton(vertex, out_edges)
            ctx.value = (singleton,)
            ctx.aggregate(UPDATES_AGGREGATOR, 1.0)
            ctx.aggregate(TOTAL_AGGREGATOR, 1.0)
            ctx.send_message_to_all_neighbors((singleton,))
            return

        received: List[SemiCluster] = []
        for payload in messages:
            received.extend(payload)

        to_send, new_value, updated = self._fold_vertex(
            vertex, received, out_edges, ctx.value, config
        )
        if to_send is None:
            ctx.aggregate(TOTAL_AGGREGATOR, float(len(ctx.value)))
            ctx.vote_to_halt()
            return
        if to_send:
            ctx.send_message_to_all_neighbors(to_send)
        if updated:
            ctx.value = new_value
            ctx.aggregate(UPDATES_AGGREGATOR, 1.0)
        ctx.aggregate(TOTAL_AGGREGATOR, float(max(len(ctx.value), 1)))

    # ------------------------------------------------------- vectorized batch
    batch_payload = "object"

    def compute_batch(self, batch, config: SemiClusteringConfig) -> None:
        """Hybrid batch superstep: ragged routing, per-vertex cluster fold.

        Semi-cluster lists are Python objects, so the fold mirrors
        :meth:`compute` line for line per vertex; the win is the plane's
        array-side message routing and counter accounting.  Vertices are
        processed in partition order and sends are emitted in that order, so
        delivery lists and every counter match the scalar path exactly.
        """
        indices = batch.indices
        if batch.superstep == 0:
            payloads = []
            for i in indices.tolist():
                singleton = SemiCluster.singleton(batch.vertex_id(i), batch.out_edges(i))
                batch.set_value(i, (singleton,))
                payloads.append((singleton,))
            batch.aggregate(UPDATES_AGGREGATOR, np.ones(len(payloads)))
            batch.aggregate(TOTAL_AGGREGATOR, np.ones(len(payloads)))
            batch.send_objects_to_all_neighbors(indices, payloads)
            return

        senders: List[int] = []
        payloads = []
        halters: List[int] = []
        totals: List[float] = []
        updates = 0
        for position, i in enumerate(indices.tolist()):
            vertex = batch.vertex_id(i)
            received: List[SemiCluster] = []
            for payload in batch.messages_of(i):
                received.extend(payload)

            value = batch.value_of(i)
            to_send, new_value, updated = self._fold_vertex(
                vertex, received, batch.out_edges(i), value, config
            )
            if to_send is None:
                totals.append(float(len(value)))
                halters.append(position)
                continue
            if to_send:
                senders.append(i)
                payloads.append(to_send)
            if updated:
                batch.set_value(i, new_value)
                updates += 1
                value = new_value
            totals.append(float(max(len(value), 1)))

        if updates:
            batch.aggregate(UPDATES_AGGREGATOR, np.ones(updates))
        batch.aggregate(TOTAL_AGGREGATOR, totals)
        if senders:
            batch.send_objects_to_all_neighbors(
                np.asarray(senders, dtype=np.int64), payloads
            )
        if halters:
            batch.vote_to_halt(np.asarray(halters, dtype=np.int64))

    # ------------------------------------------------------------ convergence
    def check_convergence(
        self,
        aggregates: Dict[str, float],
        superstep: int,
        graph_info: GraphInfo,
        config: SemiClusteringConfig,
    ) -> Tuple[bool, Optional[float]]:
        if superstep == 0:
            return False, None
        updated = aggregates.get(UPDATES_AGGREGATOR, 0.0)
        total = max(aggregates.get(TOTAL_AGGREGATOR, 0.0), 1.0)
        ratio = updated / total
        return ratio < config.tolerance, ratio


def best_clusters(vertex_values: Dict, boundary_factor: float = 0.1, top: int = 10) -> List[SemiCluster]:
    """Aggregate the per-vertex cluster lists into a global best-cluster list.

    Mirrors the paper's final step: "the set of best semi-clusters of each
    vertex ... are aggregated into a global list of best semi-clusters".
    """
    seen: Dict[FrozenSet[Any], SemiCluster] = {}
    for clusters in vertex_values.values():
        for cluster in clusters:
            seen.setdefault(cluster.members, cluster)
    ranked = sorted(seen.values(), key=lambda c: -c.score(boundary_factor))
    return ranked[:top]
