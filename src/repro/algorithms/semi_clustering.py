"""Parallel semi-clustering (Malewicz et al., Pregel, SIGMOD 2010).

Semi-clustering groups vertices that interact frequently with each other; a
vertex may belong to several semi-clusters.  Each semi-cluster ``c`` carries a
score

``S_c = (I_c - f_B * B_c) / (V_c * (V_c - 1) / 2)``

where ``I_c`` is the total weight of internal edges, ``B_c`` the total weight
of boundary edges, ``f_B`` the boundary-edge penalty factor and ``V_c`` the
number of member vertices (the normalisation prevents large clusters from
dominating).

Execution (per the paper's §4.2):

* iteration 0: every vertex creates the singleton semi-cluster ``{v}`` and
  sends it to all neighbours;
* iteration ``i``: every vertex iterates over the semi-clusters received; any
  cluster that does not contain the vertex and has fewer than ``Vmax`` members
  is extended with it; received plus newly-formed clusters are sorted by score
  and the best ``Smax`` are forwarded to the neighbours; the vertex keeps the
  best ``Cmax`` clusters that contain it.

Messages are *lists of semi-clusters*, each of which grows over iterations --
this is the paper's category ii.a (variable per-iteration runtime caused by
growing message sizes).

Convergence: the practical stopping condition from the paper,
``updatedClusters / totalClusters < tau``, where ``updatedClusters`` counts
vertices whose best-cluster list changed during the iteration.  The ratio is
not tuned to the dataset size, so the PREDIcT default transform keeps ``tau``
unchanged on the sample run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.algorithms.base import (
    IterativeAlgorithm,
    require_in_unit_interval,
    require_positive,
)
from repro.bsp.aggregators import Aggregator, sum_aggregator
from repro.bsp.master import GraphInfo
from repro.bsp.ragged import ClusterRowsContext, Ragged
from repro.bsp.vertex import VertexContext
from repro.graph.csr import concat_ranges
from repro.graph.digraph import DiGraph

#: Aggregator counting vertices whose semi-cluster list changed.
UPDATES_AGGREGATOR = "semiclustering.updated"
#: Aggregator counting the total number of semi-clusters maintained.
TOTAL_AGGREGATOR = "semiclustering.total"

#: Ceiling on ``v_max`` for the numeric batch plane: records are padded to
#: ``v_max`` member slots, so pathological configs fall back to the object
#: fold instead of allocating huge mostly-empty rows.
NUMERIC_VMAX_LIMIT = 64


def _positions_within(counts: np.ndarray) -> np.ndarray:
    """0-based position of each element within its (concatenated) segment."""
    total = int(counts.sum())
    prefix = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(prefix, counts)


@dataclass(frozen=True)
class SemiCluster:
    """An immutable semi-cluster: members plus incremental score terms."""

    members: FrozenSet[Any]
    internal_weight: float
    boundary_weight: float

    def score(self, boundary_factor: float) -> float:
        """The paper's normalised score ``S_c``."""
        size = len(self.members)
        if size <= 1:
            # A singleton has no internal edges; define its score as 0 so it
            # never beats a real cluster (this matches the Pregel paper).
            return 0.0
        normaliser = size * (size - 1) / 2.0
        return (self.internal_weight - boundary_factor * self.boundary_weight) / normaliser

    def contains(self, vertex: Any) -> bool:
        """True when ``vertex`` is already a member."""
        return vertex in self.members

    def extended_with(self, vertex: Any, out_edges: List[Tuple[Any, float]]) -> "SemiCluster":
        """Return a new cluster with ``vertex`` added.

        The score terms are updated incrementally from the vertex's own edge
        list: edges from the vertex to existing members become internal (and
        stop being boundary edges), all other edges of the vertex become
        boundary edges.
        """
        weight_to_members = 0.0
        weight_to_outside = 0.0
        for target, weight in out_edges:
            if target in self.members:
                weight_to_members += weight
            elif target != vertex:
                weight_to_outside += weight
        internal = self.internal_weight + weight_to_members
        boundary = max(0.0, self.boundary_weight - weight_to_members) + weight_to_outside
        return SemiCluster(
            members=self.members | {vertex},
            internal_weight=internal,
            boundary_weight=boundary,
        )

    @staticmethod
    def singleton(vertex: Any, out_edges: List[Tuple[Any, float]]) -> "SemiCluster":
        """The initial single-member cluster of ``vertex``."""
        boundary = sum(weight for target, weight in out_edges if target != vertex)
        return SemiCluster(members=frozenset([vertex]), internal_weight=0.0, boundary_weight=boundary)


@dataclass(frozen=True)
class SemiClusteringConfig:
    """Configuration of a semi-clustering run (paper base settings).

    Attributes
    ----------
    c_max:
        Maximum number of semi-clusters a vertex keeps (``Cmax``).
    s_max:
        Maximum number of semi-clusters a vertex forwards (``Smax``).
    v_max:
        Maximum number of vertices in a semi-cluster (``Vmax``).
    boundary_factor:
        The boundary edge penalty ``f_B`` (0 < f_B < 1).
    tolerance:
        Convergence threshold on ``updatedClusters / totalClusters``.
    max_iterations:
        Safety budget on supersteps.
    """

    c_max: int = 1
    s_max: int = 1
    v_max: int = 10
    boundary_factor: float = 0.1
    tolerance: float = 0.001
    max_iterations: int = 60


class SemiClustering(IterativeAlgorithm):
    """The Pregel parallel semi-clustering algorithm."""

    name = "semi-clustering"
    prefix = "SC"
    convergence_attribute = "tolerance"
    convergence_tuned_to_input_size = False
    requires_undirected = True

    def default_config(self) -> SemiClusteringConfig:
        return SemiClusteringConfig()

    def validate_config(self, config: SemiClusteringConfig) -> None:
        require_positive("c_max", config.c_max)
        require_positive("s_max", config.s_max)
        require_positive("v_max", config.v_max)
        require_in_unit_interval("boundary_factor", config.boundary_factor)
        require_in_unit_interval("tolerance", config.tolerance)
        require_positive("max_iterations", config.max_iterations)

    # ------------------------------------------------------------ vertex API
    def initial_value(self, vertex, graph: DiGraph, config) -> Tuple[SemiCluster, ...]:
        return ()

    def aggregators(self, config) -> List[Aggregator]:
        return [sum_aggregator(UPDATES_AGGREGATOR), sum_aggregator(TOTAL_AGGREGATOR)]

    def message_size(self, payload: Any) -> int:
        # payload is a tuple of SemiCluster objects: 8 bytes per member id
        # plus two doubles of score terms and small framing per cluster.
        size = 4
        for cluster in payload:
            size += 20 + 8 * len(cluster.members)
        return size

    def _fold_vertex(
        self,
        vertex,
        received: List[SemiCluster],
        out_edges: List[Tuple[Any, float]],
        value: Tuple[SemiCluster, ...],
        config: SemiClusteringConfig,
    ) -> Tuple[Optional[Tuple[SemiCluster, ...]], Tuple[SemiCluster, ...], bool]:
        """One vertex's candidate fold, shared by the scalar and batch paths.

        Returns ``(to_send, new_value, updated)``; ``to_send`` is None when
        there were no candidates at all (the vertex goes to sleep).
        """
        # Extend received clusters with this vertex where allowed.
        candidates: List[SemiCluster] = list(received)
        for cluster in received:
            if not cluster.contains(vertex) and len(cluster.members) < config.v_max:
                candidates.append(cluster.extended_with(vertex, out_edges))

        if not candidates:
            return None, value, False

        def sort_key(cluster: SemiCluster):
            # Deterministic ordering: score first, then members for ties.
            return (-cluster.score(config.boundary_factor), tuple(sorted(map(str, cluster.members))))

        candidates.sort(key=sort_key)

        # Forward the best Smax candidates; keep the best Cmax that contain
        # this vertex.
        to_send = tuple(candidates[: config.s_max])
        containing = [cluster for cluster in candidates if cluster.contains(vertex)]
        new_value = tuple(containing[: config.c_max])
        if new_value and set(new_value) != set(value):
            return to_send, new_value, True
        return to_send, value, False

    def compute(
        self,
        ctx: VertexContext,
        messages: List[Tuple[SemiCluster, ...]],
        config: SemiClusteringConfig,
    ) -> None:
        vertex = ctx.vertex_id
        out_edges = ctx.out_edges()

        if ctx.superstep == 0:
            singleton = SemiCluster.singleton(vertex, out_edges)
            ctx.value = (singleton,)
            ctx.aggregate(UPDATES_AGGREGATOR, 1.0)
            ctx.aggregate(TOTAL_AGGREGATOR, 1.0)
            ctx.send_message_to_all_neighbors((singleton,))
            return

        received: List[SemiCluster] = []
        for payload in messages:
            received.extend(payload)

        to_send, new_value, updated = self._fold_vertex(
            vertex, received, out_edges, ctx.value, config
        )
        if to_send is None:
            ctx.aggregate(TOTAL_AGGREGATOR, float(len(ctx.value)))
            ctx.vote_to_halt()
            return
        if to_send:
            ctx.send_message_to_all_neighbors(to_send)
        if updated:
            ctx.value = new_value
            ctx.aggregate(UPDATES_AGGREGATOR, 1.0)
        ctx.aggregate(TOTAL_AGGREGATOR, float(max(len(ctx.value), 1)))

    # ------------------------------------------------------- vectorized batch
    batch_payload = "object"

    def compute_batch(self, batch, config: SemiClusteringConfig) -> None:
        """Batch superstep on either ``"object"`` plane.

        The engine hands this method one of two context types, decided once
        per run in ``repro.bsp.ragged.build_ragged_state``:

        * :class:`~repro.bsp.ragged.ClusterRowsContext` -- the **numeric
          fast path** (default): semi-clusters are fixed-width float64
          records and the whole fold (extension, scoring, the sorted
          top-``Smax``/``Cmax`` merge, the update test) runs as array
          kernels in :meth:`_compute_batch_numeric`.
        * :class:`~repro.bsp.ragged.ObjectBatchContext` -- the hybrid
          fallback (``EngineConfig(semicluster_numeric=False)``, or an
          input the encoder declines): array-side routing and counters, but
          the per-vertex fold mirrors :meth:`compute` on Python objects.

        Both process vertices in partition order and emit sends in that
        order, so delivery lists and every counter match the scalar path
        exactly.
        """
        if isinstance(batch, ClusterRowsContext):
            self._compute_batch_numeric(batch, config)
            return
        indices = batch.indices
        if batch.superstep == 0:
            payloads = []
            for i in indices.tolist():
                singleton = SemiCluster.singleton(batch.vertex_id(i), batch.out_edges(i))
                batch.set_value(i, (singleton,))
                payloads.append((singleton,))
            batch.aggregate(UPDATES_AGGREGATOR, np.ones(len(payloads)))
            batch.aggregate(TOTAL_AGGREGATOR, np.ones(len(payloads)))
            batch.send_objects_to_all_neighbors(indices, payloads)
            return

        senders: List[int] = []
        payloads = []
        halters: List[int] = []
        totals: List[float] = []
        updates = 0
        for position, i in enumerate(indices.tolist()):
            vertex = batch.vertex_id(i)
            received: List[SemiCluster] = []
            for payload in batch.messages_of(i):
                received.extend(payload)

            value = batch.value_of(i)
            to_send, new_value, updated = self._fold_vertex(
                vertex, received, batch.out_edges(i), value, config
            )
            if to_send is None:
                totals.append(float(len(value)))
                halters.append(position)
                continue
            if to_send:
                senders.append(i)
                payloads.append(to_send)
            if updated:
                batch.set_value(i, new_value)
                updates += 1
                value = new_value
            totals.append(float(max(len(value), 1)))

        if updates:
            batch.aggregate(UPDATES_AGGREGATOR, np.ones(updates))
        batch.aggregate(TOTAL_AGGREGATOR, totals)
        if senders:
            batch.send_objects_to_all_neighbors(
                np.asarray(senders, dtype=np.int64), payloads
            )
        if halters:
            batch.vote_to_halt(np.asarray(halters, dtype=np.int64))

    # ----------------------------------------------- numeric record plane
    # Record layout (width = v_max + 3, all float64):
    #   [0] internal_weight   [1] boundary_weight   [2] member count
    #   [3 : 3 + v_max] member vertex indices, sorted by string rank,
    #                   padded with -1.
    # Member ids as indices stay exact in float64 (< 2**53), and storing
    # them in string-rank order makes the scalar sort tie-break
    # (tuple(sorted(map(str, members)))) a plain lexicographic comparison
    # of the rank columns.

    def encode_numeric_object_plane(self, graph, values, config):
        """Encode initial values for the numeric plane, or None to decline.

        Declines (falling back to the Python-object fold) when the numeric
        representation cannot reproduce the scalar semantics: distinct
        vertex ids whose ``str()`` forms collide (the rank order would no
        longer equal the scalar string tie-break), clusters over ``v_max``
        members, members missing from the graph, or an oversized ``v_max``.
        Returns ``(Ragged values, cache)`` with the per-run constants the
        fold needs: the record ``width`` and the ``str_rank`` permutation.
        """
        v_max = int(config.v_max)
        if v_max > NUMERIC_VMAX_LIMIT:
            return None
        n = graph.num_vertices
        ids = graph.ids
        strings = [str(vertex) for vertex in ids]
        order = sorted(range(n), key=strings.__getitem__)
        if any(strings[a] == strings[b] for a, b in zip(order, order[1:])):
            return None
        str_rank = np.empty(n, dtype=np.int64)
        str_rank[np.asarray(order, dtype=np.int64)] = np.arange(n, dtype=np.int64)
        width = v_max + 3
        if any(len(value) for value in values):
            index = graph.index
            rank_of = str_rank.tolist()
            rows: List[List[float]] = []
            for value in values:
                row: List[float] = []
                for cluster in value:
                    if len(cluster.members) > v_max:
                        return None
                    try:
                        members = sorted(
                            (index[m] for m in cluster.members),
                            key=rank_of.__getitem__,
                        )
                    except KeyError:
                        return None
                    row.append(float(cluster.internal_weight))
                    row.append(float(cluster.boundary_weight))
                    row.append(float(len(members)))
                    row.extend(float(m) for m in members)
                    row.extend([-1.0] * (v_max - len(members)))
                rows.append(row)
            encoded = Ragged.from_rows(rows, dtype=np.float64)
        else:
            encoded = Ragged(
                np.empty(0, dtype=np.float64), np.zeros(n + 1, dtype=np.int64)
            )
        cache = {"width": width, "str_rank": str_rank}
        return encoded, cache

    def decode_numeric_object_values(self, state) -> Dict[Any, Tuple[SemiCluster, ...]]:
        """Decode the plane's record store back into per-vertex cluster tuples."""
        width = state.cache["width"]
        ids = state.ids
        data = state.values.data.tolist()
        bounds = state.values.offsets.tolist()
        out: Dict[Any, Tuple[SemiCluster, ...]] = {}
        for i, vertex in enumerate(ids):
            lo, hi = bounds[i], bounds[i + 1]
            clusters = []
            while lo < hi:
                record = data[lo : lo + width]
                count = int(record[2])
                members = frozenset(ids[int(m)] for m in record[3 : 3 + count])
                clusters.append(SemiCluster(members, record[0], record[1]))
                lo += width
            out[vertex] = tuple(clusters)
        return out

    def _compute_batch_numeric(self, batch, config: SemiClusteringConfig) -> None:
        """Fully vectorized superstep on the numeric record plane.

        Reproduces :meth:`_fold_vertex` bit for bit without touching Python
        payload objects:

        * the masked adjacency sums of ``extended_with``/``singleton`` use
          :func:`~repro.bsp.ragged.masked_segment_left_fold`, whose per-row
          accumulation is strictly sequential in adjacency order -- the same
          IEEE rounding as the scalar Python fold (``np.sum``'s pairwise
          reduction would differ);
        * scores are recomputed with the exact scalar expression, and the
          candidate sort is one ``np.lexsort`` keyed by (vertex, -score,
          member string ranks) -- stable, like ``list.sort`` -- with member
          slots padded by -1 so that a rank-prefix cluster orders before its
          extensions, exactly like Python's shorter-tuple-first rule;
        * the ``set(new_value) != set(value)`` update test becomes a
          canonical sort + dedup comparison of old and new record blocks
          (:func:`~repro.bsp.ragged.segment_unique_records`);
        * sent byte sizes follow the scalar wire format, ``4 + sum(20 + 8 *
          members)`` per message, never the padded record width.
        """
        cache = batch.cache
        str_rank: np.ndarray = cache["str_rank"]
        width: int = cache["width"]
        v_max = int(config.v_max)
        idx = batch.indices
        k = len(idx)
        n = len(str_rank)
        indptr = batch.edge_indptr
        targets = batch.edge_targets
        weights = batch.edge_weights
        out_degrees = batch.out_degrees

        if batch.superstep == 0:
            degrees = out_degrees[idx]
            slots = concat_ranges(indptr[idx], degrees)
            stream_seg = np.repeat(np.arange(k, dtype=np.int64), degrees)
            not_self = targets[slots] != idx[stream_seg]
            boundary = batch.kernels.masked_segment_left_fold(
                weights[slots], not_self, stream_seg, k
            )
            records = np.full((k, width), -1.0, dtype=np.float64)
            records[:, 0] = 0.0
            records[:, 1] = boundary
            records[:, 2] = 1.0
            records[:, 3] = idx.astype(np.float64)
            rows = Ragged.from_lengths(
                records.reshape(-1), np.full(k, width, dtype=np.int64)
            )
            batch.set_rows(idx, rows)
            batch.aggregate(UPDATES_AGGREGATOR, np.ones(k))
            batch.aggregate(TOTAL_AGGREGATOR, np.ones(k))
            # Wire size of a one-member singleton message: 4 + (20 + 8).
            batch.send_ragged_to_all_neighbors(
                idx, rows, np.full(k, 32, dtype=np.int64)
            )
            return

        # ------------------------------------------------ delivered records
        in_data, in_indptr = batch.incoming_elements()
        elem_starts = in_indptr[idx]
        elem_lens = in_indptr[idx + 1] - elem_starts
        rec_counts = elem_lens // width
        values = batch.values
        old_counts = values.lengths[idx] // width
        halt_mask = rec_counts == 0
        total_records = int(rec_counts.sum())

        if total_records == 0:
            batch.aggregate(TOTAL_AGGREGATOR, old_counts.astype(np.float64))
            batch.vote_to_halt(np.flatnonzero(halt_mask))
            return

        received = in_data[concat_ranges(elem_starts, elem_lens)].reshape(-1, width)
        rec_seg = np.repeat(np.arange(k, dtype=np.int64), rec_counts)
        rec_members_int = received[:, 3:].astype(np.int64)
        rec_counts_col = received[:, 2]
        contains = (rec_members_int == idx[rec_seg][:, None]).any(axis=1)
        extendable = ~contains & (rec_counts_col < v_max)

        # ------------------------------------------------------- extensions
        ext = np.flatnonzero(extendable)
        num_ext = len(ext)
        if num_ext:
            ext_seg = rec_seg[ext]
            ext_vertex = idx[ext_seg]
            degrees = out_degrees[ext_vertex]
            slots = concat_ranges(indptr[ext_vertex], degrees)
            stream_t = targets[slots]
            stream_w = weights[slots]
            ext_members = received[ext, 3:]
            ext_members_int = rec_members_int[ext]
            in_members = np.zeros(len(stream_t), dtype=bool)
            for j in range(v_max):
                in_members |= stream_t == np.repeat(ext_members_int[:, j], degrees)
            stream_seg = np.repeat(np.arange(num_ext, dtype=np.int64), degrees)
            weight_to_members = batch.kernels.masked_segment_left_fold(
                stream_w, in_members, stream_seg, num_ext
            )
            outside = ~in_members & (stream_t != np.repeat(ext_vertex, degrees))
            weight_to_outside = batch.kernels.masked_segment_left_fold(
                stream_w, outside, stream_seg, num_ext
            )
            ext_internal = received[ext, 0] + weight_to_members
            shrunk = received[ext, 1] - weight_to_members
            ext_boundary = np.where(shrunk > 0.0, shrunk, 0.0) + weight_to_outside
            # Insert the vertex into the rank-sorted member slots.
            member_ranks = np.where(
                ext_members_int >= 0, str_rank[np.maximum(ext_members_int, 0)], n
            )
            insert_rank = str_rank[ext_vertex]
            insert_pos = (member_ranks < insert_rank[:, None]).sum(axis=1)
            ext_new_members = np.empty_like(ext_members)
            vertex_col = ext_vertex.astype(np.float64)
            for j in range(v_max):
                shifted = ext_members[:, j - 1] if j else np.full(num_ext, -1.0)
                ext_new_members[:, j] = np.where(
                    j < insert_pos,
                    ext_members[:, j],
                    np.where(j == insert_pos, vertex_col, shifted),
                )
            ext_counts_per_vertex = np.bincount(ext_seg, minlength=k)
        else:
            ext_counts_per_vertex = np.zeros(k, dtype=np.int64)

        # ------------------------------------------- candidate list assembly
        # Scalar order per vertex: all received clusters first (delivery
        # order), then the extensions in the order of the clusters that
        # spawned them.
        cand_counts = rec_counts + ext_counts_per_vertex
        total = int(cand_counts.sum())
        cand_offsets = np.cumsum(cand_counts) - cand_counts
        rec_to = cand_offsets[rec_seg] + _positions_within(rec_counts)
        cand_rec = np.empty((total, width), dtype=np.float64)
        cand_contains = np.empty(total, dtype=bool)
        cand_rec[rec_to] = received
        cand_contains[rec_to] = contains
        if num_ext:
            ext_to = (
                cand_offsets[ext_seg]
                + rec_counts[ext_seg]
                + _positions_within(ext_counts_per_vertex)
            )
            cand_rec[ext_to, 0] = ext_internal
            cand_rec[ext_to, 1] = ext_boundary
            cand_rec[ext_to, 2] = rec_counts_col[ext] + 1.0
            cand_rec[ext_to, 3:] = ext_new_members
            cand_contains[ext_to] = True
        cand_seg = np.repeat(np.arange(k, dtype=np.int64), cand_counts)

        # -------------------------------------------------- score + sorting
        # The exact scalar expression of SemiCluster.score, term for term.
        cand_count = cand_rec[:, 2]
        normaliser = cand_count * (cand_count - 1.0) / 2.0
        safe_norm = np.where(normaliser == 0.0, 1.0, normaliser)
        score = np.where(
            cand_count <= 1.0,
            0.0,
            (cand_rec[:, 0] - config.boundary_factor * cand_rec[:, 1]) / safe_norm,
        )
        members_int = cand_rec[:, 3:].astype(np.int64)
        # Tie-break keys: member string ranks shifted to 1..n with 0 for
        # padding, so a rank-prefix cluster sorts before its extensions --
        # Python's shorter-tuple-first rule.  As many rank columns as fit
        # are bit-packed into each int64 lexsort key (fields compare
        # lexicographically, so the order is unchanged); this halves the
        # number of stable sort passes, the hottest part of the fold.
        rank_plus = np.where(
            members_int >= 0, str_rank[np.maximum(members_int, 0)] + 1, 0
        )
        bits = max(1, int(n).bit_length())
        per_key = max(1, 63 // bits)
        packed = batch.kernels.pack_rank_keys(rank_plus, bits, per_key)
        # lexsort: last key is primary.  Priority (vertex, -score, ranks).
        order = np.lexsort(tuple(reversed(packed)) + (np.negative(score), cand_seg))
        s_rec = cand_rec[order]
        s_count = s_rec[:, 2]
        s_contains = cand_contains[order]
        # The sort is grouped by vertex (primary key), so segment offsets and
        # per-element positions are unchanged.
        position = _positions_within(cand_counts)

        # ------------------------------------------------- forward the best
        live_mask = ~halt_mask
        send_sel = position < config.s_max
        send_counts = np.minimum(cand_counts, config.s_max)
        send_records = s_rec[send_sel]
        member_totals = np.bincount(
            cand_seg[send_sel], weights=s_count[send_sel], minlength=k
        ).astype(np.int64)
        senders = idx[live_mask]
        sizes = 4 + 20 * send_counts[live_mask] + 8 * member_totals[live_mask]
        payload = Ragged.from_lengths(
            send_records.reshape(-1), send_counts[live_mask] * width
        )
        batch.send_ragged_to_all_neighbors(senders, payload, sizes)

        # ------------------------------------- keep the best Cmax containing
        cont_int = s_contains.astype(np.int64)
        cumulative = np.cumsum(cont_int)
        safe_offsets = np.minimum(cand_offsets, max(total - 1, 0))
        seg_base = cumulative[safe_offsets] - cont_int[safe_offsets]
        containing_rank = cumulative - np.repeat(seg_base, cand_counts)
        keep_sel = s_contains & (containing_rank <= config.c_max)
        new_counts = np.bincount(cand_seg[keep_sel], minlength=k)

        # Update test: set(new_value) != set(value), on canonical record sets.
        old_starts = values.offsets[:-1][idx]
        old_lens = values.lengths[idx]
        old_records = values.data[concat_ranges(old_starts, old_lens)].reshape(-1, width)
        old_seg = np.repeat(np.arange(k, dtype=np.int64), old_counts)
        new_records = s_rec[keep_sel]
        new_seg = cand_seg[keep_sel]
        unique_records = batch.kernels.segment_unique_records
        old_u, old_u_seg, old_u_counts = unique_records(old_records, old_seg, k)
        new_u, new_u_seg, new_u_counts = unique_records(new_records, new_seg, k)
        count_match = old_u_counts == new_u_counts
        aligned_new = count_match[new_u_seg]
        aligned_old = count_match[old_u_seg]
        mismatch_rows = ~np.all(new_u[aligned_new] == old_u[aligned_old], axis=1)
        mismatched = (
            np.bincount(new_u_seg[aligned_new][mismatch_rows], minlength=k) > 0
        )
        sets_equal = count_match & ~mismatched
        updated = (new_counts > 0) & ~sets_equal & live_mask

        if np.any(updated):
            store = new_records[updated[new_seg]]
            batch.set_rows(
                idx[updated],
                Ragged.from_lengths(store.reshape(-1), new_counts[updated] * width),
            )

        # -------------------------------------------- aggregates + halting
        num_updates = int(np.count_nonzero(updated))
        if num_updates:
            batch.aggregate(UPDATES_AGGREGATOR, np.ones(num_updates))
        kept_len = np.where(updated, new_counts, old_counts)
        totals = np.where(
            halt_mask, old_counts.astype(np.float64), np.maximum(kept_len, 1)
        )
        batch.aggregate(TOTAL_AGGREGATOR, totals)
        if np.any(halt_mask):
            batch.vote_to_halt(np.flatnonzero(halt_mask))

    # ------------------------------------------------------------ convergence
    def check_convergence(
        self,
        aggregates: Dict[str, float],
        superstep: int,
        graph_info: GraphInfo,
        config: SemiClusteringConfig,
    ) -> Tuple[bool, Optional[float]]:
        if superstep == 0:
            return False, None
        updated = aggregates.get(UPDATES_AGGREGATOR, 0.0)
        total = max(aggregates.get(TOTAL_AGGREGATOR, 0.0), 1.0)
        ratio = updated / total
        return ratio < config.tolerance, ratio


def best_clusters(vertex_values: Dict, boundary_factor: float = 0.1, top: int = 10) -> List[SemiCluster]:
    """Aggregate the per-vertex cluster lists into a global best-cluster list.

    Mirrors the paper's final step: "the set of best semi-clusters of each
    vertex ... are aggregated into a global list of best semi-clusters".
    """
    seen: Dict[FrozenSet[Any], SemiCluster] = {}
    for clusters in vertex_values.values():
        for cluster in clusters:
            seen.setdefault(cluster.members, cluster)
    ranked = sorted(seen.values(), key=lambda c: -c.score(boundary_factor))
    return ranked[:top]
