"""BSP master: coordinates supersteps and evaluates global convergence.

The master mirrors Giraph's master task: after every superstep barrier it
receives the reduced aggregator values, asks the algorithm whether its global
convergence condition is met, and decides whether another superstep should be
started.  Execution also stops when every vertex has voted to halt and no
messages are in flight (the native Pregel termination condition), or when the
superstep budget is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class GraphInfo:
    """Graph-level metadata exposed to convergence checks."""

    num_vertices: int
    num_edges: int
    name: str = ""


@dataclass
class MasterDecision:
    """The master's verdict after a superstep."""

    stop: bool
    converged: bool
    reason: str
    convergence_metric: Optional[float] = None


class Master:
    """Evaluates stopping conditions at each superstep barrier."""

    def __init__(self, algorithm, config, graph_info: GraphInfo, max_supersteps: int) -> None:
        self._algorithm = algorithm
        self._config = config
        self._graph_info = graph_info
        self._max_supersteps = max_supersteps

    def after_superstep(
        self,
        superstep: int,
        aggregates: Dict[str, float],
        active_next: int,
        messages_in_flight: int,
    ) -> MasterDecision:
        """Decide whether to stop after ``superstep`` has completed."""
        converged, metric = self._algorithm.check_convergence(
            aggregates, superstep, self._graph_info, self._config
        )
        if converged:
            return MasterDecision(
                stop=True, converged=True, reason="convergence condition met",
                convergence_metric=metric,
            )
        if active_next == 0 and messages_in_flight == 0:
            return MasterDecision(
                stop=True, converged=True, reason="all vertices voted to halt",
                convergence_metric=metric,
            )
        if superstep + 1 >= self._max_supersteps:
            return MasterDecision(
                stop=True, converged=False, reason="superstep budget exhausted",
                convergence_metric=metric,
            )
        return MasterDecision(stop=False, converged=False, reason="continue",
                              convergence_metric=metric)
