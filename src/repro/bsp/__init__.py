"""A Bulk Synchronous Parallel (Pregel/Giraph-style) execution engine.

This package is the stand-in for Apache Giraph 0.1.0, the execution substrate
of the paper.  It implements the vertex-centric BSP model:

* algorithms are expressed as a per-vertex ``compute`` function
  (:mod:`repro.algorithms.base`),
* vertices exchange messages that are delivered in the next superstep,
* vertices may vote to halt and are re-activated by incoming messages,
* global aggregators are reduced by the master at the end of each superstep
  and drive the algorithms' convergence checks,
* the graph is hash-partitioned over a configurable number of workers and
  per-worker, per-superstep counters (Table 1 of the paper: active vertices,
  local/remote message counts and byte counts) are recorded,
* a runtime model converts the counters of the worker on the critical path
  into simulated wall-clock seconds using the cluster's ground-truth cost
  profile (:mod:`repro.cluster`).

The engine returns a :class:`repro.bsp.result.RunResult` containing the
per-iteration profiles that PREDIcT consumes.
"""

from repro.bsp.counters import IterationProfile, WorkerCounters
from repro.bsp.engine import BSPEngine, EngineConfig
from repro.bsp.result import RunResult

__all__ = [
    "BSPEngine",
    "EngineConfig",
    "RunResult",
    "IterationProfile",
    "WorkerCounters",
]
