"""Message buffers and combiners.

Messages sent in superstep *s* are delivered at the start of superstep *s+1*.
The :class:`MessageStore` keeps, for every destination vertex, the list of
payloads buffered for the next superstep together with their byte sizes, and
tracks the per-worker local/remote counters the paper's Table 1 lists.

A :class:`Combiner` optionally folds the messages addressed to the same
destination vertex (e.g. PageRank only needs the *sum* of incoming rank
contributions), reducing memory pressure exactly as Giraph combiners do.

Sent vs. delivered (the intended Giraph semantics)
--------------------------------------------------
Combining creates two distinct message statistics, and they are deliberately
kept separate everywhere in the engine:

* **sent** counts/bytes accrue once per ``send_message`` call, *before*
  combining.  This is what the sending worker's compute loop pays for and
  what the paper's Table 1 key input features (LocMsg / RemMsg / LocMsgSize /
  RemMsgSize) measure -- so a run with a combiner reports the same feature
  profile as a run without one.
* **delivered** counts/bytes describe what is actually buffered for the next
  superstep: at most one combined payload per destination vertex.  This is
  what occupies worker memory (Giraph cannot spill messages to disk), so the
  engine's memory accounting uses delivered sizes, not sent sizes.

:class:`MessageStore` is the *reference model* of these semantics: its
``buffered_messages`` / ``buffered_bytes`` track the sent stream and
:meth:`MessageStore.delivered_messages` the post-combining buffer occupancy.
The engine implements the same rules inline in ``_EngineRun.send_message``
(scalar) and ``_VectorizedState`` (batch) for speed; the unit tests in
``tests/test_combiner_semantics.py`` pin the reference model and both engine
paths against each other.

The ragged message protocol (variable-size payloads)
----------------------------------------------------
Fixed-size numeric messages ride the engine's scalar-payload batch plane;
everything else rides the **ragged message plane** of
:mod:`repro.bsp.ragged`.  Its protocol, shared by all three payload kinds:

* a send call names the *senders* (vertex indices in partition order), one
  payload per sender, and one byte size per payload; the plane expands the
  payload along each sender's out-edges in exact scalar send order;
* messages are grouped per destination vertex at the superstep barrier with
  a stable sort, so each vertex's delivery list equals the scalar path's
  bucket-append order;
* counters stay **sent-stream** semantics (one count/size per routed edge,
  pre-combining) and the memory model is fed per-destination delivered
  counts and bytes, exactly as above.  Combiners are not supported on the
  ragged plane -- a run with an active combiner falls back to the scalar
  path (no variable-size algorithm defines one).

Per payload kind: neighborhood estimation sends fixed-width FM-sketch rows
(``"rows"``, OR-reduced at the destination), top-k ranking sends
variable-length rank lists (``"ragged"`` numeric rows), and semi-clustering
sends semi-cluster lists (``"object"``).  The ``"object"`` kind has two
interchangeable executions: by default the clusters travel as fixed-width
*numeric records* riding the ``"ragged"`` delivery machinery (the numeric
fast path, ``repro.bsp.ragged.ClusterRowsState``), and with
``EngineConfig(semicluster_numeric=False)`` -- or for inputs the numeric
encoder declines -- they travel as batch-routed Python objects folded per
vertex (``ObjectState``).  Either way the *wire format* is what the byte
counters report: ``4 + sum(20 + 8 * members)`` per message, exactly the
scalar path's ``message_size``, never the padded in-memory record width.

The partition-native layout (message routing as slice arithmetic)
-----------------------------------------------------------------
On the batch planes, *which worker a message lands on* is not looked up per
message: before the superstep loop starts the engine relabels the frozen
graph into **partition-contiguous order** (``CSRGraph.repartition``), so
worker ``w`` owns the vertex index range ``offsets[w]:offsets[w + 1]`` and a
contiguous CSR edge slice.  The consequences for the message plane:

* the local/remote split of a send call is two range comparisons of the
  destination indices against the sender's ``[start, stop)`` offsets -- and
  for a *full-partition* send it is a constant of the layout, classified
  once per run;
* delivered (post-routing) counts and bytes per worker -- what the memory
  model charges -- are segment sums of the per-vertex buffers over the
  worker boundaries, one pass for all workers;
* the send *stream* is unchanged: vertices iterate in the same per-worker
  order as the scalar path (the relabelling is stable), so bucket-append
  delivery order, float accumulation order and every sent-stream counter
  stay bit-identical.

Vertex ids travel with the permutation; everything reported to the user
(counters, vertex values, aggregate histories) is keyed by original ids.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional

VertexId = Hashable


class Combiner:
    """Folds messages addressed to the same destination vertex."""

    def combine(self, accumulated: Any, incoming: Any) -> Any:
        """Return the combination of an accumulated value and a new message."""
        raise NotImplementedError


class SumCombiner(Combiner):
    """Combiner that sums numeric messages (suitable for PageRank)."""

    def combine(self, accumulated: Any, incoming: Any) -> Any:
        return accumulated + incoming


class MessageStore:
    """Buffers outgoing messages for delivery in the next superstep."""

    def __init__(self, combiner: Optional[Combiner] = None) -> None:
        self._combiner = combiner
        self._buffers: Dict[VertexId, List[Any]] = {}
        self.buffered_messages = 0
        self.buffered_bytes = 0

    def deliver(self, target: VertexId, payload: Any, size_bytes: int) -> None:
        """Buffer ``payload`` for ``target``; apply the combiner if configured."""
        self.buffered_messages += 1
        self.buffered_bytes += size_bytes
        bucket = self._buffers.get(target)
        if bucket is None:
            self._buffers[target] = [payload]
            return
        if self._combiner is not None:
            bucket[0] = self._combiner.combine(bucket[0], payload)
        else:
            bucket.append(payload)

    @property
    def delivered_messages(self) -> int:
        """Number of payloads actually buffered (post-combining)."""
        return sum(len(bucket) for bucket in self._buffers.values())

    def messages_for(self, target: VertexId) -> List[Any]:
        """Return (without removing) the messages buffered for ``target``."""
        return self._buffers.get(target, [])

    def targets(self) -> List[VertexId]:
        """Vertices that have at least one buffered message."""
        return list(self._buffers)

    def has_messages(self) -> bool:
        """True when any message is buffered."""
        return bool(self._buffers)

    def clear(self) -> None:
        """Drop all buffered messages (called after delivery)."""
        self._buffers.clear()
        self.buffered_messages = 0
        self.buffered_bytes = 0


def default_message_size(payload: Any) -> int:
    """Fallback message-size estimator (bytes) when an algorithm provides none.

    Numbers count as 8 bytes, strings as their length, and containers as the
    sum of their elements plus a small framing overhead -- a reasonable proxy
    for Giraph's serialised Writable sizes.
    """
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (list, tuple, set, frozenset)):
        return 4 + sum(default_message_size(item) for item in payload)
    if isinstance(payload, dict):
        return 4 + sum(
            default_message_size(k) + default_message_size(v) for k, v in payload.items()
        )
    return 16


MessageSizer = Callable[[Any], int]
