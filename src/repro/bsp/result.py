"""The result of executing an iterative algorithm on the BSP engine.

:class:`RunResult` is the object PREDIcT consumes: per-iteration profiles
(key input features + simulated per-iteration runtime), the phase breakdown
(setup / read / superstep / write, as in §2.2 of the paper), convergence
information and, optionally, the final vertex values for algorithms whose
output feeds another algorithm (top-k ranking runs on PageRank output).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional

from repro.bsp.counters import IterationProfile

VertexId = Hashable


@dataclass
class PhaseTimes:
    """Simulated duration of each Giraph execution phase."""

    setup: float = 0.0
    read: float = 0.0
    superstep: float = 0.0
    write: float = 0.0

    @property
    def total(self) -> float:
        """End-to-end simulated runtime."""
        return self.setup + self.read + self.superstep + self.write


@dataclass
class RunResult:
    """Everything observed while executing an algorithm on the engine."""

    algorithm: str
    graph_name: str
    num_vertices: int
    num_edges: int
    num_workers: int
    iterations: List[IterationProfile] = field(default_factory=list)
    phase_times: PhaseTimes = field(default_factory=PhaseTimes)
    converged: bool = False
    convergence_history: List[float] = field(default_factory=list)
    vertex_values: Optional[Dict[VertexId, Any]] = None
    config: Dict[str, Any] = field(default_factory=dict)
    #: The :class:`repro.obs.Tracer` the run recorded into when
    #: ``EngineConfig.trace`` was set (None otherwise).  Holds the measured
    #: wall-clock spans whose superstep attributes pair with the simulated
    #: ``iterations`` runtimes -- the measured-vs-modeled link.
    trace: Optional[Any] = None
    #: Resolved kernel tier the run executed on (``"numpy"`` or ``"numba"``;
    #: None on results produced before tier dispatch existed) and the thread
    #: count of the compiled folds -- so any recorded timing says which
    #: implementation produced it.
    kernel_tier: Optional[str] = None
    threads: int = 1
    #: :class:`repro.bsp.resilience.RecoveryLog` when checkpointing/recovery
    #: was active during the run (None otherwise): checkpoint/rewind/respawn
    #: counts, the classified faults survived, and whether the run degraded
    #: to the inline backend.
    recovery: Optional[Any] = None

    @property
    def num_iterations(self) -> int:
        """Number of supersteps executed."""
        return len(self.iterations)

    @property
    def superstep_runtime(self) -> float:
        """Total simulated time spent in the superstep phase."""
        return sum(profile.runtime for profile in self.iterations)

    @property
    def total_runtime(self) -> float:
        """Total simulated runtime including setup, read and write phases."""
        return self.phase_times.total

    def iteration_runtimes(self) -> List[float]:
        """Per-iteration simulated runtimes."""
        return [profile.runtime for profile in self.iterations]

    def iteration_feature_rows(self, level: str = "critical") -> List[Dict[str, float]]:
        """Per-iteration Table 1 feature dictionaries.

        ``level`` selects ``"critical"`` (the worker on the critical path,
        which is what the cost model is trained on) or ``"graph"`` (counters
        summed over all workers, used by the feature-error benchmarks).
        """
        if level == "critical":
            return [profile.critical_feature_dict() for profile in self.iterations]
        if level == "graph":
            return [profile.graph_feature_dict() for profile in self.iterations]
        raise ValueError(f"unknown feature level {level!r}")

    def total_remote_message_bytes(self) -> int:
        """Remote message bytes summed over all iterations (graph level)."""
        return sum(profile.remote_message_bytes for profile in self.iterations)

    def total_messages(self) -> int:
        """Messages (local + remote) summed over all iterations."""
        return sum(profile.total_messages for profile in self.iterations)

    def summary(self) -> Dict[str, Any]:
        """Compact summary used by examples and reports."""
        summary = {
            "algorithm": self.algorithm,
            "graph": self.graph_name,
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "workers": self.num_workers,
            "iterations": self.num_iterations,
            "converged": self.converged,
            "superstep_runtime_s": round(self.superstep_runtime, 3),
            "total_runtime_s": round(self.total_runtime, 3),
            "remote_message_bytes": self.total_remote_message_bytes(),
            "kernel_tier": self.kernel_tier,
            "threads": self.threads,
        }
        if self.recovery is not None:
            summary["recovery"] = self.recovery.as_dict()
        return summary
