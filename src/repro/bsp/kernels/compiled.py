"""Numba loop twins of the reference kernels, plus hybrid threading.

Every kernel here is a plain-loop re-statement of its twin in
:mod:`repro.bsp.kernels.reference`, decorated ``@njit(nogil=True,
cache=True)``.  ``nogil`` lets one pool child split a kernel invocation
across a thread pool (processes x threads); ``cache=True`` persists the
compiled machine code on disk so repeat runs (and CI re-runs) skip JIT
compilation.  When numba is not installed the module still imports -- the
``njit`` shim below is a no-op decorator -- so the loop twins remain
callable as ordinary Python and the bit-identity tests can exercise them
without the compiler (slowly).

Bit-identity notes (the parts that are easy to get wrong):

- The folds accumulate per segment strictly in element order -- the same
  left-to-right IEEE fold as the reference and the scalar path.
- numba's ``np.sort``/``np.argsort`` are NOT stable and accept no ``kind``
  argument, but the reference dedups with a *stable* lexsort: among
  ``==``-equal floats (``-0.0`` vs ``0.0``) the kept representative is the
  first in stream order, and its bits are observable.  The sorts here are
  therefore hand-written stable ones: a bottom-up mergesort for the top-k
  values and a stable insertion sort for the (small) per-segment record
  groups.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Tuple

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    NUMBA_AVAILABLE = True
except Exception:  # pragma: no cover - the sandbox/CI-default path
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):
        """No-op ``@njit`` stand-in: keeps the loop twins importable and
        plain-Python-callable when numba is absent."""

        if len(args) == 1 and callable(args[0]) and not kwargs:
            return args[0]

        def wrap(func):
            return func

        return wrap


# Below this many stream elements a fold is not worth shipping to threads:
# the pool handoff costs more than the loop.
_MIN_PARALLEL_ELEMENTS = 1 << 15

_POOLS: Dict[int, ThreadPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def _get_pool(threads: int) -> ThreadPoolExecutor:
    with _POOLS_LOCK:
        pool = _POOLS.get(threads)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=threads, thread_name_prefix="repro-kernel"
            )
            _POOLS[threads] = pool
        return pool


# ---------------------------------------------------------------------------
# Sequential folds
# ---------------------------------------------------------------------------


@njit(nogil=True, cache=True)
def _fold_sums(data, offsets, lengths, out, start, stop):
    for s in range(start, stop):
        acc = 0.0
        base = offsets[s]
        for j in range(lengths[s]):
            acc = acc + data[base + j]
        out[s] = acc


@njit(nogil=True, cache=True)
def _masked_fold(values, mask, seg_ids, out, start, stop):
    for i in range(start, stop):
        if mask[i]:
            s = seg_ids[i]
            out[s] = out[s] + values[i]


def _segment_cuts(ends: np.ndarray, threads: int) -> List[int]:
    """Segment-index boundaries splitting ``ends[-1]`` elements of work into
    ``threads`` roughly equal contiguous chunks (whole segments only)."""
    k = ends.shape[0]
    total = int(ends[-1])
    cuts = [0]
    for t in range(1, threads):
        c = int(np.searchsorted(ends, (total * t) // threads, side="left"))
        cuts.append(min(max(c, cuts[-1]), k))
    cuts.append(k)
    return cuts


def _element_cuts(seg_ids: np.ndarray, threads: int) -> List[int]:
    """Element-index boundaries aligned to segment starts, so no segment's
    accumulation spans two threads (``seg_ids`` ascending)."""
    m = seg_ids.shape[0]
    cuts = [0]
    for t in range(1, threads):
        c = (m * t) // threads
        if 0 < c < m:
            c = int(np.searchsorted(seg_ids, seg_ids[c], side="left"))
        cuts.append(min(max(c, cuts[-1]), m))
    cuts.append(m)
    return cuts


def _make_fold_sums(threads: int) -> Callable:
    def segment_left_fold_sums(data: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        data = np.ascontiguousarray(data, dtype=np.float64)
        lengths = np.ascontiguousarray(lengths, dtype=np.int64)
        k = lengths.shape[0]
        sums = np.zeros(k, dtype=np.float64)
        if k == 0:
            return sums
        ends = np.cumsum(lengths)
        total = int(ends[-1])
        if total == 0:
            return sums
        offsets = ends - lengths
        if threads > 1 and total >= _MIN_PARALLEL_ELEMENTS:
            cuts = _segment_cuts(ends, threads)
            pool = _get_pool(threads)
            futures = [
                pool.submit(_fold_sums, data, offsets, lengths, sums, lo, hi)
                for lo, hi in zip(cuts[:-1], cuts[1:])
                if hi > lo
            ]
            for future in futures:
                future.result()
        else:
            _fold_sums(data, offsets, lengths, sums, 0, k)
        return sums

    return segment_left_fold_sums


def _make_masked_fold(threads: int) -> Callable:
    def masked_segment_left_fold(
        values: np.ndarray, mask: np.ndarray, seg_ids: np.ndarray, num_segments: int
    ) -> np.ndarray:
        values = np.ascontiguousarray(values, dtype=np.float64)
        mask = np.ascontiguousarray(mask, dtype=np.bool_)
        seg_ids = np.ascontiguousarray(seg_ids, dtype=np.int64)
        out = np.zeros(num_segments, dtype=np.float64)
        m = values.shape[0]
        if m == 0:
            return out
        if threads > 1 and m >= _MIN_PARALLEL_ELEMENTS:
            cuts = _element_cuts(seg_ids, threads)
            pool = _get_pool(threads)
            futures = [
                pool.submit(_masked_fold, values, mask, seg_ids, out, lo, hi)
                for lo, hi in zip(cuts[:-1], cuts[1:])
                if hi > lo
            ]
            for future in futures:
                future.result()
        else:
            _masked_fold(values, mask, seg_ids, out, 0, m)
        return out

    return masked_segment_left_fold


# ---------------------------------------------------------------------------
# Stable sorts + dedup
# ---------------------------------------------------------------------------


@njit(nogil=True, cache=True)
def _stable_sort(arr, lo, hi, buf):
    """Bottom-up mergesort of ``arr[lo:hi]`` (``buf`` same length as
    ``arr``).  Takes from the left run on ties, so ``==``-equal values keep
    their input order -- the stability the dedup representative relies on."""
    n = hi - lo
    width = 1
    while width < n:
        left = lo
        while left < hi:
            mid = min(left + width, hi)
            end = min(left + 2 * width, hi)
            i = left
            j = mid
            k = left
            while i < mid and j < end:
                if arr[j] < arr[i]:
                    buf[k] = arr[j]
                    j += 1
                else:
                    buf[k] = arr[i]
                    i += 1
                k += 1
            while i < mid:
                buf[k] = arr[i]
                i += 1
                k += 1
            while j < end:
                buf[k] = arr[j]
                j += 1
                k += 1
            for t in range(left, end):
                arr[t] = buf[t]
            left = end
        width *= 2


@njit(nogil=True, cache=True)
def _group_values(data, seg_ids, seg_offsets, grouped):
    cursor = seg_offsets.copy()
    for i in range(data.shape[0]):
        s = seg_ids[i]
        grouped[cursor[s]] = data[i]
        cursor[s] += 1


@njit(nogil=True, cache=True)
def _seg_unique_topk(grouped, seg_offsets, counts, k, out_data, out_lengths, buf):
    pos = 0
    for s in range(counts.shape[0]):
        lo = seg_offsets[s]
        hi = lo + counts[s]
        if hi == lo:
            out_lengths[s] = 0
            continue
        _stable_sort(grouped, lo, hi, buf)
        # Dedup ascending, compacting in place; first-of-run survives, so the
        # representative's bits match the reference's stable lexsort dedup.
        u = 1
        for i in range(lo + 1, hi):
            if grouped[i] != grouped[lo + u - 1]:
                grouped[lo + u] = grouped[i]
                u += 1
        take = u if u < k else k
        out_lengths[s] = take
        for t in range(take):
            out_data[pos] = grouped[lo + u - 1 - t]
            pos += 1
    return pos


def segment_unique_topk_desc(
    data: np.ndarray, seg_ids: np.ndarray, num_segments: int, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    data = np.ascontiguousarray(data, dtype=np.float64)
    seg_ids = np.ascontiguousarray(seg_ids, dtype=np.int64)
    counts = np.bincount(seg_ids, minlength=num_segments).astype(np.int64)
    seg_offsets = np.cumsum(counts) - counts
    m = data.shape[0]
    grouped = np.empty(m, dtype=np.float64)
    buf = np.empty(m, dtype=np.float64)
    _group_values(data, seg_ids, seg_offsets, grouped)
    out_data = np.empty(int(np.minimum(counts, k).sum()), dtype=np.float64)
    out_lengths = np.zeros(num_segments, dtype=np.int64)
    used = _seg_unique_topk(
        grouped, seg_offsets, counts, k, out_data, out_lengths, buf
    )
    return out_data[:used], out_lengths


@njit(nogil=True, cache=True)
def _row_less(records, a, b):
    for c in range(records.shape[1]):
        x = records[a, c]
        y = records[b, c]
        if x < y:
            return True
        if y < x:
            return False
    return False


@njit(nogil=True, cache=True)
def _row_equal(records, a, b):
    for c in range(records.shape[1]):
        if records[a, c] != records[b, c]:
            return False
    return True


@njit(nogil=True, cache=True)
def _seg_unique_rows(records, seg_ids, seg_offsets, counts, order, kept):
    # Counting-sort row indices by segment: stream order survives within
    # each segment, which is what makes the insertion sort's stability
    # meaningful for ==-equal rows.
    cursor = seg_offsets.copy()
    for i in range(seg_ids.shape[0]):
        s = seg_ids[i]
        order[cursor[s]] = i
        cursor[s] += 1
    total = 0
    for s in range(counts.shape[0]):
        lo = seg_offsets[s]
        hi = lo + counts[s]
        # Stable insertion sort by lexicographic row order; segments are
        # candidate-list sized (c_max-scale), so O(g^2) is cheap.
        for i in range(lo + 1, hi):
            key = order[i]
            j = i - 1
            while j >= lo and _row_less(records, key, order[j]):
                order[j + 1] = order[j]
                j -= 1
            order[j + 1] = key
        last = -1
        for i in range(lo, hi):
            row = order[i]
            if last < 0 or not _row_equal(records, row, last):
                kept[total] = row
                last = row
                total += 1
    return total


def segment_unique_records(
    records: np.ndarray, seg_ids: np.ndarray, num_segments: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    m = records.shape[0]
    if m == 0:
        return records, seg_ids, np.zeros(num_segments, dtype=np.int64)
    records_c = np.ascontiguousarray(records, dtype=np.float64)
    seg_ids_c = np.ascontiguousarray(seg_ids, dtype=np.int64)
    counts = np.bincount(seg_ids_c, minlength=num_segments).astype(np.int64)
    seg_offsets = np.cumsum(counts) - counts
    order = np.empty(m, dtype=np.int64)
    kept = np.empty(m, dtype=np.int64)
    total = _seg_unique_rows(records_c, seg_ids_c, seg_offsets, counts, order, kept)
    kept_idx = kept[:total]
    unique_rows = records_c[kept_idx]
    unique_segs = seg_ids_c[kept_idx]
    return unique_rows, unique_segs, np.bincount(unique_segs, minlength=num_segments)


# ---------------------------------------------------------------------------
# Key packing + stream filtering
# ---------------------------------------------------------------------------


@njit(nogil=True, cache=True)
def _pack_keys(rank_plus, bits, j0, j1, key):
    for i in range(rank_plus.shape[0]):
        v = np.int64(0)
        for j in range(j0, j1):
            v = (v << bits) | rank_plus[i, j]
        key[i] = v


def pack_rank_keys(rank_plus: np.ndarray, bits: int, per_key: int) -> List[np.ndarray]:
    rank_plus = np.ascontiguousarray(rank_plus, dtype=np.int64)
    m, v_max = rank_plus.shape
    packed: List[np.ndarray] = []
    for j0 in range(0, v_max, per_key):
        key = np.empty(m, dtype=np.int64)
        _pack_keys(rank_plus, bits, j0, min(j0 + per_key, v_max), key)
        packed.append(key)
    return packed


@njit(nogil=True, cache=True)
def _filter_range(dest, lo, hi, idx):
    n = 0
    for i in range(dest.shape[0]):
        d = dest[i]
        if lo <= d < hi:
            idx[n] = i
            n += 1
    return n


def filter_range(dest: np.ndarray, lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray]:
    dest_c = np.ascontiguousarray(dest, dtype=np.int64)
    idx = np.empty(dest_c.shape[0], dtype=np.int64)
    n = _filter_range(dest_c, lo, hi, idx)
    idx = idx[:n]
    return np.ascontiguousarray(np.asarray(dest)[idx]), idx


def make_kernel_set(threads: int) -> Dict[str, Callable]:
    """Kernel-name -> callable map for the compiled tier; the folds close
    over ``threads`` (the only kernels worth splitting -- they dominate the
    steady-state superstep and parallelize over disjoint output ranges)."""
    return {
        "segment_left_fold_sums": _make_fold_sums(threads),
        "masked_segment_left_fold": _make_masked_fold(threads),
        "segment_unique_topk_desc": segment_unique_topk_desc,
        "segment_unique_records": segment_unique_records,
        "pack_rank_keys": pack_rank_keys,
        "filter_range": filter_range,
    }
