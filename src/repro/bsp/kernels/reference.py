"""Pure-NumPy reference implementations of the scalar-exactness kernels.

These are the engine's *semantic contract*: every kernel reproduces, bit for
bit, the result of a scalar per-vertex Python evaluation (a strict
left-to-right IEEE fold, a ``sorted(set(...))`` expression, a lexicographic
record sort).  The compiled twins in :mod:`repro.bsp.kernels.compiled` must
match these outputs exactly -- see ``docs/KERNELS.md`` for the contract and
``tests/test_ragged_plane.py`` / ``tests/test_kernel_tier.py`` for the pins.

Everything here is array-in / array-out: no engine types, no
:class:`repro.bsp.ragged.Ragged` containers (callers wrap results
themselves), so the module stays import-cycle-free and the kernels are
directly comparable across tiers.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def segment_left_fold_sums(data: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Per-segment *sequential* float sums, bit-identical to a Python fold.

    ``data`` concatenates the segments back to back; segment ``i`` occupies
    ``data[offsets[i]:offsets[i] + lengths[i]]`` with ``offsets`` the
    exclusive prefix sum of ``lengths``.  Returns, per segment, exactly the
    value of ``acc = 0.0; for v in segment: acc += v`` -- a strict
    left-to-right IEEE accumulation.  Neither ``np.sum`` nor
    ``np.add.reduceat`` can be used for this: both reduce with pairwise /
    multi-accumulator schemes whose rounding differs from the sequential
    fold, which would break the engine's bit-identity contract with the
    scalar path.

    Implementation: segments are ordered by length (descending), and
    iteration ``j`` adds the ``j``-th element of every segment that still has
    one -- per segment the additions happen strictly in element order, while
    each step is one vectorized gather + add over all live segments.  The
    loop runs ``max(lengths)`` times, so cost is ``O(sum(lengths))`` work
    plus one small Python iteration per distinct element position.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    k = len(lengths)
    sums = np.zeros(k, dtype=np.float64)
    total = int(lengths.sum())
    if k == 0 or total == 0:
        return sums
    offsets = np.cumsum(lengths) - lengths
    order = np.argsort(-lengths, kind="stable")
    sorted_offsets = offsets[order]
    sorted_lengths = lengths[order]
    max_len = int(sorted_lengths[0])
    # below[j] = number of segments with length <= j, so the segments still
    # live at element position j are the sorted prefix of size k - below[j].
    below = np.cumsum(np.bincount(sorted_lengths, minlength=max_len + 1))
    acc = np.zeros(k, dtype=np.float64)
    for j in range(max_len):
        live = k - int(below[j])
        acc[:live] = acc[:live] + data[sorted_offsets[:live] + j]
    sums[order] = acc
    return sums


def masked_segment_left_fold(
    values: np.ndarray, mask: np.ndarray, seg_ids: np.ndarray, num_segments: int
) -> np.ndarray:
    """Sequential per-segment sums of the ``mask``-selected ``values``.

    ``seg_ids`` must be ascending (segments contiguous in stream order), so
    compacting with ``mask`` preserves each segment's element order and the
    result equals the scalar ``acc = 0.0; for v, keep in row: acc += v if
    keep`` fold bit for bit.  Segments with no selected element sum to 0.0.
    """
    selected = values[mask]
    lengths = np.bincount(seg_ids[mask], minlength=num_segments)
    return segment_left_fold_sums(selected, lengths)


def segment_unique_topk_desc(
    data: np.ndarray, seg_ids: np.ndarray, num_segments: int, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-segment ``sorted(set(values), reverse=True)[:k]``.

    Sorting and deduplication use value equality only (no arithmetic), so the
    result is bit-identical to the Python set/sort expression the scalar
    top-k compute evaluates per vertex.  Returns ``(values, lengths)``:
    segment ``i``'s descending unique top-``k`` occupies the next
    ``lengths[i]`` entries of ``values`` (wrap with
    ``Ragged.from_lengths`` for row access).
    """
    order = np.lexsort((data, seg_ids))
    sdata = data[order]
    sseg = seg_ids[order]
    keep = np.ones(len(sdata), dtype=bool)
    if len(sdata):
        keep[1:] = (sdata[1:] != sdata[:-1]) | (sseg[1:] != sseg[:-1])
    udata = sdata[keep]
    useg = sseg[keep]
    counts = np.bincount(useg, minlength=num_segments)
    take = np.minimum(counts, k)
    ends = np.cumsum(counts)
    total = int(take.sum())
    prefix = np.cumsum(take) - take
    intra = np.arange(total, dtype=np.int64) - np.repeat(prefix, take)
    slots = np.repeat(ends - 1, take) - intra
    return udata[slots], take


def segment_unique_records(
    records: np.ndarray, seg_ids: np.ndarray, num_segments: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Canonical per-segment record sets: lexicographically sorted + deduped.

    ``records`` is a ``(m, width)`` float matrix; rows are grouped per
    segment, sorted by all columns (a total order up to float ``==``
    equality, so ``-0.0`` and ``0.0`` coalesce exactly like Python's
    hash/eq do in a ``set``), and exact duplicates within a segment are
    dropped.  Returns ``(unique_records, unique_seg_ids, counts)`` with
    rows ordered by (segment, record key) -- two segments hold equal record
    *sets* iff their counts match and their aligned rows compare equal,
    which is how the numeric semi-clustering plane evaluates the scalar
    path's ``set(new_value) != set(value)`` update test without building
    Python sets.
    """
    m, width = records.shape
    if m == 0:
        return records, seg_ids, np.zeros(num_segments, dtype=np.int64)
    keys = tuple(records[:, c] for c in reversed(range(width))) + (seg_ids,)
    order = np.lexsort(keys)
    rows = records[order]
    segs = seg_ids[order]
    keep = np.ones(m, dtype=bool)
    keep[1:] = (segs[1:] != segs[:-1]) | np.any(rows[1:] != rows[:-1], axis=1)
    unique_rows = rows[keep]
    unique_segs = segs[keep]
    counts = np.bincount(unique_segs, minlength=num_segments)
    return unique_rows, unique_segs, counts


def pack_rank_keys(rank_plus: np.ndarray, bits: int, per_key: int) -> List[np.ndarray]:
    """Bit-pack per-member rank columns into int64 lexsort keys.

    ``rank_plus`` is ``(m, v_max)`` with each entry in ``[0, 2**bits)``;
    ``per_key`` columns are packed per int64 key (most significant first),
    so comparing the key list lexicographically equals comparing the rank
    columns left to right.  Returns the keys most-significant-group first;
    pass ``tuple(reversed(keys))`` to ``np.lexsort`` (whose *last* key is
    primary).  This is the tie-break-key builder of the numeric
    semi-clustering sort -- packing halves the number of stable sort passes.
    """
    m, v_max = rank_plus.shape
    packed: List[np.ndarray] = []
    for j0 in range(0, v_max, per_key):
        key = np.zeros(m, dtype=np.int64)
        for j in range(j0, min(j0 + per_key, v_max)):
            key = (key << bits) | rank_plus[:, j]
        packed.append(key)
    return packed


def filter_range(dest: np.ndarray, lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray]:
    """Stream positions whose destination lies in ``[lo, hi)``.

    Returns ``(dest_f, idx)``: the filtered destinations (contiguous) and
    the positions of the surviving elements in ``dest`` (ascending, so the
    filtered stream preserves global send order).  This is the owner-side
    range filter of the process backend's owner-computes reduction.
    """
    idx = np.flatnonzero((dest >= lo) & (dest < hi))
    return np.ascontiguousarray(dest[idx]), idx
