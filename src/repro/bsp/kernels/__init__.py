"""Kernel tier dispatch: one semantic contract, two execution tiers.

The engine's hot segment kernels live in two interchangeable
implementations -- :mod:`repro.bsp.kernels.reference` (pure NumPy, always
available, the semantic ground truth) and :mod:`repro.bsp.kernels.compiled`
(numba ``@njit(nogil=True, cache=True)`` loop twins, optionally threaded).
A :class:`KernelSet` resolved once per run binds the chosen tier's
callables; every call site goes through the set, so switching tiers never
forks the algorithm code.

Selection (``resolve_kernel_tier``):

- ``"numpy"``  -- always the reference implementations.
- ``"numba"``  -- the compiled twins if numba imports, else silently the
  reference tier (requesting the fast tier must never break a host that
  lacks the compiler; CI's default leg pins this fallback).
- ``"auto"``   -- compiled when available, reference otherwise.
- ``None``     -- the ``REPRO_KERNEL_TIER`` environment variable if set,
  else ``"auto"``.

Anything else raises :class:`repro.exceptions.BSPError`.  Bit-identity
across tiers is pinned by the differential suite and the kernel unit tests
parametrized over ``available_kernel_tiers()``.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import BSPError
from repro.bsp.kernels import reference

KERNEL_TIER_ENV = "REPRO_KERNEL_TIER"
KERNEL_TIERS = ("numpy", "numba", "auto")

# Memoized import probe; tests monkeypatch this to exercise the compiled
# dispatch path (whose loop twins run as plain Python under the njit shim)
# on hosts without numba.
_NUMBA_PROBE: Optional[bool] = None


def numba_available() -> bool:
    """True iff ``import numba`` succeeds (probed once per process)."""
    global _NUMBA_PROBE
    if _NUMBA_PROBE is None:
        try:
            import numba  # noqa: F401

            _NUMBA_PROBE = True
        except Exception:
            _NUMBA_PROBE = False
    return _NUMBA_PROBE


def available_kernel_tiers() -> Tuple[str, ...]:
    """The concrete tiers runnable on this host (``"auto"`` excluded)."""
    if numba_available():
        return ("numpy", "numba")
    return ("numpy",)


def resolve_kernel_tier(request: Optional[str] = None) -> str:
    """Resolve a tier request to the concrete tier this host will run.

    ``None`` defers to ``REPRO_KERNEL_TIER`` (then ``"auto"``); ``"numba"``
    and ``"auto"`` silently fall back to ``"numpy"`` when numba is absent.
    """
    if request is None:
        request = os.environ.get(KERNEL_TIER_ENV) or "auto"
    if request not in KERNEL_TIERS:
        raise BSPError(
            f"unknown kernel tier {request!r}: expected one of {KERNEL_TIERS}"
        )
    if request == "numpy":
        return "numpy"
    return "numba" if numba_available() else "numpy"


class KernelSet:
    """The resolved kernels of one tier, bound once per engine run.

    The numpy tier binds the reference functions *directly* (no wrapper
    frames), so routing call sites through a ``KernelSet`` costs the
    pure-NumPy path nothing -- the perf-guard benchmark asserts the
    identity.  ``threads`` only changes behavior on the compiled tier,
    where the nogil folds split across a shared thread pool.
    """

    __slots__ = (
        "tier",
        "threads",
        "segment_left_fold_sums",
        "masked_segment_left_fold",
        "segment_unique_topk_desc",
        "segment_unique_records",
        "pack_rank_keys",
        "filter_range",
    )

    def __init__(self, tier: str, threads: int, table: Dict[str, object]):
        self.tier = tier
        self.threads = threads
        for name in self.__slots__[2:]:
            setattr(self, name, table[name])

    def warm_up(self) -> None:
        """Run every kernel once on tiny inputs, forcing JIT compilation on
        the compiled tier so timed benchmark iterations never include it."""
        data = np.array([2.0, 1.0, 1.0, 3.0])
        seg = np.array([0, 0, 0, 1], dtype=np.int64)
        self.segment_left_fold_sums(data, np.array([3, 1], dtype=np.int64))
        self.masked_segment_left_fold(data, np.array([True, False, True, True]), seg, 2)
        self.segment_unique_topk_desc(data, seg, 2, 2)
        self.segment_unique_records(data.reshape(2, 2), seg[:2].copy(), 2)
        self.pack_rank_keys(np.array([[1, 2], [3, 4]], dtype=np.int64), 3, 2)
        self.filter_range(seg, 0, 1)


_CACHE: Dict[Tuple[str, int], KernelSet] = {}


def get_kernels(tier: Optional[str] = None, threads: Optional[int] = None) -> KernelSet:
    """The (cached) :class:`KernelSet` for a tier request + thread count."""
    resolved = resolve_kernel_tier(tier)
    nthreads = 1 if threads is None else int(threads)
    if nthreads < 1:
        raise BSPError(f"threads must be >= 1, got {threads!r}")
    key = (resolved, nthreads)
    kernels = _CACHE.get(key)
    if kernels is None:
        if resolved == "numba":
            from repro.bsp.kernels import compiled

            table = compiled.make_kernel_set(nthreads)
        else:
            table = {
                "segment_left_fold_sums": reference.segment_left_fold_sums,
                "masked_segment_left_fold": reference.masked_segment_left_fold,
                "segment_unique_topk_desc": reference.segment_unique_topk_desc,
                "segment_unique_records": reference.segment_unique_records,
                "pack_rank_keys": reference.pack_rank_keys,
                "filter_range": reference.filter_range,
            }
        kernels = KernelSet(resolved, nthreads, table)
        _CACHE[key] = kernels
    return kernels


__all__ = [
    "KERNEL_TIER_ENV",
    "KERNEL_TIERS",
    "KernelSet",
    "available_kernel_tiers",
    "get_kernels",
    "numba_available",
    "reference",
    "resolve_kernel_tier",
]
