"""Fault tolerance for the BSP engine: checkpoints, faults and recovery.

Pregel-style systems recover from worker failures by checkpointing vertex
state at superstep barriers and replaying from the last checkpoint; the
barrier is the natural consistency point because no messages are in flight
across it.  This module supplies every building block of that story for both
execution backends:

* :class:`Checkpoint` / :class:`CheckpointManager` — versioned snapshots of
  all mutable engine state (plane values, active sets, delivered messages,
  aggregator barrier results, runtime-model RNG state, iteration history),
  kept in memory for intra-run rewinds and optionally persisted atomically
  to disk (tmp file + ``os.replace``, manifest keyed by a config hash) for
  cross-run resume via ``EngineConfig(resume=True)``.
* :func:`snapshot_plane_slice` / :func:`restore_plane` — the per-plane-kind
  (scalar/rows/ragged/cluster-rows/object) state serialization.  Restoring
  always builds a *fresh* plane so every steady-state/epoch cache starts
  cold; stream-cache epochs are additionally versioned by the checkpoint
  (``epoch_base = version << 20``) so a stale epoch from before the rewind
  can never collide with a post-rewind epoch.
* :class:`Fault` / :class:`FaultPlan` — deterministic fault injection (kill,
  SIGSTOP, stall, poison, stream corruption) addressed by worker process and
  superstep, threaded through ``EngineConfig(fault_plan=...)`` and the CLI's
  ``--inject-fault``; unpinned processes are resolved with the seed in
  ``REPRO_FAULT_SEED``.
* :class:`BarrierFault` — the classified barrier failure (*crash* /
  *straggler* / *poison* / *corrupt*) raised by the hardened
  ``ProcessWorkerPool.receive_all``.
* :class:`RecoveryLog` — counters surfaced on ``RunResult.summary()``.

The recovery policy itself lives in ``repro.bsp.parallel.pool`` (process
backend) and ``repro.bsp.engine`` (inline resume / graceful degradation).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import BSPError, ConfigurationError
from repro.utils.rng import make_rng

MANIFEST_NAME = "manifest.json"

#: Checkpoint versions shift into the high bits of stream-cache epochs so a
#: replayed superstep can never reuse an epoch minted before the rewind.
EPOCH_VERSION_SHIFT = 20

FAULT_KINDS = ("kill", "stop", "stall", "poison", "corrupt")

#: Environment variable that seeds the resolution of faults whose target
#: process is unpinned (``--inject-fault kill:?:2``).
FAULT_SEED_ENV = "REPRO_FAULT_SEED"


class FaultInjected(BSPError):
    """Raised inside a worker by a ``poison`` fault."""


class BarrierFault(BSPError):
    """A classified failure observed at (or on the way to) a barrier.

    ``kind`` is one of ``"crash"`` (a child pid is dead), ``"straggler"``
    (alive but missed the barrier deadline), ``"poison"`` (the child raised)
    or ``"corrupt"`` (a stream failed validation).  ``processes`` lists the
    implicated worker-process indices and ``superstep`` is annotated by the
    driver with the superstep being executed when the fault surfaced.
    """

    def __init__(self, kind: str, processes: Sequence[int], message: str,
                 traceback_text: str = "", superstep: Optional[int] = None):
        super().__init__(message)
        self.kind = kind
        self.processes = list(processes)
        self.traceback_text = traceback_text
        self.superstep = superstep


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------


def fault_seed() -> int:
    """Seed used to resolve unpinned fault targets (``REPRO_FAULT_SEED``)."""

    try:
        return int(os.environ.get(FAULT_SEED_ENV, "0"))
    except ValueError:
        return 0


@dataclass(frozen=True)
class Fault:
    """One injected fault: ``kind`` hits ``process`` at ``superstep``.

    ``process=None`` means "a seeded-random worker process" and is resolved
    by :meth:`FaultPlan.resolve` before the plan ships to the children.
    ``delay_s`` only matters for ``stall`` faults (barrier delay).
    """

    kind: str
    process: Optional[int]
    superstep: int
    delay_s: float = 0.0

    def describe(self) -> str:
        target = "?" if self.process is None else str(self.process)
        text = f"{self.kind}:{target}:{self.superstep}"
        if self.delay_s:
            text += f":{self.delay_s:g}"
        return text


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected faults for one run."""

    faults: Tuple[Fault, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.faults)

    @classmethod
    def single(cls, kind: str, process: Optional[int], superstep: int,
               delay_s: float = 0.0) -> "FaultPlan":
        return cls((Fault(kind, process, superstep, delay_s),))

    @classmethod
    def parse(cls, specs: Iterable[str]) -> "FaultPlan":
        """Parse CLI specs of the form ``kind:process:superstep[:seconds]``.

        ``process`` may be ``?`` (or ``*``) for a seeded-random target.
        """

        faults = []
        for spec in specs:
            parts = str(spec).split(":")
            if len(parts) not in (3, 4):
                raise ConfigurationError(
                    f"bad fault spec {spec!r}: expected kind:process:superstep[:seconds]"
                )
            kind = parts[0].strip().lower()
            if kind not in FAULT_KINDS:
                raise ConfigurationError(
                    f"bad fault spec {spec!r}: unknown kind {kind!r} "
                    f"(choose from {', '.join(FAULT_KINDS)})"
                )
            target = parts[1].strip()
            try:
                process = None if target in ("?", "*", "") else int(target)
                superstep = int(parts[2])
                delay_s = float(parts[3]) if len(parts) == 4 else 0.0
            except ValueError as exc:
                raise ConfigurationError(
                    f"bad fault spec {spec!r}: process/superstep must be "
                    f"integers, seconds a float"
                ) from exc
            faults.append(Fault(kind, process, superstep, delay_s))
        return cls(tuple(faults))

    def resolve(self, num_processes: int) -> "FaultPlan":
        """Pin every unpinned fault to a process, seeded by REPRO_FAULT_SEED."""

        rng = make_rng(fault_seed())
        resolved = []
        for fault in self.faults:
            process = fault.process
            if process is None:
                process = int(rng.integers(num_processes))
            resolved.append(dataclasses.replace(fault, process=process % num_processes))
        return FaultPlan(tuple(resolved))

    def fault_for(self, process: int, superstep: int) -> Optional[Fault]:
        for fault in self.faults:
            if fault.process == process and fault.superstep == superstep:
                return fault
        return None

    def disarm_through(self, superstep: int) -> "FaultPlan":
        """Drop faults at or before ``superstep`` (already fired / survived)."""

        return FaultPlan(tuple(f for f in self.faults if f.superstep > superstep))


def trigger_fault(fault: Fault, process: int, superstep: int) -> None:
    """Fire a compute-phase fault inside a worker process.

    ``corrupt`` faults are not handled here — they mutate the outgoing
    stream just before extraction (see :func:`corrupt_stream`).
    """

    if fault.kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif fault.kind == "stop":
        os.kill(os.getpid(), signal.SIGSTOP)
    elif fault.kind == "stall":
        time.sleep(fault.delay_s if fault.delay_s > 0 else 0.5)
    elif fault.kind == "poison":
        raise FaultInjected(
            f"injected fault: worker process {process} poisoned at superstep {superstep}"
        )


def corrupt_stream(plane: Any, kind: str) -> bool:
    """Corrupt the plane's pending outgoing stream metadata (fault injection).

    Mutates *copies* of the event-length arrays — the originals may be views
    of shared run constants such as ``out_degrees``.  Returns ``False`` when
    the plane has no pending events to corrupt (the fault is a no-op).
    """

    if kind == "scalar":
        if not plane._ev_len:
            return False
        plane._ev_len = [np.array(lens, dtype=np.int64, copy=True)
                         for lens in plane._ev_len]
        plane._ev_len[0][0] += 7
        return True
    if not getattr(plane, "_ev_sizes", None):
        return False
    plane._ev_sizes = [np.array(sizes, dtype=np.int64, copy=True)
                       for sizes in plane._ev_sizes]
    plane._ev_sizes[0][0] = -1
    return True


# ---------------------------------------------------------------------------
# Plane snapshots
# ---------------------------------------------------------------------------


def snapshot_plane_slice(plane: Any, kind: str, lo: int, hi: int) -> Dict[str, Any]:
    """Snapshot the mutable state of ``plane`` for vertices ``[lo, hi)``.

    Taken at the barrier, *after* ``advance()`` — i.e. ``msg_count`` holds
    the delivered counts for the next superstep and the per-kind inbox
    fields hold the delivered payloads.  Everything else on a plane is a
    run constant or a cache that restore rebuilds from scratch.
    """

    snap: Dict[str, Any] = {
        "kind": kind,
        "lo": int(lo),
        "hi": int(hi),
        "halted": np.array(plane.halted[lo:hi], copy=True),
        "msg_count": np.array(plane.msg_count[lo:hi], copy=True),
    }
    if kind == "scalar":
        snap["values"] = np.array(plane.values[lo:hi], copy=True)
        snap["msg_acc"] = np.array(plane.msg_acc[lo:hi], copy=True)
    elif kind == "rows":
        snap["values"] = np.array(plane.values[lo:hi], copy=True)
        snap["acc"] = np.array(plane.acc[lo:hi], copy=True)
    elif kind in ("ragged", "cluster-rows"):
        values = plane.values
        vlo = int(values.offsets[lo])
        vhi = int(values.offsets[hi])
        snap["values_data"] = np.array(values.data[vlo:vhi], copy=True)
        snap["values_lengths"] = np.array(values.lengths[lo:hi], copy=True)
        indptr = plane.in_elem_indptr
        snap["in_data"] = np.array(plane.in_data[int(indptr[lo]):int(indptr[hi])],
                                   copy=True)
        snap["in_counts"] = np.diff(indptr[lo:hi + 1]).astype(np.int64)
        if kind == "cluster-rows":
            snap["cache"] = dict(plane.cache)
    elif kind == "object":
        snap["values"] = list(plane.values[lo:hi])
        indptr = plane.in_msg_indptr
        refs = plane.in_refs[int(indptr[lo]):int(indptr[hi])]
        pool = plane.in_pool
        snap["in_msgs"] = [pool[int(ref)] for ref in refs]
        snap["in_counts"] = np.diff(indptr[lo:hi + 1]).astype(np.int64)
    else:
        raise BSPError(f"cannot snapshot unknown plane kind {kind!r}")
    return snap


def snapshot_plane(plane: Any, kind: str) -> Dict[str, Any]:
    """Snapshot the full plane (all vertices)."""

    return snapshot_plane_slice(plane, kind, 0, len(plane.halted))


def assemble_plane_snapshot(parts: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-process slice snapshots (sorted by ``lo``) into a full one."""

    ordered = sorted(parts, key=lambda part: part["lo"])
    first = ordered[0]
    if len(ordered) == 1 and first["lo"] == 0:
        return first
    merged: Dict[str, Any] = {"kind": first["kind"], "lo": first["lo"],
                              "hi": ordered[-1]["hi"]}
    for key, value in first.items():
        if key in ("kind", "lo", "hi"):
            continue
        if key == "cache":
            merged[key] = value  # run constants, identical in every slice
        elif isinstance(value, np.ndarray):
            merged[key] = np.concatenate([part[key] for part in ordered])
        elif isinstance(value, list):
            merged[key] = [item for part in ordered for item in part[key]]
        else:
            raise BSPError(f"cannot merge snapshot field {key!r}")
    return merged


def _indptr_from_counts(counts: np.ndarray) -> np.ndarray:
    indptr = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr


def restore_plane(run: Any, kind: str, snap: Dict[str, Any]) -> Any:
    """Build a fresh plane of ``kind`` carrying the snapshotted state.

    Constructing a new plane (instead of patching the live one) is the
    point: every steady-state cache, epoch cache, reverse-group index and
    span cache starts cold, so a replayed superstep cannot observe state
    minted after the checkpoint.
    """

    if snap["kind"] != kind:
        raise BSPError(
            f"checkpoint holds a {snap['kind']!r} plane, engine expected {kind!r}"
        )
    if kind == "scalar":
        from repro.bsp.engine import _VectorizedState

        plane = _VectorizedState(run, np.array(snap["values"], copy=True))
        plane.msg_acc = np.array(snap["msg_acc"], copy=True)
    elif kind == "rows":
        from repro.bsp.ragged import RowReduceState

        plane = RowReduceState(run, np.array(snap["values"], copy=True))
        plane.acc = np.array(snap["acc"], copy=True)
    elif kind in ("ragged", "cluster-rows"):
        from repro.bsp.ragged import ClusterRowsState, Ragged, RaggedStreamState

        values = Ragged.from_lengths(np.array(snap["values_data"], copy=True),
                                     np.array(snap["values_lengths"], copy=True))
        if kind == "cluster-rows":
            plane = ClusterRowsState(run, values,
                                     run.algorithm.decode_numeric_object_values,
                                     dict(snap["cache"]))
        else:
            plane = RaggedStreamState(run, values)
        plane.in_data = np.array(snap["in_data"], copy=True)
        plane.in_elem_indptr = _indptr_from_counts(np.asarray(snap["in_counts"]))
    elif kind == "object":
        from repro.bsp.ragged import ObjectState

        plane = ObjectState(run, list(snap["values"]))
        plane.in_pool = list(snap["in_msgs"])
        plane.in_refs = np.arange(len(plane.in_pool), dtype=np.int64)
        plane.in_msg_indptr = _indptr_from_counts(np.asarray(snap["in_counts"]))
    else:
        raise BSPError(f"cannot restore unknown plane kind {kind!r}")
    plane.halted = np.array(snap["halted"], dtype=bool, copy=True)
    plane.msg_count = np.array(snap["msg_count"], dtype=np.int64, copy=True)
    return plane


# ---------------------------------------------------------------------------
# Checkpoints
# ---------------------------------------------------------------------------


def config_fingerprint(engine_config: Any, algorithm_name: str, graph_name: str,
                       num_workers: int) -> str:
    """Hash of everything a checkpoint's validity depends on.

    Deliberately *excludes* backend/processes/kernel tier/threads/trace and
    the resilience knobs themselves: all of those are bit-identical
    execution strategies, so a checkpoint written by the process backend may
    be resumed inline (that is the graceful-degradation path).  The
    superstep budget (``max_supersteps``) is also excluded -- resuming an
    interrupted run with a larger budget is the point of on-disk resume.
    """

    partitioner = getattr(engine_config, "partitioner", None)
    payload = {
        "algorithm": algorithm_name,
        "graph": graph_name,
        "num_workers": int(num_workers),
        "use_combiner": bool(getattr(engine_config, "use_combiner", True)),
        "runtime_seed": repr(getattr(engine_config, "runtime_seed", None)),
        "vectorized": bool(getattr(engine_config, "vectorized", True)),
        "partition_native": bool(getattr(engine_config, "partition_native", True)),
        "semicluster_numeric": bool(getattr(engine_config, "semicluster_numeric", True)),
        "partitioner": type(partitioner).__name__ if partitioner is not None else None,
    }
    digest = hashlib.sha256(json.dumps(payload, sort_keys=True).encode("utf-8"))
    return digest.hexdigest()[:16]


@dataclass
class Checkpoint:
    """Everything needed to replay from superstep ``superstep`` onwards."""

    version: int
    superstep: int            # the next superstep to execute
    kind: str                 # plane kind of ``plane``
    plane: Dict[str, Any]     # snapshot_plane() payload
    aggregates: Dict[str, Any]  # registry barrier results visible at ``superstep``
    rng_state: Any            # runtime-model bit-generator state
    iterations: List[Any]     # IterationProfiles for supersteps < ``superstep``
    convergence_history: List[float]
    config_hash: str

    @property
    def epoch_base(self) -> int:
        """Stream-cache epoch floor for the replay after restoring this."""

        return self.version << EPOCH_VERSION_SHIFT


class CheckpointManager:
    """Stores checkpoints in memory and (optionally) atomically on disk.

    The in-memory copy is a pickle blob so every :meth:`latest` call yields
    a fresh, independently mutable checkpoint — restoring twice (rewind,
    then rewind again after a second fault) can never alias state.  Disk
    persistence writes each checkpoint to a temp file and publishes it with
    ``os.replace``, then updates ``manifest.json`` the same way; a reader
    therefore never observes a half-written checkpoint, and a crash between
    the two replaces leaves the manifest pointing at the previous (intact)
    checkpoint.
    """

    def __init__(self, every: int = 0, directory: Optional[str] = None,
                 config_hash: str = ""):
        self.every = int(every or 0)
        self.directory = Path(directory) if directory else None
        self.config_hash = config_hash
        self._latest_blob: Optional[bytes] = None
        self._version = 0

    @property
    def enabled(self) -> bool:
        return self.every > 0

    def should_checkpoint(self, next_superstep: int) -> bool:
        return self.enabled and next_superstep > 0 and next_superstep % self.every == 0

    def next_version(self) -> int:
        self._version += 1
        return self._version

    def latest(self) -> Optional[Checkpoint]:
        if self._latest_blob is None:
            return None
        return pickle.loads(self._latest_blob)

    def store(self, checkpoint: Checkpoint) -> None:
        blob = pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL)
        self._latest_blob = blob
        self._version = max(self._version, checkpoint.version)
        if self.directory is not None:
            self._persist(checkpoint, blob)

    # -- disk persistence ---------------------------------------------------

    def _checkpoint_name(self, version: int) -> str:
        return f"checkpoint-{version:06d}.pkl"

    def _replace_into(self, path: Path, data: bytes) -> None:
        tmp = path.with_name(f".tmp-{path.name}-{os.getpid()}")
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)

    def _persist(self, checkpoint: Checkpoint, blob: bytes) -> None:
        directory = self.directory
        directory.mkdir(parents=True, exist_ok=True)
        name = self._checkpoint_name(checkpoint.version)
        self._replace_into(directory / name, blob)
        manifest = {
            "config_hash": self.config_hash,
            "latest": name,
            "version": checkpoint.version,
            "superstep": checkpoint.superstep,
            "kind": checkpoint.kind,
        }
        self._replace_into(directory / MANIFEST_NAME,
                           json.dumps(manifest, indent=2).encode("utf-8"))
        # Only after the manifest points at the new checkpoint is it safe to
        # prune older ones (and leftover temp files from interrupted writes).
        for entry in directory.iterdir():
            if entry.name in (name, MANIFEST_NAME):
                continue
            if entry.name.startswith("checkpoint-") or entry.name.startswith(".tmp-"):
                try:
                    entry.unlink()
                except OSError:
                    pass

    def load_from_disk(self) -> Checkpoint:
        """Load the manifest's latest checkpoint, validating the config hash."""

        if self.directory is None:
            raise BSPError("EngineConfig(resume=True) requires checkpoint_dir")
        manifest_path = self.directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise BSPError(f"no checkpoint manifest at {manifest_path}")
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        if self.config_hash and manifest.get("config_hash") != self.config_hash:
            raise BSPError(
                "checkpoint config hash mismatch: manifest was written by "
                f"{manifest.get('config_hash')!r}, this run hashes to "
                f"{self.config_hash!r} — refusing to resume from an "
                "incompatible configuration"
            )
        blob = (self.directory / manifest["latest"]).read_bytes()
        checkpoint = pickle.loads(blob)
        self._latest_blob = blob
        self._version = max(self._version, int(checkpoint.version))
        return checkpoint


# ---------------------------------------------------------------------------
# Recovery log
# ---------------------------------------------------------------------------


@dataclass
class RecoveryLog:
    """Counters for the resilience machinery, surfaced on ``RunResult``."""

    checkpoints: int = 0
    rewinds: int = 0
    respawns: int = 0
    degraded: bool = False
    faults: List[str] = field(default_factory=list)

    @property
    def active(self) -> bool:
        return bool(self.checkpoints or self.rewinds or self.respawns
                    or self.degraded or self.faults)

    def record_fault(self, fault: BarrierFault) -> None:
        superstep = "?" if fault.superstep is None else fault.superstep
        self.faults.append(
            f"{fault.kind} at superstep {superstep}: processes {fault.processes}"
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "checkpoints": self.checkpoints,
            "rewinds": self.rewinds,
            "respawns": self.respawns,
            "degraded": self.degraded,
            "faults": list(self.faults),
        }


__all__ = [
    "BarrierFault",
    "Checkpoint",
    "CheckpointManager",
    "EPOCH_VERSION_SHIFT",
    "FAULT_KINDS",
    "FAULT_SEED_ENV",
    "Fault",
    "FaultInjected",
    "FaultPlan",
    "MANIFEST_NAME",
    "RecoveryLog",
    "assemble_plane_snapshot",
    "config_fingerprint",
    "corrupt_stream",
    "fault_seed",
    "restore_plane",
    "snapshot_plane",
    "snapshot_plane_slice",
    "trigger_fault",
]
