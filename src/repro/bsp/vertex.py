"""The vertex-centric programming interface handed to algorithm compute code.

A :class:`VertexContext` is rebound to each vertex before its ``compute``
call (one context object per worker, to avoid allocating millions of small
objects).  It exposes the Pregel API: the vertex's current value, its outgoing
edges, message sending, vote-to-halt, aggregator access and run metadata
(superstep number, global vertex/edge counts).
"""

from __future__ import annotations

from typing import Any, Hashable, List, Tuple

VertexId = Hashable


class VertexContext:
    """Pregel-style API surface for one vertex's compute call.

    The engine owns the mutable state (values, halt votes, message buffers);
    the context only forwards calls to it.  Algorithms must use the context
    exclusively -- they never touch the engine or the graph directly, which is
    what makes the per-worker counter instrumentation exhaustive.
    """

    __slots__ = (
        "_engine",
        "_worker",
        "vertex_id",
        "superstep",
        "num_vertices",
        "num_edges",
    )

    def __init__(self, engine, worker) -> None:
        self._engine = engine
        self._worker = worker
        self.vertex_id: VertexId = None
        self.superstep: int = 0
        self.num_vertices: int = 0
        self.num_edges: int = 0

    # Called by the engine before each compute invocation.
    def _bind(self, vertex_id: VertexId, superstep: int) -> None:
        self.vertex_id = vertex_id
        self.superstep = superstep

    # ------------------------------------------------------------------ state
    @property
    def value(self) -> Any:
        """Current value of the vertex."""
        return self._engine.vertex_value(self.vertex_id)

    @value.setter
    def value(self, new_value: Any) -> None:
        self._engine.set_vertex_value(self.vertex_id, new_value)

    def out_edges(self) -> List[Tuple[VertexId, float]]:
        """Outgoing edges of the vertex as ``(target, weight)`` pairs."""
        return self._engine.out_edges(self.vertex_id)

    def out_degree(self) -> int:
        """Number of outgoing edges of the vertex."""
        return self._engine.out_degree(self.vertex_id)

    def neighbors(self) -> List[VertexId]:
        """Targets of the outgoing edges (with duplicates for parallel edges)."""
        return [target for target, _ in self.out_edges()]

    # -------------------------------------------------------------- messaging
    def send_message(self, target: VertexId, payload: Any) -> None:
        """Send ``payload`` to ``target``; delivered in the next superstep."""
        self._engine.send_message(self._worker, self.vertex_id, target, payload)

    def send_message_to_all_neighbors(self, payload: Any) -> None:
        """Send the same payload along every outgoing edge."""
        for target, _ in self.out_edges():
            self.send_message(target, payload)

    # ----------------------------------------------------------- termination
    def vote_to_halt(self) -> None:
        """Mark this vertex inactive; it is re-activated by incoming messages."""
        self._engine.vote_to_halt(self.vertex_id)

    # ------------------------------------------------------------ aggregators
    def aggregate(self, name: str, value: float) -> None:
        """Contribute ``value`` to the named global aggregator."""
        self._engine.aggregate(name, value)

    def get_aggregate(self, name: str) -> float:
        """Read the named aggregator's value from the previous barrier."""
        return self._engine.previous_aggregate(name)
