"""Global aggregators, the Pregel mechanism behind global convergence checks.

During a superstep every vertex may contribute a value to a named aggregator;
the master reduces the contributions at the barrier and makes the reduced
value available to all vertices (and to the algorithm's convergence check) in
the next superstep.  PageRank aggregates the sum of per-vertex rank deltas,
semi-clustering the number of updated semi-clusters, top-k ranking the number
of vertices that changed their rank lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.exceptions import BSPError


def _sum_reduce(accumulated: float, value: float) -> float:
    """The sum aggregator's fold step (named so it can be fast-pathed)."""
    return accumulated + value


@dataclass
class Aggregator:
    """A named commutative/associative reduction.

    Attributes
    ----------
    name:
        Aggregator identifier used by ``VertexContext.aggregate``.
    initial:
        Neutral element re-installed at the start of every superstep.
    reduce:
        Binary reduction applied to fold contributions.
    """

    name: str
    initial: float
    reduce: Callable[[float, float], float]
    _value: float = field(init=False, default=0.0)

    def reset(self) -> None:
        """Reset the running value to the neutral element."""
        self._value = self.initial

    def contribute(self, value: float) -> None:
        """Fold one contribution into the running value."""
        self._value = self.reduce(self._value, value)

    @property
    def value(self) -> float:
        """Current reduced value."""
        return self._value


def sum_aggregator(name: str) -> Aggregator:
    """Aggregator computing the sum of contributions."""
    return Aggregator(name=name, initial=0.0, reduce=_sum_reduce)


def max_aggregator(name: str) -> Aggregator:
    """Aggregator computing the maximum of contributions."""
    return Aggregator(name=name, initial=float("-inf"), reduce=max)


def min_aggregator(name: str) -> Aggregator:
    """Aggregator computing the minimum of contributions."""
    return Aggregator(name=name, initial=float("inf"), reduce=min)


class AggregatorRegistry:
    """Holds the aggregators of a run and their values from the last barrier."""

    def __init__(self, aggregators: Optional[Dict[str, Aggregator]] = None) -> None:
        self._aggregators: Dict[str, Aggregator] = dict(aggregators or {})
        self._previous: Dict[str, float] = {
            name: agg.initial for name, agg in self._aggregators.items()
        }
        for aggregator in self._aggregators.values():
            aggregator.reset()

    def register(self, aggregator: Aggregator) -> None:
        """Register an additional aggregator before the run starts."""
        self._aggregators[aggregator.name] = aggregator
        self._previous[aggregator.name] = aggregator.initial
        aggregator.reset()

    def contribute(self, name: str, value: float) -> None:
        """Fold a vertex contribution into aggregator ``name``."""
        if name not in self._aggregators:
            raise BSPError(f"unknown aggregator {name!r}")
        self._aggregators[name].contribute(value)

    def contribute_many(self, name: str, values) -> None:
        """Fold a sequence of contributions in order.

        Used by the engine's vectorized superstep path.  The fold is
        deliberately sequential (not a pairwise/tree reduction) so the
        aggregator value is bit-identical to the scalar path, which
        contributes one value per vertex in vertex order.  For sum
        aggregators the same left fold is computed in C with
        ``np.add.accumulate`` seeded with the current value -- element-wise
        sequential additions, identical IEEE rounding -- which removes the
        per-vertex Python loop from the fast path; the differential harness
        pins the equivalence.
        """
        if name not in self._aggregators:
            raise BSPError(f"unknown aggregator {name!r}")
        aggregator = self._aggregators[name]
        values = np.asarray(values, dtype=np.float64)
        if aggregator.reduce is _sum_reduce:
            if len(values):
                seeded = np.empty(len(values) + 1, dtype=np.float64)
                seeded[0] = aggregator._value
                seeded[1:] = values
                aggregator._value = float(np.add.accumulate(seeded)[-1])
            return
        for value in values.tolist():
            aggregator.contribute(value)

    def previous_value(self, name: str) -> float:
        """Value reduced at the previous barrier (what vertices can read)."""
        if name not in self._previous:
            raise BSPError(f"unknown aggregator {name!r}")
        return self._previous[name]

    def barrier(self) -> Dict[str, float]:
        """Finish the superstep: snapshot values, reset for the next superstep."""
        snapshot = {name: agg.value for name, agg in self._aggregators.items()}
        self._previous = dict(snapshot)
        for aggregator in self._aggregators.values():
            aggregator.reset()
        return snapshot

    def snapshot_previous(self) -> Dict[str, float]:
        """Barrier values visible to the next superstep (checkpoint payload)."""
        return dict(self._previous)

    def restore_previous(self, previous: Dict[str, float]) -> None:
        """Rewind to a checkpointed barrier snapshot.

        Installs the snapshotted barrier values and resets the running
        accumulators to their neutral elements — exactly the state the
        registry holds right after :meth:`barrier` returned at the
        checkpointed superstep.
        """
        self._previous = dict(previous)
        for aggregator in self._aggregators.values():
            aggregator.reset()

    def names(self):
        """Registered aggregator names."""
        return list(self._aggregators)
