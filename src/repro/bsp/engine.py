"""The BSP execution engine (Giraph stand-in).

:class:`BSPEngine` executes an :class:`repro.algorithms.base.IterativeAlgorithm`
on a :class:`repro.graph.DiGraph` over a simulated cluster and returns a
:class:`repro.bsp.result.RunResult` with per-iteration key-input-feature
profiles and simulated runtimes.

The engine follows the phase structure described in §2.2 of the paper:

* **setup phase** -- the master partitions the input over the workers,
* **read phase** -- workers load their partitions (timed from graph size),
* **superstep phase** -- repeated compute / messaging / synchronisation,
* **write phase** -- workers write the output graph.

Within each superstep every worker runs the algorithm's ``compute`` for each
of its active vertices, messages are buffered for delivery in the next
superstep (classified as local or remote depending on the destination
vertex's worker), aggregators are reduced at the barrier, and the master
evaluates the algorithm's global convergence condition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional

from repro.bsp.aggregators import AggregatorRegistry
from repro.bsp.counters import IterationProfile
from repro.bsp.master import GraphInfo, Master
from repro.bsp.messages import default_message_size
from repro.bsp.result import PhaseTimes, RunResult
from repro.bsp.runtime_model import RuntimeModel
from repro.bsp.worker import Worker
from repro.cluster.cost_profile import DEFAULT_PROFILE, CostProfile
from repro.cluster.memory import MemoryModel
from repro.cluster.spec import ClusterSpec
from repro.exceptions import BSPError
from repro.graph.digraph import DiGraph
from repro.graph.partition import BasePartitioner, HashPartitioner
from repro.utils.rng import SeedLike

VertexId = Hashable


@dataclass
class EngineConfig:
    """Execution parameters of the BSP engine.

    Attributes
    ----------
    num_workers:
        Number of worker tasks; defaults to the cluster spec's worker count.
    max_supersteps:
        Hard budget on supersteps (guards against non-converging algorithms).
    enforce_memory:
        When True the memory model raises
        :class:`repro.exceptions.OutOfMemoryError` if a worker's buffered
        messages plus graph partition exceed its allocation.
    collect_vertex_values:
        When True the final vertex values are returned in the result (needed
        when one algorithm's output feeds another, e.g. PageRank -> top-k).
    use_combiner:
        When True and the algorithm provides a combiner, messages to the same
        destination are combined in the buffers (reduces memory, not counters).
    runtime_seed:
        Seed of the runtime model's noise stream.
    """

    num_workers: Optional[int] = None
    max_supersteps: int = 200
    enforce_memory: bool = False
    collect_vertex_values: bool = False
    use_combiner: bool = False
    runtime_seed: SeedLike = None
    partitioner: BasePartitioner = field(default_factory=HashPartitioner)


class BSPEngine:
    """Executes iterative vertex-centric algorithms on the simulated cluster."""

    def __init__(
        self,
        cluster: Optional[ClusterSpec] = None,
        cost_profile: Optional[CostProfile] = None,
    ) -> None:
        self.cluster = cluster or ClusterSpec()
        self.cost_profile = cost_profile or DEFAULT_PROFILE

    # -------------------------------------------------------------- run loop
    def run(
        self,
        graph: DiGraph,
        algorithm,
        config=None,
        engine_config: Optional[EngineConfig] = None,
    ) -> RunResult:
        """Execute ``algorithm`` on ``graph`` and return the run profile."""
        engine_config = engine_config or EngineConfig()
        config = config if config is not None else algorithm.default_config()
        algorithm.validate_config(config)

        if graph.num_vertices == 0:
            raise BSPError("cannot execute an algorithm on an empty graph")

        run_graph = algorithm.prepare_graph(graph, config)
        num_workers = engine_config.num_workers or self.cluster.num_workers
        num_workers = min(num_workers, run_graph.num_vertices)

        run = _EngineRun(
            engine=self,
            graph=run_graph,
            algorithm=algorithm,
            config=config,
            engine_config=engine_config,
            num_workers=num_workers,
        )
        return run.execute(original_graph_name=graph.name)


class _EngineRun:
    """Mutable state of one engine execution (kept out of the public API)."""

    def __init__(self, engine, graph, algorithm, config, engine_config, num_workers) -> None:
        self.engine = engine
        self.graph = graph
        self.algorithm = algorithm
        self.config = config
        self.engine_config = engine_config
        self.num_workers = num_workers

        self.partitioning = engine_config.partitioner.partition(graph, num_workers)
        self.workers = [
            Worker(worker_id, self.partitioning.vertices_of(worker_id), self)
            for worker_id in range(num_workers)
        ]
        for worker in self.workers:
            worker._context.num_vertices = graph.num_vertices
            worker._context.num_edges = graph.num_edges
        self.runtime_model = RuntimeModel(engine.cost_profile, seed=engine_config.runtime_seed)
        self.memory_model = MemoryModel(engine.cluster, enforce=engine_config.enforce_memory)

        self.values: Dict[VertexId, Any] = {}
        self.halted: set = set()
        self.incoming: Dict[VertexId, List[Any]] = {}
        self.next_incoming: Dict[VertexId, List[Any]] = {}
        self.registry = AggregatorRegistry(
            {agg.name: agg for agg in algorithm.aggregators(config)}
        )
        self.message_sizer = algorithm.message_size
        self.combiner = algorithm.combiner(config) if engine_config.use_combiner else None

        # Per-superstep bookkeeping, reset in _begin_superstep.
        self._active_worker = None
        self._next_message_count = 0
        self._next_message_bytes: Dict[int, int] = {}

    # --------------------------------------------------------- vertex API
    def vertex_value(self, vertex: VertexId) -> Any:
        return self.values[vertex]

    def set_vertex_value(self, vertex: VertexId, value: Any) -> None:
        self.values[vertex] = value

    def out_edges(self, vertex: VertexId):
        return self.graph.out_edges(vertex)

    def out_degree(self, vertex: VertexId) -> int:
        return self.graph.out_degree(vertex)

    def vote_to_halt(self, vertex: VertexId) -> None:
        self.halted.add(vertex)

    def aggregate(self, name: str, value: float) -> None:
        self.registry.contribute(name, value)

    def previous_aggregate(self, name: str) -> float:
        return self.registry.previous_value(name)

    def send_message(self, worker: Worker, source: VertexId, target: VertexId, payload: Any) -> None:
        """Route a message, updating the sending worker's counters."""
        if target not in self.partitioning.assignment:
            raise BSPError(f"message sent to unknown vertex {target!r}")
        size = self.message_sizer(payload)
        counters = worker.counters
        counters.messages_sent += 1
        target_worker = self.partitioning.assignment[target]
        if target_worker == worker.worker_id:
            counters.local_messages += 1
            counters.local_message_bytes += size
        else:
            counters.remote_messages += 1
            counters.remote_message_bytes += size
        bucket = self.next_incoming.get(target)
        if bucket is None:
            self.next_incoming[target] = [payload]
        elif self.combiner is not None:
            bucket[0] = self.combiner.combine(bucket[0], payload)
        else:
            bucket.append(payload)
        self._next_message_count += 1
        self._next_message_bytes[target_worker] = (
            self._next_message_bytes.get(target_worker, 0) + size
        )

    # ----------------------------------------------------------- execution
    def execute(self, original_graph_name: str) -> RunResult:
        graph = self.graph
        algorithm = self.algorithm
        config = self.config
        engine_config = self.engine_config

        graph_info = GraphInfo(
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            name=graph.name,
        )
        master = Master(algorithm, config, graph_info, engine_config.max_supersteps)

        # Setup + read phases.
        phase_times = PhaseTimes(
            setup=self.runtime_model.setup_time(),
            read=self.runtime_model.read_time(
                graph.num_vertices, graph.num_edges, self.num_workers
            ),
        )

        # Initial vertex values.
        for vertex in graph.vertices():
            self.values[vertex] = algorithm.initial_value(vertex, graph, config)

        iterations: List[IterationProfile] = []
        convergence_history: List[float] = []
        converged = False

        for superstep in range(engine_config.max_supersteps):
            self._begin_superstep()
            for worker in self.workers:
                worker.begin_superstep(superstep)
                worker.execute_superstep(
                    superstep,
                    self.incoming,
                    self.halted,
                    lambda ctx, msgs: algorithm.compute(ctx, msgs, config),
                )

            # Memory accounting for the buffered (next-superstep) messages.
            if engine_config.enforce_memory:
                self._check_memory()

            worker_counters = [worker.counters for worker in self.workers]
            runtime, critical_worker = self.runtime_model.superstep_time(worker_counters)
            aggregates = self.registry.barrier()

            active_next = sum(
                1 for vertex in graph.vertices()
                if vertex not in self.halted or vertex in self.next_incoming
            )
            decision = master.after_superstep(
                superstep, aggregates, active_next, self._next_message_count
            )

            profile = IterationProfile(
                superstep=superstep,
                worker_counters=worker_counters,
                critical_worker=critical_worker,
                runtime=runtime,
                barrier_time=self.engine.cost_profile.barrier_overhead,
                convergence_metric=decision.convergence_metric,
                aggregates=aggregates,
            )
            iterations.append(profile)
            if decision.convergence_metric is not None:
                convergence_history.append(decision.convergence_metric)

            # Swap message buffers for the next superstep.
            self.incoming = self.next_incoming
            self.next_incoming = {}

            if decision.stop:
                converged = decision.converged
                break

        phase_times.superstep = sum(profile.runtime for profile in iterations)
        phase_times.write = self.runtime_model.write_time(graph.num_vertices, self.num_workers)

        vertex_values = dict(self.values) if engine_config.collect_vertex_values else None
        return RunResult(
            algorithm=algorithm.name,
            graph_name=original_graph_name,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            num_workers=self.num_workers,
            iterations=iterations,
            phase_times=phase_times,
            converged=converged,
            convergence_history=convergence_history,
            vertex_values=vertex_values,
            config=algorithm.config_dict(config),
        )

    # -------------------------------------------------------------- helpers
    def _begin_superstep(self) -> None:
        self._next_message_count = 0
        self._next_message_bytes = {}

    def _check_memory(self) -> None:
        for worker in self.workers:
            buffered_bytes = self._next_message_bytes.get(worker.worker_id, 0)
            buffered_messages = sum(
                len(self.next_incoming.get(vertex, ()))
                for vertex in worker.vertices
                if vertex in self.next_incoming
            )
            estimate = self.memory_model.estimate(
                num_vertices=len(worker.vertices),
                num_edges=worker.outbound_edges(self.graph),
                state_bytes=len(worker.vertices) * 64,
                buffered_messages=buffered_messages,
                buffered_message_bytes=buffered_bytes,
            )
            self.memory_model.check(worker.worker_id, estimate)
