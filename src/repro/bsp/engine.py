"""The BSP execution engine (Giraph stand-in).

:class:`BSPEngine` executes an :class:`repro.algorithms.base.IterativeAlgorithm`
on a :class:`repro.graph.DiGraph` (or a frozen
:class:`repro.graph.csr.CSRGraph`) over a simulated cluster and returns a
:class:`repro.bsp.result.RunResult` with per-iteration key-input-feature
profiles and simulated runtimes.

The engine follows the phase structure described in §2.2 of the paper:

* **setup phase** -- the master partitions the input over the workers,
* **read phase** -- workers load their partitions (timed from graph size),
* **superstep phase** -- repeated compute / messaging / synchronisation,
* **write phase** -- workers write the output graph.

Within each superstep every worker runs the algorithm's ``compute`` for each
of its active vertices, messages are buffered for delivery in the next
superstep (classified as local or remote depending on the destination
vertex's worker), aggregators are reduced at the barrier, and the master
evaluates the algorithm's global convergence condition.

Vectorized superstep fast path
------------------------------
Dispatching one Python ``compute`` call per vertex per superstep caps the
simulator at toy graph sizes.  When three conditions hold --

1. the run graph is frozen (``graph.is_frozen``; see ``DiGraph.freeze()``),
2. the algorithm implements ``compute_batch`` (PageRank and connected
   components do) with a constant ``batch_message_size``, and
3. the vertex values vectorize into a numeric NumPy array --

the engine instead processes **all active vertices of a worker in one array
pass** per superstep.  Message routing and combining are array reductions
over the CSR edge stream and the per-worker local/remote message and byte
counters are derived from the same arrays, so every
:class:`IterationProfile` feature stays *bit-identical* to the scalar path:

* edges are expanded in exactly the scalar send order (worker by worker,
  vertices in partition order, out-edges in adjacency order), so the
  floating-point accumulation order of message sums matches the scalar
  bucket-append-then-``sum`` order;
* aggregator contributions are folded sequentially in the same vertex order
  (:meth:`AggregatorRegistry.contribute_many`);
* counters are integer array reductions, exact by construction.

``tests/test_differential_engine.py`` asserts this equivalence on dozens of
seeded graphs; ``EngineConfig(vectorized=False)`` forces the scalar path.

Partition-native execution layout
---------------------------------
By default (``EngineConfig(partition_native=True)``) a batch-plane run does
not execute on the frozen graph as loaded: it executes on
``graph.repartition(partitioning)`` -- a one-time relabelling into
*partition-contiguous* vertex order (see
:class:`repro.graph.partition.PartitionLayout`).  Worker ``w`` then owns the
contiguous index range ``offsets[w]:offsets[w + 1]`` and a contiguous CSR
edge slice, which turns the per-superstep hot loops into slice arithmetic:

* activation works on array slices (:meth:`Worker.select_active_range`);
* a worker whose active set is its whole partition expands its out-edges as
  a *view* of the CSR ``targets`` array -- no ``concat_ranges`` gather;
* the local/remote message split is two range comparisons against the
  sender's offsets instead of a gather through a vertex-to-worker map;
* per-worker delivered counts/bytes for the memory model are segment sums
  over the worker boundaries, one pass for all workers.

Message reductions are deferred to the superstep barrier: the edge stream is
buffered per send call and folded once -- ``np.bincount`` for ``sum``
(element-order identical to the scalar bucket-append-then-``sum``),
destination-sort + ``reduceat`` for ``min``.  Vertex ids travel with the
permutation, so results and counters are reported exactly as before;
``partition_native=False`` keeps the legacy gather-based batch plane (the
baseline the layout benchmark compares against).

Algorithms with *variable-size* messages (semi-clustering, top-k ranking,
neighborhood estimation) ride the **ragged message plane** instead: the same
engine hooks, but payloads are offset-indexed ragged arrays (or numeric
record rows, or batch-routed Python objects) and per-message byte sizes are
reported at send time.  See :mod:`repro.bsp.ragged`; the dispatch between the
planes happens once per run in ``_build_batch_state`` based on the
algorithm's ``batch_payload``.  Semi-clustering's ``"object"`` kind has a
numeric fast path (``EngineConfig.semicluster_numeric``, default on) that
encodes semi-clusters as fixed-width numeric records so the whole fold runs
as array kernels; ``semicluster_numeric=False`` keeps the per-vertex Python
fold reachable as the differential baseline.

Sent vs. delivered messages (combiner semantics)
------------------------------------------------
Message *counters* (the paper's Table 1 features) always reflect messages
**sent**, before any combining -- that is what the sending worker pays for
and what PREDIcT extrapolates.  What occupies receiver memory is the
**delivered** buffer: with a combiner, one combined payload per destination
vertex.  The memory model is therefore fed delivered counts/bytes
(``_buffered_for``), while the counters and ``_next_message_count`` remain
pre-combining.  See :mod:`repro.bsp.messages` for the full semantics note.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional

import numpy as np

from repro.bsp.aggregators import AggregatorRegistry
from repro.bsp.counters import IterationProfile
from repro.bsp.master import GraphInfo, Master
from repro.bsp.ragged import BatchPlane, RaggedBatchContext, build_ragged_state
from repro.bsp.result import PhaseTimes, RunResult
from repro.bsp.runtime_model import RuntimeModel
from repro.bsp.worker import Worker
from repro.cluster.cost_profile import DEFAULT_PROFILE, CostProfile
from repro.cluster.memory import MemoryModel
from repro.cluster.spec import ClusterSpec
from repro.exceptions import BSPError
from repro.graph.digraph import DiGraph
from repro.graph.partition import BasePartitioner, HashPartitioner
from repro.bsp.kernels import get_kernels
from repro.obs.probes import superstep_attrs
from repro.obs.tracer import NULL_TRACER
from repro.utils.rng import SeedLike

VertexId = Hashable


@dataclass
class EngineConfig:
    """Execution parameters of the BSP engine.

    Attributes
    ----------
    num_workers:
        Number of worker tasks; defaults to the cluster spec's worker count.
    max_supersteps:
        Hard budget on supersteps (guards against non-converging algorithms).
    enforce_memory:
        When True the memory model raises
        :class:`repro.exceptions.OutOfMemoryError` if a worker's buffered
        messages plus graph partition exceed its allocation.
    collect_vertex_values:
        When True the final vertex values are returned in the result (needed
        when one algorithm's output feeds another, e.g. PageRank -> top-k).
    use_combiner:
        When True and the algorithm provides a combiner, messages to the same
        destination are combined in the buffers (reduces memory, not counters).
    runtime_seed:
        Seed of the runtime model's noise stream.
    vectorized:
        When True (default) and the graph is frozen (CSR) and the algorithm
        implements ``compute_batch``, supersteps run on the array fast path.
        Set to False to force the scalar per-vertex path (the differential
        tests do this to compare both).
    partition_native:
        When True (default) a batch-plane run executes on the
        partition-contiguous relabelling of the frozen graph
        (``graph.repartition(partitioning)``): per-worker vertex ranges and
        edge slices are contiguous, so routing and accounting run on slice
        arithmetic.  Set to False to keep the legacy gather-based batch
        plane (differential baseline; results are bit-identical either way).
    semicluster_numeric:
        When True (default) an ``"object"``-kind algorithm that provides the
        numeric-record hooks (semi-clustering) runs its batch supersteps on
        the numeric fast path (:class:`repro.bsp.ragged.ClusterRowsState`):
        payloads are fixed-width float64 records and the per-vertex Python
        fold disappears.  Set to False to keep the Python-object fold
        (:class:`repro.bsp.ragged.ObjectState`) as the differential/benchmark
        baseline; results are bit-identical either way.
    backend:
        ``"inline"`` (default) runs supersteps in this process.
        ``"process"`` executes them on the shared-memory multiprocess
        backend (:mod:`repro.bsp.parallel`): each worker process owns a
        contiguous block of BSP workers of the partition-native layout and
        message reduction is owner-sharded -- results stay bit-identical to
        the inline backend.  Requires a frozen graph, a batch-capable
        algorithm and the partition-native layout; ineligible runs fall back
        to the inline loop (same results).
    processes:
        OS processes of the ``"process"`` backend.  Defaults to
        ``min(num_workers, available cpus)``; always clamped to
        ``num_workers``.  Independent of the *simulated* worker count: the
        Table 1 profiles describe the modelled cluster either way.
    process_start_method:
        ``multiprocessing`` start method of the worker pool (default
        ``"spawn"``: slowest to start but safe everywhere; pools are
        persistent and cached on the engine, so the cost is paid once).
    trace:
        A :class:`repro.obs.Tracer` to record the run into, or None
        (default) for no tracing.  When set, the engine emits phase and
        superstep spans -- each superstep span carries the measured wall
        time *and* the modeled :class:`RuntimeModel` time plus the Table 1
        counters -- and ``RunResult.trace`` references the tracer.  When
        None every instrumentation point runs against the allocation-free
        :data:`repro.obs.NULL_TRACER`, so the hot path is untouched.  See
        ``docs/OBSERVABILITY.md``.
    kernel_tier:
        Which implementation tier the hot segment kernels run on:
        ``"numpy"`` (the pure-NumPy reference implementations), ``"numba"``
        (compiled nogil loop twins; silently falls back to ``"numpy"`` when
        numba is not installed) or ``"auto"`` (compiled when available).
        None (default) defers to the ``REPRO_KERNEL_TIER`` environment
        variable, then ``"auto"``.  Results are bit-identical across tiers
        -- the differential suite runs parametrized over them.  See
        ``docs/KERNELS.md``.
    threads:
        Thread count for the compiled tier's nogil fold kernels (default 1
        = no threading).  The numba kernels release the GIL, so a pool
        child can split one kernel invocation across threads -- processes x
        threads hybrid parallelism on big hosts.  Ignored on the numpy
        tier.  Thread splits are aligned to segment boundaries, so results
        stay bit-identical for any thread count.
    checkpoint_every:
        Checkpoint the full mutable engine state (plane values, active
        sets, delivered messages, aggregator barrier results, runtime-model
        RNG state, iteration history) every N supersteps, at the barrier (0,
        the default, disables checkpointing).  On the process backend a
        recoverable barrier fault (crashed or straggling child, corrupted
        stream) then rewinds to the last checkpoint and replays -- the
        recovered run is bit-identical to an undisturbed one.  Requires a
        batch-plane run; the scalar fallback ignores it.  See
        ``docs/RESILIENCE.md``.
    checkpoint_dir:
        Directory to additionally persist checkpoints to (atomic tmp +
        ``os.replace`` writes with a config-hash manifest); None (default)
        keeps them in memory only.  Needed for ``resume``.
    resume:
        Load the latest checkpoint from ``checkpoint_dir`` before the run
        and continue from its superstep.  The manifest's config hash must
        match this run's configuration.
    barrier_timeout_s:
        Deadline in seconds for each process-backend barrier collect.  On
        expiry child pids are probed and the failure is classified (crash /
        straggler); None (default) waits forever.
    recovery_attempts:
        Bounded rewind-and-replay retries per run on the process backend.
        When exhausted (or the pool cannot be respawned) the run degrades
        gracefully: the pool is shut down and the remaining supersteps
        replay inline from the last checkpoint.
    fault_plan:
        A :class:`repro.bsp.resilience.FaultPlan` of injected faults (kill /
        stop / stall / poison / corrupt a worker process at a superstep) for
        testing the recovery machinery; None (default) injects nothing.
    """

    num_workers: Optional[int] = None
    max_supersteps: int = 200
    enforce_memory: bool = False
    collect_vertex_values: bool = False
    use_combiner: bool = False
    runtime_seed: SeedLike = None
    partitioner: BasePartitioner = field(default_factory=HashPartitioner)
    vectorized: bool = True
    partition_native: bool = True
    semicluster_numeric: bool = True
    backend: str = "inline"
    processes: Optional[int] = None
    process_start_method: str = "spawn"
    trace: Optional[Any] = None
    kernel_tier: Optional[str] = None
    threads: Optional[int] = None
    checkpoint_every: int = 0
    checkpoint_dir: Optional[str] = None
    resume: bool = False
    barrier_timeout_s: Optional[float] = None
    recovery_attempts: int = 2
    fault_plan: Optional[Any] = None


class BSPEngine:
    """Executes iterative vertex-centric algorithms on the simulated cluster."""

    def __init__(
        self,
        cluster: Optional[ClusterSpec] = None,
        cost_profile: Optional[CostProfile] = None,
        shared_pools: Optional[Dict[tuple, Any]] = None,
    ) -> None:
        self.cluster = cluster or ClusterSpec()
        self.cost_profile = cost_profile or DEFAULT_PROFILE
        # Process-backend pools, keyed by (processes, start_method).  Pools
        # are persistent: sweeps and test suites reuse the same worker
        # processes across runs instead of paying interpreter start-up per
        # run.  close_pools() shuts them down explicitly; the processes are
        # daemonic, so an un-closed pool cannot outlive the interpreter.
        #
        # A caller owning several engines (the prediction service keeps one
        # ExperimentContext per cluster-spec/budget combination) can pass the
        # same ``shared_pools`` dict to all of them: the engines then borrow
        # one pool map instead of spawning worker processes per engine, and
        # the owner -- not the engines -- closes the map exactly once via
        # :meth:`release_pools`.
        self._pools: Dict[tuple, Any] = shared_pools if shared_pools is not None else {}
        self._owns_pools = shared_pools is None

    def process_pool(self, processes: int, start_method: str = "spawn"):
        """The cached persistent worker pool for the process backend."""
        from repro.bsp.parallel.pool import ProcessWorkerPool

        key = (processes, start_method)
        pool = self._pools.get(key)
        if pool is None or not pool.alive:
            pool = ProcessWorkerPool(processes, start_method)
            self._pools[key] = pool
        return pool

    def close_pools(self) -> None:
        """Shut down every cached process-backend pool.

        A no-op on engines borrowing a shared pool map -- the map's owner
        closes it (exactly once) with :meth:`release_pools`.
        """
        if not self._owns_pools:
            return
        self.release_pools(self._pools)

    @staticmethod
    def release_pools(pools: Dict[tuple, Any]) -> None:
        """Close every pool in ``pools`` and empty the map.

        Exception-safe: every pool's close() is attempted even when an
        earlier one fails (a worker that died mid-close must not leave the
        remaining pools' shared-memory arenas behind); the first failure is
        re-raised after the sweep.
        """
        first_error: Optional[BaseException] = None
        for pool in pools.values():
            try:
                pool.close()
            except BaseException as exc:  # keep sweeping /dev/shm
                if first_error is None:
                    first_error = exc
        pools.clear()
        if first_error is not None:
            raise first_error

    @staticmethod
    def describe_pools(pools: Dict[tuple, Any]) -> List[Dict[str, Any]]:
        """One status row per pool in a pool map (the service ``status`` verb)."""
        return [
            {
                "processes": key[0],
                "start_method": key[1],
                "alive": bool(getattr(pool, "alive", False)),
            }
            for key, pool in pools.items()
        ]

    def __enter__(self) -> "BSPEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Context-manager exit releases the cached process pools (joining
        # the worker processes and sweeping their /dev/shm arena blocks);
        # without it a CLI run that built a pool leaks it until interpreter
        # exit.  Entering is free -- pools are still created lazily.
        self.close_pools()

    # -------------------------------------------------------------- run loop
    def run(
        self,
        graph: DiGraph,
        algorithm,
        config=None,
        engine_config: Optional[EngineConfig] = None,
    ) -> RunResult:
        """Execute ``algorithm`` on ``graph`` and return the run profile."""
        engine_config = engine_config or EngineConfig()
        config = config if config is not None else algorithm.default_config()
        algorithm.validate_config(config)

        if engine_config.backend not in ("inline", "process"):
            raise BSPError(
                f"unknown execution backend {engine_config.backend!r}; "
                "available: 'inline', 'process'"
            )
        if graph.num_vertices == 0:
            raise BSPError("cannot execute an algorithm on an empty graph")

        run_graph = algorithm.prepare_graph(graph, config)
        num_workers = engine_config.num_workers or self.cluster.num_workers
        num_workers = min(num_workers, run_graph.num_vertices)

        run = _EngineRun(
            engine=self,
            graph=run_graph,
            algorithm=algorithm,
            config=config,
            engine_config=engine_config,
            num_workers=num_workers,
        )
        return run.execute(original_graph_name=graph.name)


class BatchContext(RaggedBatchContext):
    """Whole-worker view handed to an algorithm's ``compute_batch``.

    One instance is built per (worker, superstep) on the scalar-payload fast
    path.  It is the array analogue of :class:`repro.bsp.vertex.VertexContext`;
    the shared surface (``indices`` / ``out_degrees`` / ``message_counts`` /
    ``aggregate`` / ``vote_to_halt``) comes from
    :class:`repro.bsp.ragged.RaggedBatchContext`, so the semantics every
    batch plane must keep bit-identical exist once.  On top of it:

    * ``values`` -- the global vertex-value array; assign slices to update.
    * ``incoming`` -- reduced messages per vertex (via the algorithm's
      ``batch_message_reducer``); only meaningful where ``message_counts``
      is non-zero.
    * ``send_to_all_neighbors`` sends one fixed-size payload per out-edge.
    """

    __slots__ = ()

    # ------------------------------------------------------------------ state
    @property
    def values(self) -> np.ndarray:
        """Global vertex-value array (index with ``self.indices``)."""
        return self._state.values

    @property
    def incoming(self) -> np.ndarray:
        """Reduced incoming messages per vertex (this superstep's delivery)."""
        return self._state.msg_acc

    # ------------------------------------------------------------- operations
    def send_to_all_neighbors(self, payloads, mask=None) -> None:
        """Send ``payloads[i]`` along every out-edge of ``indices[i]``.

        ``payloads`` is aligned with ``self.indices``; ``mask`` (optional,
        bool, same alignment) restricts the senders.  Edge expansion follows
        the scalar send order exactly, so message accumulation and counters
        match the per-vertex path bit for bit.  The payload array is buffered
        until the superstep barrier -- treat it as immutable after sending
        (the batch algorithms always pass freshly computed arrays).
        """
        self._state.send_to_all_neighbors(self._worker, self.indices, payloads, mask)


class _VectorizedState(BatchPlane):
    """Array mirror of one engine run's mutable state (scalar payloads).

    The plane for fixed-size scalar messages; shares the superstep loop,
    activation rule and barrier bookkeeping with the ragged payload kinds
    through :class:`repro.bsp.ragged.BatchPlane`.
    """

    context_cls = BatchContext

    def __init__(self, run: "_EngineRun", values: np.ndarray) -> None:
        super().__init__(run)
        n = self.graph.num_vertices
        self.values = values
        self.message_size = int(run.algorithm.batch_message_size)
        reducer = run.algorithm.batch_message_reducer
        if reducer == "sum":
            self._neutral = values.dtype.type(0)
        elif reducer == "min":
            if values.dtype.kind == "i":
                self._neutral = np.iinfo(values.dtype).max
            else:
                self._neutral = values.dtype.type(np.inf)
        else:
            raise BSPError(f"unsupported batch_message_reducer {reducer!r}")
        self._reducer = reducer
        self.msg_acc = np.full(n, self._neutral, dtype=values.dtype)
        self.acc_next = np.full(n, self._neutral, dtype=values.dtype)
        # Per-superstep send-event buffers: the edge stream is folded once at
        # the barrier (_commit_superstep) instead of one ufunc.at per call.
        # Payloads are buffered per *sender* with their edge lengths -- the
        # per-edge expansion is one np.repeat over the concatenated stream at
        # the barrier.  _ev_espan records the CSR edge-slot span of contiguous
        # sends (None for gathered sends) -- when the spans tile the edge
        # array, the concatenated destination stream *is* the targets array.
        self._ev_dest: List[np.ndarray] = []
        self._ev_pay: List[np.ndarray] = []
        self._ev_len: List[np.ndarray] = []
        self._ev_espan: List[Optional[tuple]] = []

    @classmethod
    def try_build(cls, run: "_EngineRun") -> Optional["_VectorizedState"]:
        """Build the fast-path state, or return None when ineligible."""
        algorithm = run.algorithm
        if not (
            run.engine_config.vectorized
            and getattr(run.graph, "is_frozen", False)
            and callable(getattr(algorithm, "compute_batch", None))
            and getattr(algorithm, "batch_message_size", None) is not None
        ):
            return None
        values = np.asarray(
            [run.values[vertex] for vertex in run.batch_graph().vertices()]
        )
        if values.dtype.kind not in "if":
            # Non-numeric vertex values (e.g. string component labels) cannot
            # ride the array path; fall back to scalar compute.
            return None
        return cls(run, values)

    # -------------------------------------------------------------- messaging
    def send_to_all_neighbors(self, worker: Worker, indices, payloads, mask) -> None:
        payloads = np.asarray(payloads)
        if mask is not None:
            indices = indices[mask]
            payloads = payloads[mask]
        expanded = self._expand(indices)
        if expanded is None:
            return
        destinations, lengths, total, span, edge_span = expanded
        self._ev_dest.append(destinations)
        self._ev_pay.append(payloads)
        self._ev_len.append(lengths)
        self._ev_espan.append(edge_span)

        _, local = self._local_mask(worker, destinations, span)
        size = self.message_size
        worker.counters.record_sent(total, local, local * size, (total - local) * size)
        self.run._next_message_count += total

    def _commit_superstep(self) -> None:
        """Fold the superstep's buffered edge stream into the accumulators.

        The buffered stream concatenates the send calls in scalar send order
        (worker by worker, vertices in partition order, out-edges in
        adjacency order).  For ``sum`` the fold is one ``np.bincount`` with
        weights: bincount adds weights element by element in stream order, so
        float accumulation per destination is bit-identical to both the
        per-call ``np.add.at`` scatter it replaces and the scalar path's
        bucket-append-then-``sum``.  For ``min`` the stream is grouped by
        destination (sort + ``reduceat``); min is exact and order-insensitive.
        """
        if not self._ev_dest:
            return
        spans = self._ev_espan
        tiled = all(span is not None for span in spans) and all(
            spans[i][1] == spans[i + 1][0] for i in range(len(spans) - 1)
        )
        if tiled:
            # Contiguous sends in worker order tile one CSR edge-slot range:
            # the concatenated destination stream is a *view* of targets.
            dest = self.targets[spans[0][0] : spans[-1][1]]
        elif len(self._ev_dest) == 1:
            dest = self._ev_dest[0]
        else:
            dest = np.concatenate(self._ev_dest)
        if len(self._ev_pay) == 1:
            payloads = np.repeat(self._ev_pay[0], self._ev_len[0])
        else:
            # One per-edge expansion over the whole stream: repeat distributes
            # over concatenation, so this equals the per-call expansions in
            # exact send order.
            payloads = np.repeat(
                np.concatenate(self._ev_pay), np.concatenate(self._ev_len)
            )
        self._ev_dest = []
        self._ev_pay = []
        self._ev_len = []
        self._ev_espan = []
        full_tiled = tiled and spans[0][0] == 0 and spans[-1][1] == len(self.targets)
        self._fold_stream(dest, payloads, use_in_degrees=full_tiled)

    def _fold_stream(
        self, dest: np.ndarray, payloads: np.ndarray, use_in_degrees: bool = False
    ) -> None:
        """Fold one pre-expanded edge stream into the next-superstep buffers.

        ``dest[i]`` / ``payloads[i]`` describe one message; the stream must
        be in scalar send order.  Factored out of :meth:`_commit_superstep`
        so the process backend's owner-sharded reduction
        (:mod:`repro.bsp.parallel.protocol`) folds its range-filtered
        sub-stream through the *same* kernels -- one implementation of the
        accumulation order either way.  ``use_in_degrees`` short-circuits the
        destination counts with the cached in-degrees in the full-graph
        steady state (PageRank: every vertex sends along every edge).
        """
        n = len(self.count_next)
        if use_in_degrees:
            self.count_next += self.graph.in_degrees
        else:
            self.count_next += np.bincount(dest, minlength=n)
        if self._reducer == "sum" and self.acc_next.dtype.kind == "f":
            self.acc_next += np.bincount(dest, weights=payloads, minlength=n)
        elif self._reducer == "sum":
            np.add.at(self.acc_next, dest, payloads)
        else:
            # Non-stable sort: min is commutative and exact (it selects one
            # of the operands), so the within-group order cannot change bits.
            order = np.argsort(dest)
            sorted_dest = dest[order]
            group_starts = np.flatnonzero(
                np.concatenate(([True], sorted_dest[1:] != sorted_dest[:-1]))
            )
            reduced = np.minimum.reduceat(payloads[order], group_starts)
            unique_dest = sorted_dest[group_starts]
            self.acc_next[unique_dest] = np.minimum(self.acc_next[unique_dest], reduced)

    # ------------------------------------------------------------- accounting
    def buffered_for(self, worker: Worker):
        """(delivered_messages, delivered_bytes) buffered for ``worker``."""
        counts = self.count_next[self.own_selector(worker.worker_id)]
        if self.run.combiner is not None:
            delivered = int(np.count_nonzero(counts))
        else:
            delivered = int(counts.sum())
        return delivered, delivered * self.message_size

    def buffered_all(self):
        """Per-worker delivered ``(messages, bytes)`` arrays for all workers."""
        if self.worker_offsets is None:
            return super().buffered_all()
        if self.run.combiner is not None:
            delivered = self._segment_sums((self.count_next > 0).astype(np.int64))
        else:
            delivered = self._segment_sums(self.count_next)
        return delivered, delivered * self.message_size

    def _advance_payloads(self) -> None:
        self.msg_acc = self.acc_next
        self.acc_next = np.full(len(self.msg_acc), self._neutral, dtype=self.msg_acc.dtype)

    def export_values(self) -> Dict[VertexId, Any]:
        """Write the value array back into an id-keyed dict (scalar types)."""
        return dict(zip(self.graph.vertices(), self.values.tolist()))


def _build_batch_state(run: "_EngineRun"):
    """Pick the batch plane for ``run``'s algorithm, or None for scalar.

    Algorithms with ``batch_payload == "scalar"`` (fixed-size numeric
    messages) ride :class:`_VectorizedState`; the variable-size payload kinds
    (``"rows"`` / ``"ragged"`` / ``"object"``) ride the ragged message plane
    of :mod:`repro.bsp.ragged`.  Both builders return None when the run is
    ineligible (non-frozen graph, no ``compute_batch``, non-encodable
    values), in which case the engine falls back to per-vertex ``compute``.
    """
    if getattr(run.algorithm, "batch_payload", "scalar") != "scalar":
        return build_ragged_state(run)
    return _VectorizedState.try_build(run)


class _EngineRun:
    """Mutable state of one engine execution (kept out of the public API)."""

    def __init__(self, engine, graph, algorithm, config, engine_config, num_workers) -> None:
        self.engine = engine
        self.graph = graph
        self.algorithm = algorithm
        self.config = config
        self.engine_config = engine_config
        self.num_workers = num_workers

        self.partitioning = engine_config.partitioner.partition(graph, num_workers)
        self.workers = [
            Worker(worker_id, self.partitioning.vertices_of(worker_id), self)
            for worker_id in range(num_workers)
        ]
        for worker in self.workers:
            worker._context.num_vertices = graph.num_vertices
            worker._context.num_edges = graph.num_edges
        self.runtime_model = RuntimeModel(engine.cost_profile, seed=engine_config.runtime_seed)
        self.memory_model = MemoryModel(engine.cluster, enforce=engine_config.enforce_memory)
        # Tier-resolved hot-kernel set (see repro.bsp.kernels): bound once
        # per run so every batch plane and algorithm call site shares it.
        self.kernels = get_kernels(engine_config.kernel_tier, engine_config.threads)
        # The tracer is threaded explicitly (never via the ambient context
        # variable) so the disabled path is a plain attribute load of the
        # allocation-free null tracer.
        self.tracer = engine_config.trace if engine_config.trace is not None else NULL_TRACER

        self.values: Dict[VertexId, Any] = {}
        self.halted: set = set()
        self.incoming: Dict[VertexId, List[Any]] = {}
        self.next_incoming: Dict[VertexId, List[Any]] = {}
        self.registry = AggregatorRegistry(
            {agg.name: agg for agg in algorithm.aggregators(config)}
        )
        self.message_sizer = algorithm.message_size
        self.combiner = algorithm.combiner(config) if engine_config.use_combiner else None

        # Per-superstep bookkeeping, reset in _begin_superstep.  Counters on
        # the workers track the sent (pre-combining) stream; this dict tracks
        # delivered (post-combining) bytes per worker for the memory model.
        self._next_message_count = 0
        self._next_buffered_bytes: Dict[int, int] = {}
        self._vector: Optional[BatchPlane] = None
        self._worker_edge_counts: Optional[np.ndarray] = None
        self._batch_graph = None

        # Resilience: superstep checkpoints + recovery accounting (see
        # repro.bsp.resilience and docs/RESILIENCE.md).  The attempt token
        # versions process-backend runs so barrier collects can discard
        # stale messages from an attempt abandoned by a rewind.
        from repro.bsp.resilience import CheckpointManager, RecoveryLog, config_fingerprint

        self.checkpoint_manager = CheckpointManager(
            every=engine_config.checkpoint_every,
            directory=engine_config.checkpoint_dir,
            config_hash=config_fingerprint(
                engine_config, algorithm.name, graph.name, num_workers
            ),
        )
        self.recovery = RecoveryLog()
        self._attempt_token = 0

    def batch_graph(self):
        """The graph the batch planes execute on (cached per run).

        With ``partition_native`` enabled and a frozen graph this is the
        partition-contiguous relabelling ``graph.repartition(partitioning)``
        -- built once per run, carrying its ``partition_layout``.  Otherwise
        it is the run graph itself (legacy gather-based layout).
        """
        if self._batch_graph is None:
            graph = self.graph
            if (
                self.engine_config.partition_native
                and getattr(graph, "is_frozen", False)
                and hasattr(graph, "repartition")
            ):
                graph = graph.repartition(self.partitioning)
            self._batch_graph = graph
        return self._batch_graph

    # --------------------------------------------------------- vertex API
    def vertex_value(self, vertex: VertexId) -> Any:
        return self.values[vertex]

    def set_vertex_value(self, vertex: VertexId, value: Any) -> None:
        self.values[vertex] = value

    def out_edges(self, vertex: VertexId):
        return self.graph.out_edges(vertex)

    def out_degree(self, vertex: VertexId) -> int:
        return self.graph.out_degree(vertex)

    def vote_to_halt(self, vertex: VertexId) -> None:
        self.halted.add(vertex)

    def aggregate(self, name: str, value: float) -> None:
        self.registry.contribute(name, value)

    def previous_aggregate(self, name: str) -> float:
        return self.registry.previous_value(name)

    def send_message(self, worker: Worker, source: VertexId, target: VertexId, payload: Any) -> None:
        """Route a message, updating the sending worker's counters."""
        if target not in self.partitioning.assignment:
            raise BSPError(f"message sent to unknown vertex {target!r}")
        size = self.message_sizer(payload)
        counters = worker.counters
        counters.messages_sent += 1
        target_worker = self.partitioning.assignment[target]
        if target_worker == worker.worker_id:
            counters.local_messages += 1
            counters.local_message_bytes += size
        else:
            counters.remote_messages += 1
            counters.remote_message_bytes += size
        bucket = self.next_incoming.get(target)
        if bucket is None:
            self.next_incoming[target] = [payload]
            delivered_delta = size
        elif self.combiner is not None:
            previous = bucket[0]
            combined = self.combiner.combine(previous, payload)
            bucket[0] = combined
            # The combined payload replaces the previous one in the buffer, so
            # delivered bytes grow only by the size difference (zero for
            # fixed-size payloads such as PageRank's rank contributions).
            delivered_delta = self.message_sizer(combined) - self.message_sizer(previous)
        else:
            bucket.append(payload)
            delivered_delta = size
        self._next_message_count += 1
        self._next_buffered_bytes[target_worker] = (
            self._next_buffered_bytes.get(target_worker, 0) + delivered_delta
        )

    # ----------------------------------------------------------- execution
    def execute(self, original_graph_name: str) -> RunResult:
        graph = self.graph
        algorithm = self.algorithm
        config = self.config
        engine_config = self.engine_config
        tracer = self.tracer

        run_span = tracer.begin("engine.run")
        if tracer.enabled:
            run_span.merge({
                "algorithm": algorithm.name,
                "graph": original_graph_name,
                "num_vertices": graph.num_vertices,
                "num_edges": graph.num_edges,
                "num_workers": self.num_workers,
                "backend": engine_config.backend,
                "kernel_tier": self.kernels.tier,
                "threads": self.kernels.threads,
            })

        setup_span = tracer.begin("phase.setup")
        graph_info = GraphInfo(
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            name=graph.name,
        )
        master = Master(algorithm, config, graph_info, engine_config.max_supersteps)

        # Setup + read phases.
        phase_times = PhaseTimes(
            setup=self.runtime_model.setup_time(),
            read=self.runtime_model.read_time(
                graph.num_vertices, graph.num_edges, self.num_workers
            ),
        )
        if tracer.enabled:
            setup_span.set("modeled_s", phase_times.setup)
        setup_span.finish()

        # The read phase's measured twin is initial-value assignment plus
        # the batch-plane build (the engine's analogue of loading
        # partitions); its modeled time comes from the runtime model.
        read_span = tracer.begin("phase.read")
        for vertex in graph.vertices():
            self.values[vertex] = algorithm.initial_value(vertex, graph, config)

        # Decide scalar vs. vectorized execution once per run.
        self._vector = _build_batch_state(self)
        if tracer.enabled:
            read_span.set("modeled_s", phase_times.read)
        read_span.finish()

        # The process backend shards batch-plane supersteps over a pool of
        # OS worker processes (see repro.bsp.parallel).  It needs the
        # partition-native layout (contiguous per-worker vertex ranges are
        # the shard boundaries); any ineligible run -- scalar fallback,
        # unfrozen graph, legacy gather layout -- executes inline instead,
        # with identical results.
        if (
            engine_config.backend == "process"
            and self._vector is not None
            and self._vector.worker_offsets is not None
        ):
            from repro.bsp.parallel.pool import run_process_backend

            try:
                return run_process_backend(self, master, phase_times, original_graph_name)
            finally:
                run_span.finish()

        # Inline resilience: optionally resume from a persisted checkpoint,
        # otherwise store a baseline checkpoint so the first rewind target
        # exists before the first interval elapses.
        iterations: List[IterationProfile] = []
        convergence_history: List[float] = []
        start_superstep = 0
        manager = self.checkpoint_manager
        if engine_config.resume and self._vector is not None:
            resume_from = manager.load_from_disk()
            self._restore_checkpoint(resume_from)
            iterations = list(resume_from.iterations)
            convergence_history = list(resume_from.convergence_history)
            start_superstep = resume_from.superstep
        elif (
            manager.enabled
            and self._vector is not None
            and manager.latest() is None
        ):
            manager.store(self._build_checkpoint(0, [], []))
            self.recovery.checkpoints += 1
            tracer.counter("recovery.checkpoints")

        converged = self._superstep_loop(
            master, iterations, convergence_history, start_superstep
        )
        result = self._finish_run(
            iterations, convergence_history, converged, phase_times, original_graph_name
        )
        run_span.finish()
        return result

    def _superstep_loop(
        self,
        master: Master,
        iterations: List[IterationProfile],
        convergence_history: List[float],
        start_superstep: int = 0,
    ) -> bool:
        """Run inline supersteps from ``start_superstep`` until convergence.

        Appends to ``iterations`` / ``convergence_history`` in place (they
        may already hold the profiles replayed from a checkpoint) and
        returns whether the run converged.  Checkpoints are taken at the
        barrier, *after* the buffer swap — the stored superstep is the next
        one to execute.
        """
        engine_config = self.engine_config
        algorithm = self.algorithm
        config = self.config
        tracer = self.tracer
        manager = self.checkpoint_manager
        converged = False

        loop_span = tracer.begin("phase.superstep")
        for superstep in range(start_superstep, engine_config.max_supersteps):
            ss_span = tracer.begin("superstep")
            self._begin_superstep()
            if self._vector is not None:
                self._vector.execute_superstep(superstep)
            else:
                compute_span = tracer.begin("compute")
                for worker in self.workers:
                    worker.begin_superstep(superstep)
                    worker.execute_superstep(
                        superstep,
                        self.incoming,
                        self.halted,
                        lambda ctx, msgs: algorithm.compute(ctx, msgs, config),
                    )
                compute_span.finish()

            # Memory accounting for the buffered (next-superstep) messages.
            if engine_config.enforce_memory:
                self._check_memory()

            worker_counters = [worker.counters for worker in self.workers]
            runtime, critical_worker = self.runtime_model.superstep_time(worker_counters)

            barrier_span = tracer.begin("barrier")
            aggregates = self.registry.barrier()

            active_next = self._count_active_next()
            decision = master.after_superstep(
                superstep, aggregates, active_next, self._next_message_count
            )
            barrier_span.finish()

            profile = IterationProfile(
                superstep=superstep,
                worker_counters=worker_counters,
                critical_worker=critical_worker,
                runtime=runtime,
                barrier_time=self.engine.cost_profile.barrier_overhead,
                convergence_metric=decision.convergence_metric,
                aggregates=aggregates,
            )
            iterations.append(profile)
            if decision.convergence_metric is not None:
                convergence_history.append(decision.convergence_metric)

            # Swap message buffers for the next superstep.
            if self._vector is not None:
                self._vector.advance()
            else:
                self.incoming = self.next_incoming
                self.next_incoming = {}

            if tracer.enabled:
                ss_span.merge(
                    superstep_attrs(profile, self.kernels.tier, self.kernels.threads)
                )
            ss_span.finish()

            if decision.stop:
                converged = decision.converged
                break

            if self._vector is not None and manager.should_checkpoint(superstep + 1):
                ckpt_span = tracer.begin("recovery.checkpoint")
                manager.store(
                    self._build_checkpoint(superstep + 1, iterations, convergence_history)
                )
                self.recovery.checkpoints += 1
                tracer.counter("recovery.checkpoints")
                if tracer.enabled:
                    ckpt_span.set("superstep", superstep + 1)
                ckpt_span.finish()
        loop_span.finish()
        return converged

    def _finish_run(
        self,
        iterations: List[IterationProfile],
        convergence_history: List[float],
        converged: bool,
        phase_times: PhaseTimes,
        original_graph_name: str,
    ) -> RunResult:
        """Write phase + result assembly, shared by first run and resumes."""
        engine_config = self.engine_config
        tracer = self.tracer
        graph = self.graph

        write_span = tracer.begin("phase.write")
        if self._vector is not None:
            self.values = self._vector.export_values()

        phase_times.superstep = sum(profile.runtime for profile in iterations)
        phase_times.write = self.runtime_model.write_time(graph.num_vertices, self.num_workers)

        vertex_values = dict(self.values) if engine_config.collect_vertex_values else None
        if tracer.enabled:
            write_span.set("modeled_s", phase_times.write)
        write_span.finish()
        return RunResult(
            algorithm=self.algorithm.name,
            graph_name=original_graph_name,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            num_workers=self.num_workers,
            iterations=iterations,
            phase_times=phase_times,
            converged=converged,
            convergence_history=convergence_history,
            vertex_values=vertex_values,
            config=self.algorithm.config_dict(self.config),
            trace=tracer if tracer.enabled else None,
            kernel_tier=self.kernels.tier,
            threads=self.kernels.threads,
            recovery=self.recovery if self.recovery.active else None,
        )

    # ----------------------------------------------------------- resilience
    def _build_checkpoint(
        self,
        next_superstep: int,
        iterations: List[IterationProfile],
        convergence_history: List[float],
        plane_snapshot: Optional[Dict[str, Any]] = None,
    ):
        """Capture all mutable engine state as of the current barrier.

        ``plane_snapshot`` lets the process backend substitute the snapshot
        it assembled from the children's slices; inline runs snapshot the
        master's own plane.  Pickling at store time deep-copies the
        iteration profiles, so later supersteps cannot mutate a checkpoint.
        """
        from repro.bsp.parallel.protocol import plane_kind
        from repro.bsp.resilience import Checkpoint, snapshot_plane

        kind = plane_kind(self._vector)
        if plane_snapshot is None:
            plane_snapshot = snapshot_plane(self._vector, kind)
        manager = self.checkpoint_manager
        return Checkpoint(
            version=manager.next_version(),
            superstep=next_superstep,
            kind=kind,
            plane=plane_snapshot,
            aggregates=self.registry.snapshot_previous(),
            rng_state=self.runtime_model.snapshot_rng(),
            iterations=list(iterations),
            convergence_history=list(convergence_history),
            config_hash=manager.config_hash,
        )

    def _restore_checkpoint(self, checkpoint) -> None:
        """Rewind plane, aggregators and RNG to a checkpoint.

        Building a fresh plane resets every steady-state/epoch cache — the
        replay must not see cache state minted after the checkpoint.
        """
        from repro.bsp.resilience import restore_plane

        self._vector = restore_plane(self, checkpoint.kind, checkpoint.plane)
        self.registry.restore_previous(checkpoint.aggregates)
        self.runtime_model.restore_rng(checkpoint.rng_state)

    def _resume_inline(
        self,
        master: Master,
        phase_times: PhaseTimes,
        original_graph_name: str,
        checkpoint,
    ) -> RunResult:
        """Graceful degradation: finish a process-backend run inline.

        Called by the process backend when the pool is unrecoverable (or
        the retry budget is exhausted): rewinds to ``checkpoint`` and
        replays the remaining supersteps on the inline loop — bit-identical
        to what the pool would have produced.
        """
        self._restore_checkpoint(checkpoint)
        iterations = list(checkpoint.iterations)
        convergence_history = list(checkpoint.convergence_history)
        converged = self._superstep_loop(
            master, iterations, convergence_history, checkpoint.superstep
        )
        return self._finish_run(
            iterations, convergence_history, converged, phase_times, original_graph_name
        )

    # -------------------------------------------------------------- helpers
    def _begin_superstep(self) -> None:
        self._next_message_count = 0
        self._next_buffered_bytes = {}

    def _count_active_next(self) -> int:
        """Vertices that will execute compute in the next superstep."""
        if self._vector is not None:
            return self._vector.count_active_next()
        return sum(
            1 for vertex in self.graph.vertices()
            if vertex not in self.halted or vertex in self.next_incoming
        )

    def _buffered_for(self, worker: Worker):
        """(delivered_messages, delivered_bytes) buffered for ``worker``."""
        if self._vector is not None:
            return self._vector.buffered_for(worker)
        buffered_messages = sum(
            len(self.next_incoming.get(vertex, ()))
            for vertex in worker.vertices
            if vertex in self.next_incoming
        )
        return buffered_messages, self._next_buffered_bytes.get(worker.worker_id, 0)

    def _check_memory_batch(
        self, buffered_messages: np.ndarray, buffered_bytes: np.ndarray
    ) -> None:
        """Feed per-worker delivered arrays to the memory model.

        Shared by the inline batch path (arrays from the plane's
        ``buffered_all``) and the process backend (arrays assembled from the
        workers' ``reduced`` reports) so the accounting formula exists once.
        """
        if self._worker_edge_counts is None:
            # Constant per run: one bincount over the degree array (or pure
            # slice arithmetic on a partition-native layout).
            self._worker_edge_counts = self.partitioning.worker_outbound_edges_array(
                self.graph
            )
        vertex_counts = np.asarray(
            self.partitioning.worker_vertex_counts(), dtype=np.int64
        )
        estimates = self.memory_model.estimate_batch(
            num_vertices=vertex_counts,
            num_edges=self._worker_edge_counts,
            state_bytes=vertex_counts * 64,
            buffered_messages=buffered_messages,
            buffered_message_bytes=buffered_bytes,
        )
        self.memory_model.check_batch(estimates)

    def _check_memory(self) -> None:
        if self._vector is not None:
            # Batch path: the plane reports delivered counts/bytes for all
            # workers at once (segment sums over the worker boundaries) and
            # the memory model consumes the arrays directly.
            buffered_messages, buffered_bytes = self._vector.buffered_all()
            self._check_memory_batch(buffered_messages, buffered_bytes)
            return
        if self._worker_edge_counts is None:
            self._worker_edge_counts = self.partitioning.worker_outbound_edges_array(
                self.graph
            )
        for worker in self.workers:
            buffered_messages, buffered_bytes = self._buffered_for(worker)
            estimate = self.memory_model.estimate(
                num_vertices=len(worker.vertices),
                num_edges=int(self._worker_edge_counts[worker.worker_id]),
                state_bytes=len(worker.vertices) * 64,
                buffered_messages=buffered_messages,
                buffered_message_bytes=buffered_bytes,
            )
            self.memory_model.check(worker.worker_id, estimate)
