"""Per-worker and per-iteration counters (the paper's Table 1 features).

Every BSP worker is instrumented with counters for the key input features the
cost model may use:

=========== ==================================================================
ActVert     Number of active vertices (vertices that executed compute)
TotVert     Number of total vertices owned by the worker
LocMsg      Number of messages sent to vertices on the same worker
RemMsg      Number of messages sent to vertices on other workers
LocMsgSize  Byte count of local messages
RemMsgSize  Byte count of remote messages
AvgMsgSize  Average message size (derived, not extrapolated)
NumIter     Number of iterations (a property of the run, not of one worker)
=========== ==================================================================

:class:`WorkerCounters` is one worker in one superstep;
:class:`IterationProfile` aggregates a whole superstep: all worker counters,
the identity of the worker on the critical path, the simulated phase times and
the value of the algorithm's convergence metric at the end of the superstep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class WorkerCounters:
    """Counters recorded by one worker during one superstep."""

    worker_id: int
    superstep: int
    total_vertices: int = 0
    active_vertices: int = 0
    messages_sent: int = 0
    local_messages: int = 0
    remote_messages: int = 0
    local_message_bytes: int = 0
    remote_message_bytes: int = 0
    compute_time: float = 0.0
    messaging_time: float = 0.0

    def record_sent(
        self, total: int, local: int, local_bytes: int, remote_bytes: int
    ) -> None:
        """Fold one batched send (pre-combining stream) into the counters.

        The batch planes classify a whole send call's destinations at once --
        on a partition-native layout with range arithmetic over the worker
        offsets -- and commit the local/remote split here in one step instead
        of one counter update per message.
        """
        self.messages_sent += total
        self.local_messages += local
        self.local_message_bytes += local_bytes
        self.remote_messages += total - local
        self.remote_message_bytes += remote_bytes

    @property
    def total_messages(self) -> int:
        """Local plus remote messages sent by this worker."""
        return self.local_messages + self.remote_messages

    @property
    def total_message_bytes(self) -> int:
        """Local plus remote message bytes sent by this worker."""
        return self.local_message_bytes + self.remote_message_bytes

    @property
    def average_message_size(self) -> float:
        """Average size (bytes) of the messages sent by this worker."""
        if self.total_messages == 0:
            return 0.0
        return self.total_message_bytes / self.total_messages

    @property
    def worker_time(self) -> float:
        """Simulated time this worker spent in the superstep (before barrier)."""
        return self.compute_time + self.messaging_time

    def feature_dict(self) -> Dict[str, float]:
        """Return the Table 1 features of this worker as a dictionary."""
        return {
            "ActVert": float(self.active_vertices),
            "TotVert": float(self.total_vertices),
            "LocMsg": float(self.local_messages),
            "RemMsg": float(self.remote_messages),
            "LocMsgSize": float(self.local_message_bytes),
            "RemMsgSize": float(self.remote_message_bytes),
            "AvgMsgSize": float(self.average_message_size),
        }


@dataclass
class IterationProfile:
    """Aggregated view of one superstep (iteration) of a run."""

    superstep: int
    worker_counters: List[WorkerCounters] = field(default_factory=list)
    critical_worker: int = 0
    runtime: float = 0.0
    barrier_time: float = 0.0
    convergence_metric: Optional[float] = None
    aggregates: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------ graph level
    @property
    def active_vertices(self) -> int:
        """Active vertices across all workers."""
        return sum(c.active_vertices for c in self.worker_counters)

    @property
    def total_vertices(self) -> int:
        """Total vertices across all workers."""
        return sum(c.total_vertices for c in self.worker_counters)

    @property
    def local_messages(self) -> int:
        """Local messages across all workers."""
        return sum(c.local_messages for c in self.worker_counters)

    @property
    def remote_messages(self) -> int:
        """Remote messages across all workers."""
        return sum(c.remote_messages for c in self.worker_counters)

    @property
    def local_message_bytes(self) -> int:
        """Local message bytes across all workers."""
        return sum(c.local_message_bytes for c in self.worker_counters)

    @property
    def remote_message_bytes(self) -> int:
        """Remote message bytes across all workers."""
        return sum(c.remote_message_bytes for c in self.worker_counters)

    @property
    def total_messages(self) -> int:
        """All messages sent during the superstep."""
        return self.local_messages + self.remote_messages

    @property
    def total_message_bytes(self) -> int:
        """All message bytes sent during the superstep."""
        return self.local_message_bytes + self.remote_message_bytes

    @property
    def average_message_size(self) -> float:
        """Average message size across the whole superstep."""
        if self.total_messages == 0:
            return 0.0
        return self.total_message_bytes / self.total_messages

    # -------------------------------------------------------- critical worker
    @property
    def critical_counters(self) -> WorkerCounters:
        """Counters of the worker on the critical path."""
        return self.worker_counters[self.critical_worker]

    def graph_feature_dict(self) -> Dict[str, float]:
        """Graph-level (summed over workers) Table 1 features."""
        return {
            "ActVert": float(self.active_vertices),
            "TotVert": float(self.total_vertices),
            "LocMsg": float(self.local_messages),
            "RemMsg": float(self.remote_messages),
            "LocMsgSize": float(self.local_message_bytes),
            "RemMsgSize": float(self.remote_message_bytes),
            "AvgMsgSize": float(self.average_message_size),
        }

    def critical_feature_dict(self) -> Dict[str, float]:
        """Table 1 features of the worker on the critical path."""
        return self.critical_counters.feature_dict()
