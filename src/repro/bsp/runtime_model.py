"""Ground-truth runtime model of the simulated cluster.

This module converts the counters measured by the BSP engine into simulated
wall-clock time.  It implements the execution model described in §2.2/§3.3 of
the paper:

* each worker's superstep time is its compute time (per active vertex + per
  message sent) plus its messaging time (local/remote per-message and per-byte
  costs, from :class:`repro.cluster.network.NetworkModel`);
* the superstep time of the whole iteration is the time of the *worker on the
  critical path* (the slowest worker) plus a fixed barrier overhead;
* optional multiplicative log-normal noise models run-to-run variance so that
  PREDIcT's regression never sees a perfectly linear system;
* the setup/read/write phases are modelled from graph size.

The message and byte counters fed in here are *wire-format* quantities,
independent of how the engine represents payloads internally: a semi-cluster
message costs ``4 + sum(20 + 8 * members)`` bytes whether it travelled as a
Python tuple on the scalar path, a batch-routed object, or a padded numeric
record row on the numeric fast path (the padding never reaches the
counters).  That invariant is what lets the differential suite compare
simulated runtimes across all engine paths with ``==``.

PREDIcT never calls into this module: it only sees the resulting
(features, runtime) observations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.bsp.counters import WorkerCounters
from repro.cluster.cost_profile import CostProfile
from repro.cluster.network import NetworkModel
from repro.utils.rng import SeedLike, make_rng


@dataclass
class RuntimeModel:
    """Times supersteps and phases from measured counters."""

    profile: CostProfile
    seed: SeedLike = None

    def __post_init__(self) -> None:
        self._network = NetworkModel(self.profile)
        self._rng = make_rng(self.seed)

    # ---------------------------------------------------------------- phases
    def compute_time(self, counters: WorkerCounters) -> float:
        """CPU time of one worker's compute phase."""
        return (
            counters.active_vertices * self.profile.cost_per_active_vertex
            + counters.messages_sent * self.profile.cost_per_message_sent
        )

    def messaging_time(self, counters: WorkerCounters) -> float:
        """Time of one worker's messaging phase."""
        return self._network.messaging_time(
            counters.local_messages,
            counters.local_message_bytes,
            counters.remote_messages,
            counters.remote_message_bytes,
        )

    def superstep_time(self, worker_counters: List[WorkerCounters]) -> Tuple[float, int]:
        """Return ``(superstep_runtime, critical_worker_index)``.

        Fills in the per-worker compute/messaging times as a side effect so
        that the profiles record the full breakdown.  All workers are timed in
        one vectorized pass: the counters' local/remote message and byte split
        is gathered into arrays and handed to
        :meth:`repro.cluster.network.NetworkModel.messaging_time_batch`; the
        expressions mirror the scalar methods term for term, so every
        per-worker time is bit-identical to the scalar computation.
        """
        profile = self.profile
        active = np.asarray([c.active_vertices for c in worker_counters], dtype=np.float64)
        sent = np.asarray([c.messages_sent for c in worker_counters], dtype=np.float64)
        local_messages = np.asarray(
            [c.local_messages for c in worker_counters], dtype=np.float64
        )
        local_bytes = np.asarray(
            [c.local_message_bytes for c in worker_counters], dtype=np.float64
        )
        remote_messages = np.asarray(
            [c.remote_messages for c in worker_counters], dtype=np.float64
        )
        remote_bytes = np.asarray(
            [c.remote_message_bytes for c in worker_counters], dtype=np.float64
        )
        compute_times = (
            active * profile.cost_per_active_vertex + sent * profile.cost_per_message_sent
        )
        messaging_times = self._network.messaging_time_batch(
            local_messages, local_bytes, remote_messages, remote_bytes
        )
        worker_times = compute_times + messaging_times
        for counters, compute, messaging in zip(
            worker_counters, compute_times.tolist(), messaging_times.tolist()
        ):
            counters.compute_time = compute
            counters.messaging_time = messaging
        critical_worker = int(np.argmax(worker_times))
        runtime = float(worker_times[critical_worker]) + self.profile.barrier_overhead
        runtime *= self._noise_factor()
        return runtime, critical_worker

    def setup_time(self) -> float:
        """Fixed master/worker setup time."""
        return self.profile.setup_time

    def read_time(self, num_vertices: int, num_edges: int, num_workers: int) -> float:
        """Time for workers to read their graph partitions (parallel read)."""
        per_worker_vertices = num_vertices / max(1, num_workers)
        per_worker_edges = num_edges / max(1, num_workers)
        return (
            per_worker_vertices * self.profile.per_vertex_read_cost
            + per_worker_edges * self.profile.per_edge_read_cost
        )

    def write_time(self, num_vertices: int, num_workers: int) -> float:
        """Time for workers to write the output graph."""
        per_worker_vertices = num_vertices / max(1, num_workers)
        return per_worker_vertices * self.profile.per_vertex_write_cost

    # ----------------------------------------------------------- checkpoints
    def snapshot_rng(self):
        """Bit-generator state for checkpoints.

        The noise stream advances once per superstep, so restoring this
        state before a replay makes the rewound run draw the exact noise
        factors the undisturbed run would have drawn — a requirement for
        bit-identical recovery.
        """
        return self._rng.bit_generator.state

    def restore_rng(self, state) -> None:
        """Rewind the noise stream to a checkpointed state."""
        self._rng.bit_generator.state = state

    # -------------------------------------------------------------- internals
    def _noise_factor(self) -> float:
        if self.profile.noise_std <= 0:
            return 1.0
        return float(self._rng.lognormal(mean=0.0, sigma=self.profile.noise_std))
