"""Worker-process side of the shared-memory execution backend.

Each process owns a contiguous block of BSP workers -- and therefore a
contiguous vertex range and CSR edge slice of the partition-native layout.
Per superstep it runs the *inline engine's own kernels*
(:meth:`repro.bsp.worker.Worker.select_active_range`, the algorithm's
``compute_batch`` on the plane's context) for exactly its workers, exchanges
send streams through shared-memory arenas, and owner-reduces the messages
addressed to its range (:mod:`repro.bsp.parallel.protocol`).

The process keeps a full-size replica of the plane's state arrays but only
its owned slice is ever meaningful: activation, value updates and message
delivery all stay inside the owned range by the Pregel contract (a vertex
reads its own value and its own mailbox), which is what makes the shards
correct without any locking.

Control flow is a straight request/reply protocol over the pool's pipe --
the two round trips per superstep *are* the BSP barrier:

======================  =====================================================
child -> ``computed``   per-worker counters, aggregator contributions (in
                        contribution order), sent-message count, stream table
master -> ``table``     every process's stream table (all streams written)
child -> ``reduced``    next-superstep active count, per-worker delivered
                        messages/bytes for the owned workers, and the
                        drained trace spans of the superstep (None when
                        tracing is off)
master -> ``continue``  stop flag + the barrier's reduced aggregator values
                        + a checkpoint flag
child -> ``ckpt``       (only when the flag was set) the owned plane-state
                        slice, sent right after ``advance()`` with no ack --
                        the snapshot ships off the critical path
======================  =====================================================

Every child -> master message carries the run-attempt *token* (from the
``init`` setup) at index 2, so the master can discard stale messages from an
attempt abandoned by a recovery rewind.  An ``init`` may carry a ``resume``
payload -- a full plane snapshot plus aggregates and a checkpoint-versioned
stream-cache epoch base -- in which case the child rebuilds its plane from
the checkpoint instead of the initial plane export and replays from the
checkpointed superstep.  A ``faults`` entry (a resolved
:class:`repro.bsp.resilience.FaultPlan`) injects deterministic faults: kill
/ stop / stall / poison fire at the start of the compute phase, ``corrupt``
mutates the outgoing stream metadata just before extraction.

When the master traces (``setup["trace"]``), each child runs its own
:class:`repro.obs.Tracer` on track ``proc<index>``, records compute /
messaging / reduce spans per superstep, and ships them -- closed, as
wall-clock records -- with the ``reduced`` reply.  The master re-bases them
onto its clock and re-parents them under its superstep span
(:meth:`Tracer.adopt <repro.obs.tracer.Tracer.adopt>`).

On ``stop`` the child ships its owned slice of the final vertex values and
returns to the command loop, ready for the next run (the pool is
persistent).  Any exception is reported as an ``error`` message with the
formatted traceback; the master re-raises it as a :class:`BSPError`.
"""

from __future__ import annotations

import traceback
from typing import Dict, List, Tuple

import numpy as np

from repro.bsp.kernels import get_kernels
from repro.bsp.parallel.protocol import (
    StreamCache,
    build_child_plane,
    export_values_slice,
    extract_stream,
    reduce_streams,
    reset_delivery_buffers,
)
from repro.bsp.parallel.shared_csr import ArenaReader, SharedArena, SharedCSR
from repro.bsp.resilience import (
    corrupt_stream,
    restore_plane,
    snapshot_plane_slice,
    trigger_fault,
)
from repro.bsp.worker import Worker
from repro.exceptions import BSPError, StreamCorruptionError
from repro.graph.partition import PartitionLayout
from repro.obs.tracer import NULL_TRACER, Tracer


class _RecordingRegistry:
    """Captures aggregator contributions in order instead of folding them.

    The master owns the only real :class:`AggregatorRegistry`; it replays the
    recorded ``(name, contributions)`` events worker block by worker block --
    the same sequential fold order as the inline path, so sum aggregators
    keep their exact IEEE accumulation.  ``previous_value`` serves the values
    the master reduced at the last barrier (broadcast with ``continue``).
    """

    def __init__(self, initial: Dict[str, float]) -> None:
        self.events: List[Tuple[str, np.ndarray]] = []
        self.previous: Dict[str, float] = dict(initial)

    def contribute_many(self, name: str, values) -> None:
        self.events.append((name, np.asarray(values, dtype=np.float64)))

    def contribute(self, name: str, value: float) -> None:
        self.contribute_many(name, [value])

    def previous_value(self, name: str) -> float:
        if name not in self.previous:
            raise BSPError(f"unknown aggregator {name!r}")
        return self.previous[name]


class _ChildRun:
    """The slice of the ``_EngineRun`` surface the batch planes consume.

    Mirrors the attributes :func:`repro.bsp.engine._build_batch_state` and
    the plane/context classes read; everything else (runtime model, memory
    model, master) lives only on the master side.
    """

    def __init__(self, graph, algorithm, config, engine_config, num_workers,
                 registry) -> None:
        self.graph = graph
        self.algorithm = algorithm
        self.config = config
        self.engine_config = engine_config
        self.num_workers = num_workers
        self.registry = registry
        self.message_sizer = algorithm.message_size
        self.combiner = algorithm.combiner(config) if engine_config.use_combiner else None
        self._next_message_count = 0
        self.tracer = NULL_TRACER
        # Re-resolve the kernel tier in this process: the pickled engine
        # config carries the *request*, and each child probes numba itself
        # (hybrid parallelism: this process's folds may split over threads).
        self.kernels = get_kernels(engine_config.kernel_tier, engine_config.threads)

    def batch_graph(self):
        """The shared graph is already partition-contiguous."""
        return self.graph


def worker_main(conn, proc_index: int) -> None:
    """Entry point of one pool process: command loop over the pipe."""
    try:
        while True:
            message = conn.recv()
            if message[0] == "shutdown":
                return
            if message[0] != "init":
                # Aborts (or any stray reply) landing between runs are
                # ignored -- recovery may over-abort harmlessly.
                continue
            setup = message[1]
            try:
                _execute_run(conn, proc_index, setup)
            except StreamCorruptionError:
                conn.send((
                    "error", proc_index, setup.get("token", 0),
                    traceback.format_exc(), "corrupt",
                ))
            except Exception:
                conn.send((
                    "error", proc_index, setup.get("token", 0),
                    traceback.format_exc(), "poison",
                ))
    except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover
        return


def _execute_run(conn, proc_index: int, setup: dict) -> None:
    """Run one engine execution's superstep loop for this process's block."""
    shared = SharedCSR.attach(setup["graph"])
    arena = SharedArena()
    reader = ArenaReader()
    try:
        graph = shared.graph()
        offsets = np.asarray(setup["offsets"], dtype=np.int64)
        num_workers = int(setup["num_workers"])
        identity = np.arange(graph.num_vertices, dtype=np.int64)
        # The shipped graph is the master's repartitioned layout, so the
        # contiguous order *is* the vertex order: an identity layout.
        graph.partition_layout = PartitionLayout(
            num_workers=num_workers, offsets=offsets,
            perm=identity, inverse_perm=identity,
        )
        algorithm = setup["algorithm"]
        config = setup["config"]
        engine_config = setup["engine_config"]
        registry = _RecordingRegistry(
            {agg.name: agg.initial for agg in algorithm.aggregators(config)}
        )
        run = _ChildRun(
            graph, algorithm, config, engine_config, num_workers, registry
        )
        tracer = Tracer(track=f"proc{proc_index}") if setup.get("trace") else NULL_TRACER
        run.tracer = tracer
        kind = setup["kind"]
        token = setup.get("token", 0)
        fault_plan = setup.get("faults")
        resume = setup.get("resume")
        if resume is not None:
            # Recovery replay: rebuild the plane from the checkpoint
            # snapshot.  A fresh plane means cold steady-state caches, and
            # the checkpoint-versioned epoch base keeps any epoch minted
            # before the rewind from ever colliding with a replayed one.
            plane = restore_plane(run, kind, resume["plane"])
            registry.previous = dict(resume["aggregates"])
            start_superstep = int(resume["superstep"])
            epoch_base = int(resume.get("epoch_base", 0))
        else:
            plane = build_child_plane(run, kind, setup["plane"])
            start_superstep = 0
            epoch_base = 0
        if plane.worker_offsets is None:  # pragma: no cover - layout guard
            raise BSPError(
                f"worker process {proc_index} has no partition-native layout"
            )
        block_lo, block_hi = setup["worker_block"]
        workers = [
            Worker(w, graph.ids[int(offsets[w]) : int(offsets[w + 1])], run)
            for w in range(block_lo, block_hi)
        ]
        lo = int(offsets[block_lo])
        hi = int(offsets[block_hi])
        stream_cache = StreamCache(epoch_base=epoch_base)

        superstep = start_superstep
        while True:
            # ---- compute phase: the inline kernels, owned workers only.
            fault = (
                fault_plan.fault_for(proc_index, superstep)
                if fault_plan is not None else None
            )
            if fault is not None and fault.kind != "corrupt":
                trigger_fault(fault, proc_index, superstep)
            run._next_message_count = 0
            registry.events = []
            compute_span = tracer.begin("compute")
            if tracer.enabled:
                compute_span.set("superstep", superstep)
            for worker in workers:
                worker.begin_superstep(superstep)
                active = worker.select_active_range(
                    int(offsets[worker.worker_id]),
                    int(offsets[worker.worker_id + 1]),
                    plane.halted,
                    plane.msg_count,
                )
                if len(active):
                    batch = plane.context_cls(plane, worker, active, superstep)
                    algorithm.compute_batch(batch, config)
            compute_span.finish()
            if fault is not None and fault.kind == "corrupt":
                corrupt_stream(plane, kind)
            messaging_span = tracer.begin("messaging")
            meta, handle, local_arrays = extract_stream(plane, kind, arena, stream_cache)
            messaging_span.finish()
            conn.send((
                "computed", proc_index, token,
                [worker.counters for worker in workers],
                registry.events, run._next_message_count, (meta, handle),
            ))

            # ---- exchange barrier: all streams are on shared memory now.
            reply = conn.recv()
            if reply[0] == "abort":
                return
            tables = reply[1]
            streams = []
            live_names = set()
            for peer, (peer_meta, peer_handle) in enumerate(tables):
                if peer == proc_index:
                    streams.append((peer_meta, local_arrays))
                    continue
                if peer_handle.block_name is not None:
                    live_names.add(peer_handle.block_name)
                streams.append((peer_meta, reader.arrays(peer_handle)))

            # ---- owner reduce: fold messages addressed to [lo, hi).
            reduce_span = tracer.begin("reduce")
            reset_delivery_buffers(plane, kind)
            reduce_streams(plane, kind, streams, lo, hi, stream_cache)
            plane._commit_superstep()
            reduce_span.finish()
            reader.release_except(live_names)
            active_next = int(np.count_nonzero(
                ~plane.halted[lo:hi] | (plane.count_next[lo:hi] > 0)
            ))
            delivered = [plane.buffered_for(worker) for worker in workers]
            # Ship this superstep's closed spans with the barrier reply; the
            # master adopts them under its current superstep span.
            conn.send((
                "reduced", proc_index, token, active_next, delivered,
                tracer.drain() if tracer.enabled else None,
            ))

            # ---- master barrier: aggregates reduced, stop decided.
            reply = conn.recv()
            if reply[0] == "abort":
                return
            _, stop, previous, checkpoint_now = reply
            registry.previous = dict(previous)
            plane.advance()
            if stop:
                conn.send((
                    "values", proc_index, token,
                    (lo, hi, export_values_slice(plane, kind, lo, hi)),
                ))
                return
            if checkpoint_now:
                # Post-advance state slice -- msg_count/inboxes hold the
                # deliveries for superstep+1, exactly what a rewound replay
                # must start from.  No ack: the pipe's FIFO keeps this ahead
                # of the next "computed".
                conn.send((
                    "ckpt", proc_index, token,
                    snapshot_plane_slice(plane, kind, lo, hi),
                ))
            superstep += 1
    finally:
        reader.close()
        arena.destroy()
        shared.close()
