"""Master side of the shared-memory execution backend.

:class:`ProcessWorkerPool` owns the persistent worker processes (spawn-safe
by default: children re-import the code, nothing relies on forked state) and
the pipes to them.  A pool outlives individual engine runs -- experiment
sweeps and the differential suite reuse one pool for every run, paying the
interpreter start-up cost once; :meth:`BSPEngine.process_pool
<repro.bsp.engine.BSPEngine.process_pool>` caches pools per
``(processes, start_method)``.

:func:`run_process_backend` drives one engine execution over the pool.  It
is the process-backend twin of the superstep loop in
``_EngineRun.execute`` -- the master keeps every responsibility that defines
the run's observable profile (runtime model and its seeded noise stream,
aggregator folds in worker order, memory checks, the
:class:`~repro.bsp.master.Master` stop decision), while compute and message
reduction run sharded in the workers.  Both loops must stay semantically
identical; ``tests/test_parallel_backend.py`` enforces it field by field.

Worker-to-process mapping: BSP workers are split into ``processes``
contiguous, ascending blocks, so each process owns a contiguous vertex range
of the partition-native layout and stream order concatenates back to the
inline send order.  The simulated cluster keeps ``num_workers`` workers
regardless of the process count -- Table 1 profiles describe the modelled
cluster, not the host machine.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
from typing import List, Optional

import numpy as np

from repro.bsp.counters import IterationProfile
from repro.bsp.parallel.protocol import export_plane_init, paste_values, plane_kind
from repro.bsp.parallel.shared_csr import OWNED_SEGMENT_PREFIX, SharedCSR
from repro.bsp.parallel.worker import worker_main
from repro.bsp.result import RunResult
from repro.exceptions import BSPError
from repro.obs.probes import superstep_attrs


class ProcessWorkerPool:
    """Persistent pool of worker processes for the process backend."""

    def __init__(self, processes: int, start_method: str = "spawn") -> None:
        if processes < 1:
            raise BSPError(f"process pool needs at least one process, got {processes}")
        self.processes = processes
        self.start_method = start_method
        context = multiprocessing.get_context(start_method)
        self._procs = []
        self._conns = []
        self.alive = True
        try:
            for index in range(processes):
                parent_conn, child_conn = context.Pipe()
                proc = context.Process(
                    target=worker_main,
                    args=(child_conn, index),
                    daemon=True,
                    name=f"repro-bsp-worker-{index}",
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------- messaging
    def send(self, index: int, message) -> None:
        """Send ``message`` to process ``index``."""
        self._conns[index].send(message)

    def broadcast(self, message) -> None:
        """Send ``message`` to every process."""
        for conn in self._conns:
            conn.send(message)

    def receive_all(self, expected_tag: str) -> List[tuple]:
        """One ``expected_tag`` message per process, ordered by process index.

        A child that reports an ``error`` (or dies) fails the run: the
        formatted child traceback is re-raised here as a :class:`BSPError`
        and the pool is closed -- sibling processes may be blocked
        mid-superstep, so the run state is unrecoverable by design.
        """
        messages: List[Optional[tuple]] = [None] * self.processes
        for conn in self._conns:
            try:
                message = conn.recv()
            except (EOFError, OSError) as exc:
                self._fail()
                raise BSPError("a worker process died mid-run") from exc
            if message[0] == "error":
                self._fail()
                raise BSPError(
                    f"worker process {message[1]} failed:\n{message[2]}"
                )
            if message[0] != expected_tag:
                self._fail()
                raise BSPError(
                    f"protocol error: expected {expected_tag!r}, got {message[0]!r}"
                )
            messages[message[1]] = message
        return messages  # type: ignore[return-value]

    def _fail(self) -> None:
        """Tear the pool down after a protocol failure.

        Surviving workers may be blocked mid-superstep waiting for a reply;
        ``abort`` unblocks them onto their command loop first, so ``close``'s
        shutdown message is read as a command (clean exit) rather than as a
        bogus protocol reply that would only die at the join timeout.
        """
        self.abort()
        self.close()

    # -------------------------------------------------------------- lifecycle
    def abort(self) -> None:
        """Best-effort unblock of children waiting on a reply."""
        for conn in self._conns:
            try:
                conn.send(("abort",))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass

    def close(self) -> None:
        """Shut the pool down; blocks briefly, then terminates stragglers.

        After the children are joined, any ``repro_shm_<pid>_*`` arena block
        one of them left behind is unlinked.  A child that died abruptly
        (SIGKILL, OOM) cannot run its own ``SharedArena.destroy``; its
        blocks are identifiable by pid precisely because the arenas use
        deterministic names -- see :mod:`repro.bsp.parallel.shared_csr`.
        """
        if not self.alive:
            return
        self.alive = False
        for conn in self._conns:
            try:
                conn.send(("shutdown",))
            except (BrokenPipeError, OSError):
                pass
        child_pids = [proc.pid for proc in self._procs if proc.pid is not None]
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - hung child guard
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            conn.close()
        self._procs = []
        self._conns = []
        _sweep_owned_segments(child_pids)


def _sweep_owned_segments(pids) -> None:
    """Unlink ``repro_shm_<pid>_*`` blocks left by (now-joined) children."""
    shm_dir = "/dev/shm"
    if not pids or not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return
    prefixes = tuple(f"{OWNED_SEGMENT_PREFIX}{pid}_" for pid in pids)
    for entry in os.listdir(shm_dir):
        if entry.startswith(prefixes):
            try:
                os.unlink(os.path.join(shm_dir, entry))
            except FileNotFoundError:  # pragma: no cover - concurrent cleanup
                pass


def available_cores() -> int:
    """CPU cores this process may schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def default_process_count(num_workers: int) -> int:
    """Processes used when ``EngineConfig.processes`` is None."""
    return max(1, min(num_workers, available_cores()))


def run_process_backend(run, master, phase_times, original_graph_name: str) -> RunResult:
    """Execute ``run``'s superstep loop on the process pool.

    ``run`` arrives with its batch plane built (``run._vector``) on the
    partition-native layout; this function mirrors the inline loop of
    ``_EngineRun.execute`` with compute and reduction delegated to the pool.
    """
    engine_config = run.engine_config
    plane = run._vector
    kind = plane_kind(plane)
    num_workers = run.num_workers
    processes = engine_config.processes or default_process_count(num_workers)
    processes = max(1, min(int(processes), num_workers))
    pool = run.engine.process_pool(processes, engine_config.process_start_method)

    tracer = run.tracer
    graph = run.batch_graph()
    offsets = np.asarray(graph.partition_layout.offsets, dtype=np.int64)
    blocks = np.array_split(np.arange(num_workers, dtype=np.int64), processes)
    shared = SharedCSR.export(graph)
    iterations: List[IterationProfile] = []
    convergence_history: List[float] = []
    converged = False
    try:
        # The tracer cannot travel to the children (it is live, unpicklable
        # state); they get a stripped config plus a ``trace`` flag and run
        # their own per-process tracers, drained back at the barrier.
        child_config = engine_config
        if engine_config.trace is not None:
            child_config = dataclasses.replace(engine_config, trace=None)
        setup = {
            "graph": shared.handle,
            "offsets": offsets,
            "num_workers": num_workers,
            "algorithm": run.algorithm,
            "config": run.config,
            "engine_config": child_config,
            "plane": export_plane_init(plane, kind),
            "kind": kind,
            "trace": tracer.enabled,
        }
        loop_span = tracer.begin("phase.superstep")
        # Children start computing superstep 0 the moment "init" lands, so
        # the first superstep span opens before the sends: every adopted
        # child span must fall inside the master span it is re-parented to.
        ss_span = tracer.begin("superstep")
        for index, block in enumerate(blocks):
            pool.send(index, ("init", {
                **setup, "worker_block": (int(block[0]), int(block[-1]) + 1),
            }))

        for superstep in range(engine_config.max_supersteps):
            run._begin_superstep()
            exchange_span = tracer.begin("exchange")
            computed = pool.receive_all("computed")
            tables = []
            for message in computed:  # process order == ascending worker blocks
                _, _, counters, aggregator_events, sent, table = message
                for worker_counters in counters:
                    run.workers[worker_counters.worker_id].counters = worker_counters
                for name, contributions in aggregator_events:
                    run.registry.contribute_many(name, contributions)
                run._next_message_count += sent
                tables.append(table)
            pool.broadcast(("table", tables))
            exchange_span.finish()

            reduce_span = tracer.begin("reduce")
            reduced = pool.receive_all("reduced")
            active_next = 0
            delivered_messages = np.zeros(num_workers, dtype=np.int64)
            delivered_bytes = np.zeros(num_workers, dtype=np.int64)
            for message, block in zip(reduced, blocks):
                _, _, block_active, delivered, child_records = message
                active_next += block_active
                for worker_id, (messages_, bytes_) in zip(block.tolist(), delivered):
                    delivered_messages[worker_id] = messages_
                    delivered_bytes[worker_id] = bytes_
                if child_records:
                    tracer.adopt(child_records, parent_id=ss_span.span_id)
            reduce_span.finish()
            if engine_config.enforce_memory:
                run._check_memory_batch(delivered_messages, delivered_bytes)

            worker_counters = [run.workers[w].counters for w in range(num_workers)]
            runtime, critical_worker = run.runtime_model.superstep_time(worker_counters)
            barrier_span = tracer.begin("barrier")
            aggregates = run.registry.barrier()
            decision = master.after_superstep(
                superstep, aggregates, active_next, run._next_message_count
            )
            barrier_span.finish()
            profile = IterationProfile(
                superstep=superstep,
                worker_counters=worker_counters,
                critical_worker=critical_worker,
                runtime=runtime,
                barrier_time=run.engine.cost_profile.barrier_overhead,
                convergence_metric=decision.convergence_metric,
                aggregates=aggregates,
            )
            iterations.append(profile)
            if decision.convergence_metric is not None:
                convergence_history.append(decision.convergence_metric)

            # Close superstep S before the continue broadcast releases the
            # children into superstep S+1, and open span S+1 first -- the
            # staggering keeps child compute inside the master's span.
            if tracer.enabled:
                ss_span.merge(
                    superstep_attrs(profile, run.kernels.tier, run.kernels.threads)
                )
            ss_span.finish()
            if not decision.stop:
                ss_span = tracer.begin("superstep")
            pool.broadcast(("continue", decision.stop, aggregates))
            if decision.stop:
                converged = decision.converged
                break
        ss_span.finish()  # no-op unless the superstep budget ran out
        loop_span.finish()

        write_span = tracer.begin("phase.write")
        values_messages = pool.receive_all("values")
        paste_values(plane, kind, [message[2] for message in values_messages])
        run.values = plane.export_values()
    except BaseException:
        # Children may be blocked mid-protocol; the pool is not salvageable.
        # BaseException on purpose: a KeyboardInterrupt mid-run must also
        # tear the pool down (joining the children and sweeping their arena
        # blocks), or the interrupted session leaks /dev/shm segments.
        pool.abort()
        pool.close()
        raise
    finally:
        shared.close()
        shared.unlink()

    phase_times.superstep = sum(profile.runtime for profile in iterations)
    phase_times.write = run.runtime_model.write_time(
        run.graph.num_vertices, run.num_workers
    )
    if tracer.enabled:
        write_span.set("modeled_s", phase_times.write)
    write_span.finish()
    vertex_values = dict(run.values) if engine_config.collect_vertex_values else None
    return RunResult(
        algorithm=run.algorithm.name,
        graph_name=original_graph_name,
        num_vertices=run.graph.num_vertices,
        num_edges=run.graph.num_edges,
        num_workers=run.num_workers,
        iterations=iterations,
        phase_times=phase_times,
        converged=converged,
        convergence_history=convergence_history,
        vertex_values=vertex_values,
        config=run.algorithm.config_dict(run.config),
        trace=tracer if tracer.enabled else None,
        kernel_tier=run.kernels.tier,
        threads=run.kernels.threads,
    )
