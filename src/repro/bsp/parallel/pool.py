"""Master side of the shared-memory execution backend.

:class:`ProcessWorkerPool` owns the persistent worker processes (spawn-safe
by default: children re-import the code, nothing relies on forked state) and
the pipes to them.  A pool outlives individual engine runs -- experiment
sweeps and the differential suite reuse one pool for every run, paying the
interpreter start-up cost once; :meth:`BSPEngine.process_pool
<repro.bsp.engine.BSPEngine.process_pool>` caches pools per
``(processes, start_method)``.

:func:`run_process_backend` drives one engine execution over the pool.  It
is the process-backend twin of the superstep loop in
``_EngineRun.execute`` -- the master keeps every responsibility that defines
the run's observable profile (runtime model and its seeded noise stream,
aggregator folds in worker order, memory checks, the
:class:`~repro.bsp.master.Master` stop decision), while compute and message
reduction run sharded in the workers.  Both loops must stay semantically
identical; ``tests/test_parallel_backend.py`` enforces it field by field.

Worker-to-process mapping: BSP workers are split into ``processes``
contiguous, ascending blocks, so each process owns a contiguous vertex range
of the partition-native layout and stream order concatenates back to the
inline send order.  The simulated cluster keeps ``num_workers`` workers
regardless of the process count -- Table 1 profiles describe the modelled
cluster, not the host machine.

Fault tolerance (see ``docs/RESILIENCE.md``): every barrier collect can run
against a deadline (``EngineConfig.barrier_timeout_s``); on expiry (or a
closed pipe, or a child-reported error) the failure is classified into a
:class:`~repro.bsp.resilience.BarrierFault` -- *crash* (dead pid),
*straggler* (alive but late), *poison* (child raised) or *corrupt* (stream
validation failed).  With checkpointing enabled
(``EngineConfig.checkpoint_every``) :func:`run_process_backend` recovers
from crash/straggler/corrupt faults: kill stragglers, respawn dead
children, rewind everyone to the last checkpoint and replay -- bounded by
``EngineConfig.recovery_attempts``, after which the run degrades gracefully
onto the inline loop.  Every run attempt carries a *token* that stamps all
child messages, so a collect never confuses a stale message from an
abandoned attempt with a live one.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
from multiprocessing.connection import wait as _connection_wait
from typing import List, Optional, Sequence

import numpy as np

from repro.bsp.counters import IterationProfile
from repro.bsp.parallel.protocol import export_plane_init, paste_values, plane_kind
from repro.bsp.parallel.shared_csr import OWNED_SEGMENT_PREFIX, SharedCSR
from repro.bsp.parallel.worker import worker_main
from repro.bsp.resilience import BarrierFault, assemble_plane_snapshot
from repro.bsp.result import RunResult
from repro.exceptions import BSPError
from repro.obs.probes import superstep_attrs

#: Child->master message tags that carry the run-attempt token at index 2.
_TOKENED_TAGS = ("computed", "reduced", "values", "ckpt", "error")


class ProcessWorkerPool:
    """Persistent pool of worker processes for the process backend."""

    # Join/terminate/kill escalation timeouts (seconds).  Instance
    # attributes so tests exercising the escalation can shrink them.
    JOIN_TIMEOUT = 2.0
    TERMINATE_TIMEOUT = 1.0
    KILL_TIMEOUT = 5.0

    def __init__(self, processes: int, start_method: str = "spawn") -> None:
        if processes < 1:
            raise BSPError(f"process pool needs at least one process, got {processes}")
        self.processes = processes
        self.start_method = start_method
        self._context = multiprocessing.get_context(start_method)
        self._procs = []
        self._conns = []
        self.alive = True
        try:
            for index in range(processes):
                self._procs.append(None)
                self._conns.append(None)
                self._spawn(index)
        except Exception:
            self.close()
            raise

    def _spawn(self, index: int) -> None:
        """(Re)start worker process ``index`` with a fresh pipe."""
        parent_conn, child_conn = self._context.Pipe()
        proc = self._context.Process(
            target=worker_main,
            args=(child_conn, index),
            daemon=True,
            name=f"repro-bsp-worker-{index}",
        )
        proc.start()
        child_conn.close()
        self._procs[index] = proc
        self._conns[index] = parent_conn

    # ------------------------------------------------------------- messaging
    def send(self, index: int, message) -> None:
        """Send ``message`` to process ``index``."""
        self._conns[index].send(message)

    def broadcast(self, message) -> None:
        """Send ``message`` to every process."""
        for conn in self._conns:
            conn.send(message)

    def receive_all(
        self,
        expected_tag: str,
        token: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> List[tuple]:
        """One ``expected_tag`` message per process, ordered by process index.

        With ``token`` set, messages stamped with a different run-attempt
        token are silently discarded (they belong to an attempt abandoned by
        a recovery rewind).  With ``timeout`` set, the whole collect must
        finish within the deadline; on expiry the missing children's pids
        are probed and a :class:`BarrierFault` classifies the failure as
        *crash* (dead) or *straggler* (alive but late).  A closed pipe is a
        *crash*; a child-reported error is *poison* (the child raised) or
        *corrupt* (stream validation failed).  :class:`BarrierFault` leaves
        the pool open -- the caller decides between recovery and teardown.
        A tag mismatch is a protocol bug, not a fault: it still tears the
        pool down and raises a plain :class:`BSPError`.
        """
        messages: List[Optional[tuple]] = [None] * self.processes
        pending = {conn: index for index, conn in enumerate(self._conns)}
        deadline = None if timeout is None else time.monotonic() + timeout
        while pending:
            conns = list(pending)
            if deadline is None:
                ready = _connection_wait(conns)
            else:
                remaining = deadline - time.monotonic()
                ready = _connection_wait(conns, timeout=remaining) if remaining > 0 else []
                if not ready:
                    raise self._classify_timeout(pending, timeout)
            for conn in ready:
                index = pending[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError) as exc:
                    raise BarrierFault(
                        "crash",
                        [index],
                        f"a worker process died mid-run (process {index})",
                    ) from exc
                if (
                    token is not None
                    and message[0] in _TOKENED_TAGS
                    and message[2] != token
                ):
                    continue  # stale message from an abandoned attempt
                if message[0] == "error":
                    fault_kind = message[4] if len(message) > 4 else "poison"
                    raise BarrierFault(
                        fault_kind,
                        [message[1]],
                        f"worker process {message[1]} failed:\n{message[3]}",
                        traceback_text=message[3],
                    )
                if message[0] != expected_tag:
                    self._fail()
                    raise BSPError(
                        f"protocol error: expected {expected_tag!r}, got {message[0]!r}"
                    )
                messages[message[1]] = message
                del pending[conn]
        return messages  # type: ignore[return-value]

    def _classify_timeout(self, pending, timeout: float) -> BarrierFault:
        """Probe the pids of the missing children and classify the failure."""
        crashed = sorted(
            index for index in pending.values() if not self._procs[index].is_alive()
        )
        if crashed:
            return BarrierFault(
                "crash",
                crashed,
                f"a worker process died mid-run (processes {crashed} dead at the barrier)",
            )
        stragglers = sorted(pending.values())
        return BarrierFault(
            "straggler",
            stragglers,
            f"worker processes {stragglers} missed the barrier deadline ({timeout:g}s)",
        )

    def _fail(self) -> None:
        """Tear the pool down after a protocol failure.

        Surviving workers may be blocked mid-superstep waiting for a reply;
        ``abort`` unblocks them onto their command loop first, so ``close``'s
        shutdown message is read as a command (clean exit) rather than as a
        bogus protocol reply that would only die at the join timeout.
        """
        self.abort()
        self.close()

    # -------------------------------------------------------------- lifecycle
    def abort(self) -> None:
        """Best-effort unblock of children waiting on a reply."""
        for conn in self._conns:
            try:
                conn.send(("abort",))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass

    def force_kill(self, indices: Sequence[int]) -> None:
        """Terminate (escalating to SIGKILL) the given worker processes.

        SIGTERM cannot end a SIGSTOP-ped process (the signal stays queued
        while it is stopped), so the escalation to ``kill()`` is what makes
        straggler recovery -- and :meth:`close` -- reliable against stopped
        or wedged children.
        """
        for index in indices:
            proc = self._procs[index]
            if proc is None:
                continue
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=self.TERMINATE_TIMEOUT)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=self.KILL_TIMEOUT)

    def respawn(self, indices: Sequence[int]) -> None:
        """Replace dead worker processes with fresh ones (same indices).

        Joins the corpse, sweeps the ``repro_shm_<pid>_*`` arena blocks it
        could not clean up itself, closes the dead pipe and spawns a
        replacement.  Raises :class:`BSPError` if a replacement fails to
        come up -- the caller then degrades to the inline backend.
        """
        for index in indices:
            proc = self._procs[index]
            old_pid = proc.pid if proc is not None else None
            if proc is not None:
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.kill()
                proc.join(timeout=self.KILL_TIMEOUT)
                if proc.is_alive():
                    raise BSPError(f"worker process {index} cannot be reaped for respawn")
            try:
                self._conns[index].close()
            except OSError:  # pragma: no cover
                pass
            if old_pid is not None:
                _sweep_owned_segments([old_pid])
            try:
                self._spawn(index)
            except Exception as exc:
                raise BSPError(f"failed to respawn worker process {index}") from exc

    def close(self) -> None:
        """Shut the pool down; blocks briefly, then terminates stragglers.

        After the children are joined, any ``repro_shm_<pid>_*`` arena block
        one of them left behind is unlinked.  A child that died abruptly
        (SIGKILL, OOM) cannot run its own ``SharedArena.destroy``; its
        blocks are identifiable by pid precisely because the arenas use
        deterministic names -- see :mod:`repro.bsp.parallel.shared_csr`.

        A child that survives ``terminate()`` (e.g. one injected with
        SIGSTOP, which queues SIGTERM without delivering it) is escalated
        to ``kill()`` -- the pool never abandons a live child as a zombie.
        """
        if not self.alive:
            return
        self.alive = False
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send(("shutdown",))
            except (BrokenPipeError, OSError):
                pass
        child_pids = [
            proc.pid for proc in self._procs if proc is not None and proc.pid is not None
        ]
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=self.JOIN_TIMEOUT)
            if proc.is_alive():  # pragma: no cover - hung child guard
                proc.terminate()
                proc.join(timeout=self.TERMINATE_TIMEOUT)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=self.KILL_TIMEOUT)
        for conn in self._conns:
            if conn is not None:
                conn.close()
        self._procs = []
        self._conns = []
        _sweep_owned_segments(child_pids)


def _sweep_owned_segments(pids) -> None:
    """Unlink ``repro_shm_<pid>_*`` blocks left by (now-joined) children."""
    shm_dir = "/dev/shm"
    if not pids or not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return
    prefixes = tuple(f"{OWNED_SEGMENT_PREFIX}{pid}_" for pid in pids)
    for entry in os.listdir(shm_dir):
        if entry.startswith(prefixes):
            try:
                os.unlink(os.path.join(shm_dir, entry))
            except FileNotFoundError:  # pragma: no cover - concurrent cleanup
                pass


def available_cores() -> int:
    """CPU cores this process may schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def default_process_count(num_workers: int) -> int:
    """Processes used when ``EngineConfig.processes`` is None."""
    return max(1, min(num_workers, available_cores()))


def _recover_pool(pool: ProcessWorkerPool, fault: BarrierFault) -> List[int]:
    """Bring the pool back to a clean command-loop state after a fault.

    Stragglers are presumed wedged and force-killed (SIGTERM escalating to
    SIGKILL -- a stopped child only dies to the latter).  Every dead slot is
    then respawned with a fresh pipe, and survivors are aborted back onto
    their command loop (an ``abort`` read at the command loop is ignored, so
    over-aborting is harmless).  Returns the indices respawned.  Raises when
    a replacement cannot be spawned -- the caller degrades inline.
    """
    if fault.kind == "straggler":
        pool.force_kill(fault.processes)
    # The fault's own processes are dead by classification (crash) or by the
    # force-kill above (straggler) -- the ``is_alive`` sweep alone is not
    # enough, because a SIGKILLed child's pipe reports EOF a beat before the
    # process becomes waitable, so the probe can still say "alive".
    dead = set(fault.processes) if fault.kind in ("crash", "straggler") else set()
    dead.update(
        index
        for index, proc in enumerate(pool._procs)
        if proc is None or not proc.is_alive()
    )
    dead = sorted(dead)
    # Unblock survivors *before* respawning so the abort cannot land on a
    # fresh replacement's pipe.
    pool.abort()
    if dead:
        pool.respawn(dead)
    return dead


def run_process_backend(run, master, phase_times, original_graph_name: str) -> RunResult:
    """Execute ``run``'s superstep loop on the process pool.

    ``run`` arrives with its batch plane built (``run._vector``) on the
    partition-native layout; this function mirrors the inline loop of
    ``_EngineRun.execute`` with compute and reduction delegated to the pool.

    With checkpointing enabled this is also the recovery driver: each call
    to :func:`_drive_attempt` is one run attempt; a recoverable
    :class:`BarrierFault` rewinds to the last checkpoint, heals the pool and
    retries (bounded by ``EngineConfig.recovery_attempts``), and an
    unrecoverable pool degrades onto the inline loop -- all paths produce a
    result bit-identical to an undisturbed run.
    """
    engine_config = run.engine_config
    plane = run._vector
    kind = plane_kind(plane)
    num_workers = run.num_workers
    processes = engine_config.processes or default_process_count(num_workers)
    processes = max(1, min(int(processes), num_workers))
    pool = run.engine.process_pool(processes, engine_config.process_start_method)

    tracer = run.tracer
    recovery = run.recovery
    manager = run.checkpoint_manager
    graph = run.batch_graph()
    offsets = np.asarray(graph.partition_layout.offsets, dtype=np.int64)
    blocks = np.array_split(np.arange(num_workers, dtype=np.int64), processes)

    fault_plan = None
    if engine_config.fault_plan is not None:
        fault_plan = engine_config.fault_plan.resolve(processes)

    shared = SharedCSR.export(graph)
    try:
        resume_from = None
        if engine_config.resume:
            resume_from = manager.load_from_disk()
        elif manager.enabled and manager.latest() is None:
            # Baseline checkpoint from the master's own (untouched) plane:
            # a rewind before the first interval lands on the initial state.
            manager.store(run._build_checkpoint(0, [], []))
            recovery.checkpoints += 1
            tracer.counter("recovery.checkpoints")

        attempts_left = max(0, int(engine_config.recovery_attempts))
        while True:
            run._attempt_token += 1
            try:
                return _drive_attempt(
                    run, master, pool, phase_times, original_graph_name,
                    shared, offsets, blocks, kind, fault_plan, resume_from,
                )
            except BarrierFault as fault:
                recovery.record_fault(fault)
                recoverable = manager.enabled and fault.kind in (
                    "crash", "straggler", "corrupt",
                )
                if not recoverable:
                    # Poison (the algorithm raised) would raise again on
                    # replay; faults without checkpointing have no rewind
                    # target.  Either way the pool is not salvageable.
                    pool.abort()
                    pool.close()
                    raise
                checkpoint = manager.latest()
                rewind_span = tracer.begin("recovery.rewind")
                recovery.rewinds += 1
                tracer.counter("recovery.rewinds")
                if fault_plan is not None and fault.superstep is not None:
                    # The fault fired (or its superstep was survived); a
                    # replayed superstep must not re-trigger it.
                    fault_plan = fault_plan.disarm_through(fault.superstep)
                degrade = attempts_left <= 0
                if not degrade:
                    attempts_left -= 1
                    respawn_span = tracer.begin("recovery.respawn")
                    try:
                        respawned = _recover_pool(pool, fault)
                    except BSPError:
                        degrade = True
                        respawned = []
                    if respawned:
                        recovery.respawns += len(respawned)
                        tracer.counter("recovery.respawns", len(respawned))
                    if tracer.enabled:
                        respawn_span.set("respawned", len(respawned))
                    respawn_span.finish()
                if tracer.enabled:
                    rewind_span.merge({
                        "fault": fault.kind,
                        "processes": list(fault.processes),
                        "to_superstep": checkpoint.superstep,
                        "degraded": degrade,
                    })
                rewind_span.finish()
                if degrade:
                    recovery.degraded = True
                    tracer.counter("recovery.degraded")
                    pool.abort()
                    pool.close()
                    return run._resume_inline(
                        master, phase_times, original_graph_name, checkpoint
                    )
                resume_from = checkpoint
            except BaseException:
                # Children may be blocked mid-protocol; the pool is not
                # salvageable.  BaseException on purpose: a
                # KeyboardInterrupt mid-run must also tear the pool down
                # (joining the children and sweeping their arena blocks), or
                # the interrupted session leaks /dev/shm segments.
                pool.abort()
                pool.close()
                raise
    finally:
        shared.close()
        shared.unlink()


def _drive_attempt(
    run, master, pool, phase_times, original_graph_name: str,
    shared, offsets, blocks, kind: str, fault_plan, resume_from,
) -> RunResult:
    """One end-to-end attempt of the process-backend superstep loop.

    Raises :class:`BarrierFault` (annotated with the failing superstep, pool
    left open) when a barrier collect fails; the caller owns recovery.
    """
    engine_config = run.engine_config
    tracer = run.tracer
    manager = run.checkpoint_manager
    plane = run._vector
    num_workers = run.num_workers
    token = run._attempt_token
    timeout = engine_config.barrier_timeout_s

    if resume_from is not None:
        start_superstep = resume_from.superstep
        iterations = list(resume_from.iterations)
        convergence_history = list(resume_from.convergence_history)
        run.registry.restore_previous(resume_from.aggregates)
        run.runtime_model.restore_rng(resume_from.rng_state)
        resume_payload = {
            "superstep": start_superstep,
            "plane": resume_from.plane,
            "aggregates": dict(resume_from.aggregates),
            "epoch_base": resume_from.epoch_base,
        }
    else:
        start_superstep = 0
        iterations: List[IterationProfile] = []
        convergence_history: List[float] = []
        resume_payload = None
    converged = False

    # The tracer cannot travel to the children (it is live, unpicklable
    # state); they get a stripped config plus a ``trace`` flag and run
    # their own per-process tracers, drained back at the barrier.  The
    # fault plan ships resolved, as its own setup entry.
    child_config = engine_config
    if engine_config.trace is not None or engine_config.fault_plan is not None:
        child_config = dataclasses.replace(engine_config, trace=None, fault_plan=None)
    setup = {
        "graph": shared.handle,
        "offsets": offsets,
        "num_workers": num_workers,
        "algorithm": run.algorithm,
        "config": run.config,
        "engine_config": child_config,
        "plane": export_plane_init(plane, kind),
        "kind": kind,
        "trace": tracer.enabled,
        "token": token,
        "faults": fault_plan,
        "resume": resume_payload,
    }
    current_superstep = start_superstep
    loop_span = tracer.begin("phase.superstep")
    # Children start computing the moment "init" lands, so the first
    # superstep span opens before the sends: every adopted child span must
    # fall inside the master span it is re-parented to.
    ss_span = tracer.begin("superstep")
    attempt_spans = [loop_span, ss_span]
    try:
        for index, block in enumerate(blocks):
            pool.send(index, ("init", {
                **setup, "worker_block": (int(block[0]), int(block[-1]) + 1),
            }))

        for superstep in range(start_superstep, engine_config.max_supersteps):
            current_superstep = superstep
            run._begin_superstep()
            exchange_span = tracer.begin("exchange")
            attempt_spans.append(exchange_span)
            computed = pool.receive_all("computed", token=token, timeout=timeout)
            tables = []
            for message in computed:  # process order == ascending worker blocks
                _, _, _, counters, aggregator_events, sent, table = message
                for worker_counters in counters:
                    run.workers[worker_counters.worker_id].counters = worker_counters
                for name, contributions in aggregator_events:
                    run.registry.contribute_many(name, contributions)
                run._next_message_count += sent
                tables.append(table)
            pool.broadcast(("table", tables))
            exchange_span.finish()

            reduce_span = tracer.begin("reduce")
            attempt_spans.append(reduce_span)
            reduced = pool.receive_all("reduced", token=token, timeout=timeout)
            active_next = 0
            delivered_messages = np.zeros(num_workers, dtype=np.int64)
            delivered_bytes = np.zeros(num_workers, dtype=np.int64)
            for message, block in zip(reduced, blocks):
                _, _, _, block_active, delivered, child_records = message
                active_next += block_active
                for worker_id, (messages_, bytes_) in zip(block.tolist(), delivered):
                    delivered_messages[worker_id] = messages_
                    delivered_bytes[worker_id] = bytes_
                if child_records:
                    tracer.adopt(child_records, parent_id=ss_span.span_id)
            reduce_span.finish()
            if engine_config.enforce_memory:
                run._check_memory_batch(delivered_messages, delivered_bytes)

            worker_counters = [run.workers[w].counters for w in range(num_workers)]
            runtime, critical_worker = run.runtime_model.superstep_time(worker_counters)
            barrier_span = tracer.begin("barrier")
            aggregates = run.registry.barrier()
            decision = master.after_superstep(
                superstep, aggregates, active_next, run._next_message_count
            )
            barrier_span.finish()
            profile = IterationProfile(
                superstep=superstep,
                worker_counters=worker_counters,
                critical_worker=critical_worker,
                runtime=runtime,
                barrier_time=run.engine.cost_profile.barrier_overhead,
                convergence_metric=decision.convergence_metric,
                aggregates=aggregates,
            )
            iterations.append(profile)
            if decision.convergence_metric is not None:
                convergence_history.append(decision.convergence_metric)

            ckpt_flag = (not decision.stop) and manager.should_checkpoint(superstep + 1)

            # Close superstep S before the continue broadcast releases the
            # children into superstep S+1, and open span S+1 first -- the
            # staggering keeps child compute inside the master's span.
            if tracer.enabled:
                ss_span.merge(
                    superstep_attrs(profile, run.kernels.tier, run.kernels.threads)
                )
            ss_span.finish()
            if not decision.stop:
                ss_span = tracer.begin("superstep")
                attempt_spans.append(ss_span)
            pool.broadcast(("continue", decision.stop, aggregates, ckpt_flag))
            if ckpt_flag:
                # Children send their plane slice right after advance(),
                # before computing superstep S+1 -- no ack, so the snapshot
                # ships off the critical path.  Per-pipe FIFO guarantees the
                # slice precedes the next "computed" on each connection.
                ckpt_span = tracer.begin("recovery.checkpoint")
                attempt_spans.append(ckpt_span)
                slices = pool.receive_all("ckpt", token=token, timeout=timeout)
                snapshot = assemble_plane_snapshot([message[3] for message in slices])
                manager.store(run._build_checkpoint(
                    superstep + 1, iterations, convergence_history,
                    plane_snapshot=snapshot,
                ))
                run.recovery.checkpoints += 1
                tracer.counter("recovery.checkpoints")
                if tracer.enabled:
                    ckpt_span.set("superstep", superstep + 1)
                ckpt_span.finish()
            if decision.stop:
                converged = decision.converged
                break
        ss_span.finish()  # no-op unless the superstep budget ran out
        loop_span.finish()

        write_span = tracer.begin("phase.write")
        attempt_spans.append(write_span)
        values_messages = pool.receive_all("values", token=token, timeout=timeout)
        paste_values(plane, kind, [message[3] for message in values_messages])
        run.values = plane.export_values()
    except BarrierFault as fault:
        if fault.superstep is None:
            fault.superstep = current_superstep
        # Close whatever spans the abandoned attempt left open (finish is
        # idempotent and order-tolerant) so the retry's spans nest cleanly.
        for span in reversed(attempt_spans):
            span.finish()
        raise

    phase_times.superstep = sum(profile.runtime for profile in iterations)
    phase_times.write = run.runtime_model.write_time(
        run.graph.num_vertices, run.num_workers
    )
    if tracer.enabled:
        write_span.set("modeled_s", phase_times.write)
    write_span.finish()
    vertex_values = dict(run.values) if engine_config.collect_vertex_values else None
    return RunResult(
        algorithm=run.algorithm.name,
        graph_name=original_graph_name,
        num_vertices=run.graph.num_vertices,
        num_edges=run.graph.num_edges,
        num_workers=run.num_workers,
        iterations=iterations,
        phase_times=phase_times,
        converged=converged,
        convergence_history=convergence_history,
        vertex_values=vertex_values,
        config=run.algorithm.config_dict(run.config),
        trace=tracer if tracer.enabled else None,
        kernel_tier=run.kernels.tier,
        threads=run.kernels.threads,
        recovery=run.recovery if run.recovery.active else None,
    )
