"""Wire protocol of the process backend: streams, reduction, value export.

One execution model, four payload kinds.  Every superstep each worker
process:

1. runs the inline engine's per-range batch kernels for the workers it owns,
   which buffers *send events* on its (process-local) batch plane exactly as
   the inline path would;
2. :func:`extract_stream`\\ s those events into flat arrays packed into its
   shared-memory arena -- the stream preserves scalar send order (workers in
   id order, events in call order, edges in adjacency order);
3. after the exchange barrier, :func:`reduce_streams` replays *every*
   process's stream filtered to the vertex range this process owns.

The bit-identity argument is the same one the inline batch planes make,
applied once more:

* filtering a stream by destination preserves the relative order of the
  surviving elements, and per-destination reductions only ever see elements
  addressed to that destination -- so folding the filtered concatenation
  (process 0's stream, then process 1's, ...) accumulates each destination's
  messages in exactly the global stream order the single-process barrier
  fold uses;
* processes own *contiguous, ascending* worker blocks, so concatenating
  their streams in process order reproduces the inline worker-by-worker send
  order;
* integer counters and byte sums are exact in any order; float message sums
  ride the same ``np.bincount`` sequential accumulation as the inline fold
  (:meth:`_VectorizedState._fold_stream`); ``min`` / ``bitwise_or``
  reductions are commutative and exact.

The owner-side replay injects the filtered stream back into the plane's own
event buffers and reuses the plane's *unmodified* commit/advance kernels, so
there is exactly one implementation of every reduction in the codebase.

``tests/test_parallel_backend.py`` pins the equivalence run-for-run against
the inline engine across every registry algorithm.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.bsp.parallel.shared_csr import ArenaReader, SharedArena, StreamHandle
from repro.bsp.ragged import (
    ClusterRowsState,
    ObjectState,
    Ragged,
    RaggedStreamState,
    RowReduceState,
)
from repro.exceptions import BSPError, StreamCorruptionError

KIND_SCALAR = "scalar"
KIND_ROWS = "rows"
KIND_RAGGED = "ragged"
KIND_CLUSTER = "cluster-rows"
KIND_OBJECT = "object"

#: Kinds whose delivered counts/bytes accrue at send time (the ragged core):
#: the owner re-derives both from the filtered streams, so the sender-side
#: contributions are zeroed before the replay.
_RAGGED_KINDS = (KIND_ROWS, KIND_RAGGED, KIND_CLUSTER, KIND_OBJECT)


def plane_kind(plane) -> str:
    """The wire kind of a batch plane (also the child/master sanity token)."""
    from repro.bsp.engine import _VectorizedState

    if isinstance(plane, _VectorizedState):
        return KIND_SCALAR
    if isinstance(plane, RowReduceState):
        return KIND_ROWS
    if isinstance(plane, ClusterRowsState):
        return KIND_CLUSTER
    if isinstance(plane, RaggedStreamState):
        return KIND_RAGGED
    if isinstance(plane, ObjectState):
        return KIND_OBJECT
    raise BSPError(f"no process-backend wire kind for plane {type(plane).__name__}")


class StreamCache:
    """Per-run steady-state caches of the stream protocol (all kinds).

    Iterative workloads send along the *same* edges superstep after
    superstep (PageRank: every vertex with out-edges, every superstep), so
    both ends of the protocol memoise everything that depends only on the
    destination stream:

    * the sender tags each event with an *epoch* that advances only when the
      event's destination/length arrays actually change (one ``memcmp``-fast
      comparison per superstep) and ships the destinations only on an epoch
      change;
    * each owner caches, per ``(process, event slot, epoch)``, the filter of
      that event to its vertex range -- the filtered destinations and the
      per-edge sender positions -- leaving a single payload gather of
      O(owned in-edges) per superstep.

    Contiguous ("span") sends are cached by their CSR edge span instead: the
    destinations are a slice of the shared ``targets`` array and never travel
    at all.

    The ragged kinds (``rows`` / ``ragged`` / cluster-rows / ``object``)
    use the same epoch scheme on their single per-superstep stream: the
    sender ships the routing arrays (``dest``, ``refs``) only on an epoch
    change, and each owner caches its range filter, destination counts and
    the pool-compaction index (``uniq`` / ``remapped``) per process + epoch
    -- leaving per-superstep owner work of one byte ``bincount`` plus one
    payload-pool gather, both O(filtered stream).
    """

    def __init__(self, epoch_base: int = 0) -> None:
        #: sender side: event slot -> (dest, lens, epoch) of the last ship.
        self.sender_slots: Dict[int, tuple] = {}
        #: Epochs count up from ``epoch_base`` -- a recovery rewind restarts
        #: every cache from ``checkpoint.version << EPOCH_VERSION_SHIFT`` so
        #: epochs minted before the rewind can never collide with replayed
        #: ones (an owner must never reuse a filter cached for a stream that
        #: the abandoned attempt shipped).
        self.epoch_counter = int(epoch_base)
        #: owner side: (process, event slot) -> (epoch, dest_f, sender_f).
        self.owner: Dict[tuple, tuple] = {}
        #: owner side: (elo, ehi, k) -> (dest_f, sender_f) for span events.
        self.span: Dict[tuple, tuple] = {}
        #: ragged sender side: (dest, refs, epoch) of the last ship.
        self.ragged_sender: tuple = None
        #: ragged owner side: process ->
        #: (epoch, dest_f, refs_f, uniq, remapped, counts).
        self.ragged_owner: Dict[int, tuple] = {}


#: Backwards-compatible alias (the cache grew beyond the scalar kind).
ScalarStreamCache = StreamCache


# ------------------------------------------------------------------ extraction
def extract_stream(
    plane, kind: str, arena: SharedArena, cache: ScalarStreamCache
) -> Tuple[Dict[str, Any], StreamHandle, List[np.ndarray]]:
    """Drain the plane's buffered send events into the process's arena.

    Returns ``(meta, handle, arrays)``: ``meta`` + ``handle`` travel to the
    master (and from there to every process); ``arrays`` are the packed
    arrays themselves so the owning process can replay its own stream without
    attaching its own arena.
    """
    if kind == KIND_SCALAR:
        events: List[tuple] = []
        arrays: List[np.ndarray] = []
        for slot, (dest, pay, lens, espan) in enumerate(zip(
            plane._ev_dest, plane._ev_pay, plane._ev_len, plane._ev_espan
        )):
            if espan is not None:
                # Contiguous send: the destinations are the shared CSR
                # ``targets[elo:ehi]`` slice -- every process maps the same
                # pages, so only the payloads and lengths travel.
                events.append(("span", int(espan[0]), int(espan[1]), len(pay)))
                arrays.append(np.ascontiguousarray(pay))
                arrays.append(np.ascontiguousarray(lens))
                continue
            entry = cache.sender_slots.get(slot)
            if (
                entry is not None
                and np.array_equal(entry[0], dest)
                and np.array_equal(entry[1], lens)
            ):
                # Same destinations as the last superstep: owners still hold
                # the filtered form, only the payloads travel.
                events.append(("gather", len(pay), entry[2], False))
                arrays.append(np.ascontiguousarray(pay))
                arrays.append(np.ascontiguousarray(lens))
            else:
                cache.epoch_counter += 1
                cache.sender_slots[slot] = (dest, lens, cache.epoch_counter)
                events.append(("gather", len(pay), cache.epoch_counter, True))
                arrays.append(np.ascontiguousarray(dest))
                arrays.append(np.ascontiguousarray(pay))
                arrays.append(np.ascontiguousarray(lens))
        plane._ev_dest = []
        plane._ev_pay = []
        plane._ev_len = []
        plane._ev_espan = []
        meta = {"events": events}
        return meta, arena.pack(arrays), arrays

    if kind in (KIND_ROWS, KIND_RAGGED, KIND_CLUSTER, KIND_OBJECT):
        if not plane._ev_dest:
            _clear_ragged_events(plane, kind)
            return {}, arena.pack([]), []
        dest = _concat(plane._ev_dest)
        refs = _concat(plane._ev_ref)
        sizes = _concat(plane._ev_sizes)
        # Epoch the routing arrays: steady-state supersteps repeat (dest,
        # refs) bit for bit, so only the payload groups need to travel and
        # owners keep their cached range filters (see StreamCache).
        entry = cache.ragged_sender
        if (
            entry is not None
            and np.array_equal(entry[0], dest)
            and np.array_equal(entry[1], refs)
        ):
            epoch = entry[2]
            routing: List[np.ndarray] = []
            routed = False
        else:
            cache.epoch_counter += 1
            epoch = cache.epoch_counter
            cache.ragged_sender = (dest, refs, epoch)
            routing = [dest, refs]
            routed = True
        if kind == KIND_ROWS:
            pool = (
                plane._ev_rows[0]
                if len(plane._ev_rows) == 1
                else np.concatenate(plane._ev_rows, axis=0)
            )
            arrays = routing + [np.ascontiguousarray(pool), sizes]
        elif kind == KIND_OBJECT:
            blob = np.frombuffer(
                pickle.dumps(plane._pool, protocol=pickle.HIGHEST_PROTOCOL),
                dtype=np.uint8,
            )
            arrays = routing + [sizes, blob]
        else:
            pool = (
                plane._ev_rows[0]
                if len(plane._ev_rows) == 1
                else Ragged.concat(plane._ev_rows)
            )
            arrays = routing + [
                np.ascontiguousarray(pool.data),
                np.ascontiguousarray(pool.lengths),
                sizes,
            ]
        _clear_ragged_events(plane, kind)
        meta = {"epoch": epoch, "routed": routed}
        return meta, arena.pack(arrays), arrays

    raise BSPError(f"unknown stream kind {kind!r}")


def _clear_ragged_events(plane, kind: str) -> None:
    plane._ev_dest = []
    plane._ev_ref = []
    plane._ev_sizes = []
    if kind == KIND_OBJECT:
        plane._pool = []
    else:
        plane._ev_rows = []
        plane._ev_row_base = 0
        if kind == KIND_ROWS:
            plane._ev_vspan = []


def _concat(parts: Sequence[np.ndarray]) -> np.ndarray:
    return np.ascontiguousarray(parts[0]) if len(parts) == 1 else np.concatenate(parts)


# ------------------------------------------------------------------- reduction
def reset_delivery_buffers(plane, kind: str) -> None:
    """Zero the sender-side delivered counts before the owner replay.

    The ragged core accrues ``count_next`` / ``bytes_next`` at *send* time,
    so after the compute phase a process's arrays hold only its own sends'
    contributions (for all destinations).  The owner replay re-derives both
    for the owned range from the full filtered streams.
    """
    if kind in _RAGGED_KINDS:
        n = len(plane.count_next)
        plane.count_next = np.zeros(n, dtype=np.int64)
        plane.bytes_next = np.zeros(n, dtype=np.int64)


def reduce_streams(
    plane,
    kind: str,
    streams: Sequence[Tuple[Dict[str, Any], List[np.ndarray]]],
    lo: int,
    hi: int,
    cache: ScalarStreamCache,
) -> None:
    """Replay every process's stream, filtered to the owned range ``[lo, hi)``.

    ``streams`` is ordered by process index (= ascending worker blocks), so
    the filtered concatenation is the global scalar send order restricted to
    the owned destinations.  After this call the plane's ``acc_next`` /
    ``count_next`` / ``bytes_next`` / delivery buffers are correct for the
    owned range (and meaningless elsewhere -- no other range is ever read).

    ``cache`` persists across supersteps (see :class:`ScalarStreamCache`):
    steady-state scalar workloads pay the range filter once per epoch and a
    payload gather of O(owned in-edges) per superstep.
    """
    if kind == KIND_SCALAR:
        _reduce_scalar(plane, streams, lo, hi, cache)
        return
    base = plane._ev_row_base if kind != KIND_OBJECT else len(plane._pool)
    n = len(plane.count_next)
    for process, (meta, arrays) in enumerate(streams):
        if not arrays:
            continue
        cursor = 0
        routed = bool(meta.get("routed"))
        if routed:
            dest, refs = arrays[0], arrays[1]
            cursor = 2
        if kind == KIND_OBJECT:
            sizes, blob = arrays[cursor], arrays[cursor + 1]
        elif kind == KIND_ROWS:
            pool, sizes = arrays[cursor], arrays[cursor + 1]
        else:
            pool_data, pool_lengths, sizes = (
                arrays[cursor],
                arrays[cursor + 1],
                arrays[cursor + 2],
            )
        # Owner-side integrity checks on the stream metadata: wire byte
        # sizes are non-negative by construction, and the routing arrays
        # index the payload pool element for element.
        if len(sizes) and int(sizes.min()) < 0:
            raise StreamCorruptionError(
                f"corrupt ragged stream from process {process}: "
                f"negative payload size {int(sizes.min())}"
            )
        if routed and len(dest) != len(refs):
            raise StreamCorruptionError(
                f"corrupt ragged stream from process {process}: "
                f"{len(dest)} destinations but {len(refs)} payload refs"
            )
        # The range filter, destination counts and pool-compaction index
        # depend only on the routing arrays -- reuse them while the sender's
        # epoch stands still, recompute (and re-cache) when it advances.
        epoch = meta.get("epoch")
        entry = cache.ragged_owner.get(process)
        if entry is not None and entry[0] == epoch:
            _, dest_f, refs_f, uniq, remapped, counts = entry
        else:
            if not routed:  # pragma: no cover - protocol guard
                raise BSPError("ragged stream epoch advanced without routing")
            dest_f, idx = plane.kernels.filter_range(dest, lo, hi)
            refs_f = refs[idx]
            uniq, remapped = np.unique(refs_f, return_inverse=True)
            counts = np.bincount(dest_f, minlength=n)
            cache.ragged_owner[process] = (
                epoch, dest_f, refs_f, uniq, remapped, counts
            )
        if len(dest_f) == 0:
            continue
        plane.count_next += counts
        plane.bytes_next += np.bincount(
            dest_f, weights=sizes[refs_f], minlength=n
        ).astype(np.int64)
        # Compact the pool to the payloads the owned range actually
        # references: delivery then holds O(owned payload), not O(global).
        plane._ev_dest.append(dest_f)
        plane._ev_ref.append(remapped + base)
        if kind == KIND_OBJECT:
            pool_list = pickle.loads(blob.tobytes())
            plane._pool.extend(pool_list[i] for i in uniq.tolist())
            base += len(uniq)
            continue
        if kind == KIND_ROWS:
            plane._ev_rows.append(pool[uniq])
            plane._ev_vspan.append(None)
        else:
            plane._ev_rows.append(Ragged.from_lengths(pool_data, pool_lengths).take(uniq))
        base += len(uniq)
    if kind != KIND_OBJECT:
        plane._ev_row_base = base


def _reduce_scalar(plane, streams, lo: int, hi: int, cache: ScalarStreamCache) -> None:
    dest_parts: List[np.ndarray] = []
    pay_parts: List[np.ndarray] = []
    for process, (meta, arrays) in enumerate(streams):
        cursor = 0
        for slot, event in enumerate(meta.get("events", ())):
            if event[0] == "span":
                _, elo, ehi, k = event
                pay = arrays[cursor]
                lens = arrays[cursor + 1]
                cursor += 2
                # Owner-side integrity check: a span send covers exactly the
                # CSR edge slice, so the per-sender lengths must tile it.
                # Checked unconditionally (lens travel every superstep).
                if len(lens) and (
                    int(lens.min()) < 0 or int(lens.sum()) != ehi - elo
                ):
                    raise StreamCorruptionError(
                        f"corrupt span stream from process {process}: "
                        f"lengths sum to {int(lens.sum())}, expected "
                        f"{ehi - elo} edges"
                    )
                cached = cache.span.get((elo, ehi, k))
                if cached is None:
                    senders = np.repeat(np.arange(k, dtype=np.int64), lens)
                    dest_f, idx = plane.kernels.filter_range(
                        plane.targets[elo:ehi], lo, hi
                    )
                    cached = (dest_f, senders[idx])
                    cache.span[(elo, ehi, k)] = cached
                dest_f, sender_f = cached
            else:
                _, k, epoch, has_dest = event
                if has_dest:
                    dest = arrays[cursor]
                    pay = arrays[cursor + 1]
                    lens = arrays[cursor + 2]
                    cursor += 3
                else:
                    pay = arrays[cursor]
                    lens = arrays[cursor + 1]
                    cursor += 2
                entry = cache.owner.get((process, slot))
                if entry is not None and entry[0] == epoch:
                    _, dest_f, sender_f = entry
                else:
                    if not has_dest:  # pragma: no cover - protocol guard
                        raise BSPError(
                            "scalar stream epoch advanced without destinations"
                        )
                    # A corrupted ``lens`` always lands here: the sender cache
                    # compares (dest, lens) bit for bit, so any mutation
                    # forces an epoch advance and ships the destinations.
                    if len(lens) and (
                        int(lens.min()) < 0 or int(lens.sum()) != len(dest)
                    ):
                        raise StreamCorruptionError(
                            f"corrupt gather stream from process {process}: "
                            f"lengths sum to {int(lens.sum())}, expected "
                            f"{len(dest)} destinations"
                        )
                    senders = np.repeat(np.arange(k, dtype=np.int64), lens)
                    dest_f, idx = plane.kernels.filter_range(dest, lo, hi)
                    sender_f = senders[idx]
                    cache.owner[(process, slot)] = (epoch, dest_f, sender_f)
            pay_f = pay[sender_f]
            if len(dest_f):
                dest_parts.append(dest_f)
                pay_parts.append(pay_f)
    if not dest_parts:
        return
    dest = _concat(dest_parts)
    payloads = _concat(pay_parts)
    plane._fold_stream(dest, payloads)


# ----------------------------------------------------------------- plane init
def export_plane_init(plane, kind: str) -> Dict[str, Any]:
    """The master plane's initial value store, picklable, for the children.

    Shipping the *encoded* arrays (instead of the raw per-vertex Python
    values) lets a worker process construct its plane replica directly --
    no id-keyed dict, no O(n) Python encode loop, and by-construction the
    same plane class the master built.
    """
    if kind in (KIND_SCALAR, KIND_ROWS):
        return {"values": plane.values}
    if kind in (KIND_RAGGED, KIND_CLUSTER):
        init = {"data": plane.values.data, "lengths": plane.values.lengths}
        if kind == KIND_CLUSTER:
            init["cache"] = plane.cache
        return init
    return {"values": list(plane.values)}


def build_child_plane(run, kind: str, init: Dict[str, Any]):
    """Construct a worker process's plane replica from the shipped state."""
    if kind == KIND_SCALAR:
        from repro.bsp.engine import _VectorizedState

        return _VectorizedState(run, init["values"])
    if kind == KIND_ROWS:
        return RowReduceState(run, init["values"])
    if kind == KIND_RAGGED:
        return RaggedStreamState(
            run, Ragged.from_lengths(init["data"], init["lengths"])
        )
    if kind == KIND_CLUSTER:
        return ClusterRowsState(
            run,
            Ragged.from_lengths(init["data"], init["lengths"]),
            run.algorithm.decode_numeric_object_values,
            dict(init["cache"]),
        )
    if kind == KIND_OBJECT:
        return ObjectState(run, list(init["values"]))
    raise BSPError(f"unknown stream kind {kind!r}")


# --------------------------------------------------------------- value export
def export_values_slice(plane, kind: str, lo: int, hi: int):
    """This process's final vertex values for the owned range (picklable)."""
    if kind in (KIND_SCALAR, KIND_ROWS):
        return np.ascontiguousarray(plane.values[lo:hi])
    if kind in (KIND_RAGGED, KIND_CLUSTER):
        values = plane.values
        data = np.ascontiguousarray(
            values.data[values.offsets[lo] : values.offsets[hi]]
        )
        return data, np.ascontiguousarray(values.lengths[lo:hi])
    return list(plane.values[lo:hi])


def paste_values(plane, kind: str, parts: Sequence[Tuple[int, int, Any]]) -> None:
    """Assemble the owned-range payloads into the master plane's value store.

    ``parts`` is ``(lo, hi, payload)`` per process, in process order; the
    ranges tile ``[0, n)``, so ragged values rebuild by plain concatenation.
    """
    if kind in (KIND_RAGGED, KIND_CLUSTER):
        data = np.concatenate([payload[0] for _, _, payload in parts])
        lengths = np.concatenate([payload[1] for _, _, payload in parts])
        plane.values = Ragged.from_lengths(data, lengths)
        return
    for lo, hi, payload in parts:
        plane.values[lo:hi] = payload


__all__ = [
    "ArenaReader",
    "KIND_CLUSTER",
    "KIND_OBJECT",
    "KIND_RAGGED",
    "KIND_ROWS",
    "KIND_SCALAR",
    "ScalarStreamCache",
    "StreamCache",
    "export_values_slice",
    "extract_stream",
    "paste_values",
    "plane_kind",
    "reduce_streams",
    "reset_delivery_buffers",
]
