"""Shared-memory transport for the process execution backend.

Two building blocks live here:

:class:`SharedCSR`
    Exports a frozen :class:`repro.graph.csr.CSRGraph`'s arrays
    (``indptr`` / ``targets`` / ``weights``) into one
    ``multiprocessing.shared_memory`` block and hands out a picklable
    :class:`SharedCSRHandle`.  Worker processes :meth:`attach <SharedCSR.attach>`
    the handle and rebuild a ``CSRGraph`` whose arrays are zero-copy views of
    the block -- the graph is immutable, so every process reads the same
    physical pages and per-process memory stays O(vertices) (ids + degree
    caches), not O(edges).

:class:`SharedArena`
    A grow-only shared-memory out-buffer owned by one worker process.  Each
    superstep the owner packs its send stream (destination / payload / size
    arrays) into the arena and publishes a :class:`StreamHandle`; every other
    process attaches the arena read-only and slices the arrays back out as
    views.  The arena is reallocated (under a fresh name) only when a
    superstep's stream outgrows it; the engine's barrier protocol guarantees
    no reader still needs the old block when that happens.

Teardown contract
-----------------
POSIX shared memory is a named kernel object: a block leaks (survives the
process, shows up under ``/dev/shm``) unless exactly one owner ``unlink``\\ s
it.  The rules here are:

* the *creator* of a block (``SharedCSR.export`` on the master,
  ``SharedArena`` on a worker) is responsible for ``unlink``;
* *attachers* only ever ``close`` their mapping;
* attaching on CPython < 3.13 registers the block with the process-local
  ``resource_tracker``, which would unlink it again when the attaching
  process exits -- double-frees that manifest as "leaked shared_memory"
  warnings and vanishing segments.  :func:`attach_shared_memory` therefore
  de-registers the attachment immediately.

Crash robustness: a worker killed mid-superstep (SIGKILL, OOM) can never run
its own cleanup.  Arena blocks therefore carry deterministic
``repro_shm_<pid>_*`` names (:func:`create_owned_shared_memory`); after the
pool joins its children, ``ProcessWorkerPool.close`` sweeps any block still
carrying a dead child's pid.  The master-side ``SharedCSR`` block is covered
by ``try/finally`` in ``run_process_backend`` on every exit path, including
``KeyboardInterrupt``.

``tests/test_parallel_backend.py`` verifies the contract end to end: after a
run (and after a pool shutdown) no ``/dev/shm`` segment created by this
module is left behind -- including crash-injection runs that SIGKILL a
child mid-superstep.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import List, Optional, Sequence, Tuple

import numpy as np

#: Alignment of packed segments inside an arena (keeps float64 views aligned).
_ALIGN = 16

#: Name prefix of worker-owned arena blocks: ``repro_shm_<pid>_<seq>``.
#: Deterministic names are the crash-cleanup mechanism -- the master knows
#: its children's pids, so after joining them it can sweep any block a
#: SIGKILLed child left behind (``ProcessWorkerPool.close``), something
#: impossible with the default random ``psm_`` names.
OWNED_SEGMENT_PREFIX = "repro_shm_"

_owned_counter = itertools.count()


def create_owned_shared_memory(size: int) -> shared_memory.SharedMemory:
    """Create a block named ``repro_shm_<pid>_<seq>`` (sweepable by name).

    The resource tracker is bypassed: cleanup is deterministic -- the owner
    ``destroy``\\ s the block on every normal and error path, and the pool
    master sweeps leftovers of dead children by pid -- so tracker
    registration would only add double-unlink noise (and, for a SIGKILLed
    child, an asynchronous unlink racing the master's sweep).
    """
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        while True:
            name = f"{OWNED_SEGMENT_PREFIX}{os.getpid()}_{next(_owned_counter)}"
            try:
                return shared_memory.SharedMemory(name=name, create=True, size=size)
            except FileExistsError:  # pragma: no cover - stale recycled-pid block
                try:
                    stale = shared_memory.SharedMemory(name=name)
                except FileNotFoundError:
                    continue
                unlink_owned_shared_memory(stale)
                stale.close()
    finally:
        resource_tracker.register = original_register


def unlink_owned_shared_memory(shm: shared_memory.SharedMemory) -> None:
    """Unlink a block created by :func:`create_owned_shared_memory`.

    Owned blocks were never registered with the resource tracker, so the
    unregister message ``SharedMemory.unlink`` would send refers to an
    unknown name and makes the tracker process print a spurious
    ``KeyError`` traceback.  Suppressing the unregister keeps teardown
    silent; the unlink itself is unaffected.
    """
    original_unregister = resource_tracker.unregister
    resource_tracker.unregister = lambda *args, **kwargs: None
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - double unlink guard
        pass
    finally:
        resource_tracker.unregister = original_unregister


def attach_shared_memory(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without adopting cleanup responsibility.

    On CPython < 3.13 ``SharedMemory(name=...)`` registers the segment with
    the resource tracker, which then wants to unlink it when the attaching
    process exits -- wrong for attachers (the creator owns the unlink), and
    noisy when several pool processes attach the same block (they share one
    tracker, so the duplicate deregistrations raise KeyErrors inside it).
    Suppressing the registration during the attach sidesteps both; the
    pool's worker processes are single-threaded when they attach.
    """
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


@dataclass(frozen=True)
class SharedCSRHandle:
    """Picklable description of an exported graph (ships once per run)."""

    block_name: str
    graph_name: str
    num_vertices: int
    num_edges: int
    #: Vertex ids in (partition-contiguous) index order.  Ids are arbitrary
    #: hashables, so they travel by pickle, not through the block.
    ids: list


class SharedCSR:
    """A frozen ``CSRGraph``'s arrays in one shared-memory block.

    The block layout is ``indptr | targets | weights`` (16-byte aligned).
    The degree caches are *not* shipped: rebuilding them costs one O(m) pass
    per process per run, which is cheaper than pinning two more arrays for
    the lifetime of the run.
    """

    def __init__(self, shm: shared_memory.SharedMemory, handle: SharedCSRHandle,
                 owner: bool) -> None:
        self._shm = shm
        self.handle = handle
        self._owner = owner
        self._closed = False

    # -------------------------------------------------------------- lifecycle
    @classmethod
    def export(cls, graph) -> "SharedCSR":
        """Copy ``graph``'s CSR arrays into a new shared block (master side)."""
        n = graph.num_vertices
        m = graph.num_edges
        indptr_bytes = _aligned((n + 1) * 8)
        targets_bytes = _aligned(m * 8)
        weights_bytes = _aligned(m * 8)
        total = max(indptr_bytes + targets_bytes + weights_bytes, _ALIGN)
        shm = shared_memory.SharedMemory(create=True, size=total)
        offset = 0
        for array, nbytes in (
            (graph.indptr, indptr_bytes),
            (graph.targets, targets_bytes),
            (graph.weights, weights_bytes),
        ):
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf, offset=offset)
            view[...] = array
            offset += nbytes
        handle = SharedCSRHandle(
            block_name=shm.name,
            graph_name=graph.name,
            num_vertices=n,
            num_edges=m,
            ids=graph.ids,
        )
        return cls(shm, handle, owner=True)

    @classmethod
    def attach(cls, handle: SharedCSRHandle) -> "SharedCSR":
        """Map an exported graph in a worker process (read-only use)."""
        return cls(attach_shared_memory(handle.block_name), handle, owner=False)

    def close(self) -> None:
        """Drop this process's mapping (both sides)."""
        if not self._closed:
            self._closed = True
            self._shm.close()

    def unlink(self) -> None:
        """Free the block's name; creator only, after every run user closed."""
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink guard
                pass

    # ----------------------------------------------------------------- access
    def graph(self):
        """Rebuild a ``CSRGraph`` over zero-copy views of the block.

        The returned graph re-derives the degree caches and validates the
        arrays exactly like a locally built one; its ``indptr`` / ``targets``
        / ``weights`` alias the shared pages (``CSRGraph.__init__`` marks
        them read-only, which is also what makes the aliasing safe).
        """
        from repro.graph.csr import CSRGraph

        handle = self.handle
        n = handle.num_vertices
        m = handle.num_edges
        offset = 0
        indptr = np.ndarray((n + 1,), dtype=np.int64, buffer=self._shm.buf, offset=offset)
        offset += _aligned((n + 1) * 8)
        targets = np.ndarray((m,), dtype=np.int64, buffer=self._shm.buf, offset=offset)
        offset += _aligned(m * 8)
        weights = np.ndarray((m,), dtype=np.float64, buffer=self._shm.buf, offset=offset)
        return CSRGraph(handle.graph_name, handle.ids, indptr, targets, weights)


# --------------------------------------------------------------------- arenas
@dataclass(frozen=True)
class StreamHandle:
    """Picklable locator of one process's packed superstep stream.

    ``segments[i]`` is ``(dtype_str, shape, offset)`` into the arena block;
    ``block_name`` is None for an empty stream (nothing was packed).
    """

    block_name: Optional[str]
    segments: Tuple[Tuple[str, tuple, int], ...]


class SharedArena:
    """Grow-only shared out-buffer owned by one worker process."""

    def __init__(self) -> None:
        self._shm: Optional[shared_memory.SharedMemory] = None

    def pack(self, arrays: Sequence[np.ndarray]) -> StreamHandle:
        """Copy ``arrays`` into the arena, growing it if needed."""
        if not arrays:
            return StreamHandle(block_name=None, segments=())
        offsets = []
        cursor = 0
        for array in arrays:
            offsets.append(cursor)
            cursor += _aligned(array.nbytes)
        if self._shm is None or self._shm.size < cursor:
            # Readers of the previous block are guaranteed done (the barrier
            # protocol serialises write -> read -> next write), so the old
            # name can be freed before the replacement is published.
            self.destroy()
            self._shm = create_owned_shared_memory(max(cursor, _ALIGN) * 2)
        segments = []
        for array, offset in zip(arrays, offsets):
            view = np.ndarray(array.shape, dtype=array.dtype,
                              buffer=self._shm.buf, offset=offset)
            view[...] = array
            segments.append((array.dtype.str, tuple(array.shape), offset))
        return StreamHandle(block_name=self._shm.name, segments=tuple(segments))

    def destroy(self) -> None:
        """Close and unlink the arena block (owner side, end of run)."""
        if self._shm is not None:
            self._shm.close()
            unlink_owned_shared_memory(self._shm)
            self._shm = None


class ArenaReader:
    """Read-side cache of arena attachments (one per peer process)."""

    def __init__(self) -> None:
        self._attached: dict = {}

    def arrays(self, handle: StreamHandle) -> List[np.ndarray]:
        """The stream's arrays as zero-copy views into the peer's arena."""
        if handle.block_name is None:
            return []
        shm = self._attached.get(handle.block_name)
        if shm is None:
            shm = attach_shared_memory(handle.block_name)
            self._attached[handle.block_name] = shm
        return [
            np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
            for dtype, shape, offset in handle.segments
        ]

    def release_except(self, live_names) -> None:
        """Close attachments whose arena was reallocated under a new name."""
        for name in list(self._attached):
            if name not in live_names:
                self._attached.pop(name).close()

    def close(self) -> None:
        """Close every cached attachment (end of run)."""
        for shm in self._attached.values():
            shm.close()
        self._attached.clear()


def _aligned(nbytes: int) -> int:
    """Round ``nbytes`` up to the arena alignment."""
    return (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
