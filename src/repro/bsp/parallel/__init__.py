"""Shared-memory multiprocess execution backend for the BSP engine.

``EngineConfig(backend="process")`` executes a batch-plane run's supersteps
on true OS-process parallelism: each worker process owns a contiguous block
of BSP workers of the partition-native layout (its vertex range and CSR edge
slice), maps the frozen graph zero-copy from a :class:`SharedCSR` shared
memory export, and exchanges per-superstep send streams through
shared-memory arenas.  Message reduction is *owner-computes*: every process
folds exactly the sub-stream addressed to its range, in the global send
order, so counters, vertex values, aggregates and simulated runtimes are
bit-identical to the inline backend (``backend="inline"``, the default).

Package layout:

* :mod:`~repro.bsp.parallel.shared_csr` -- shared-memory graph export and
  the grow-only stream arenas (teardown contract included);
* :mod:`~repro.bsp.parallel.protocol` -- the stream wire format and the
  order-preserving owner reduction;
* :mod:`~repro.bsp.parallel.worker` -- the worker-process superstep loop;
* :mod:`~repro.bsp.parallel.pool` -- the persistent process pool and the
  master-side run driver.

See ``docs/ARCHITECTURE.md`` ("Execution backends") for the determinism
argument and the shared-memory lifecycle.
"""

from repro.bsp.parallel.pool import ProcessWorkerPool, run_process_backend
from repro.bsp.parallel.shared_csr import SharedArena, SharedCSR, SharedCSRHandle

__all__ = [
    "ProcessWorkerPool",
    "SharedArena",
    "SharedCSR",
    "SharedCSRHandle",
    "run_process_backend",
]
