"""Ragged message plane: vectorized variable-size messaging.

The engine's original fast path (:class:`repro.bsp.engine._VectorizedState`)
handles algorithms whose messages are fixed-size scalars reduced with ``sum``
or ``min`` -- PageRank contributions, connected-components labels.  The
paper's hardest prediction targets are the *category ii* algorithms whose
messages are variable-size (semi-cluster lists, top-k rank lists, FM-sketch
vectors): their per-iteration runtime varies precisely because message sizes
grow and shrink.  This module is the batch plane for those payloads.

Three payload representations share one routing/accounting core
(:class:`_RaggedStateBase`), selected by the algorithm's ``batch_payload``
attribute:

``"rows"`` -- :class:`RowReduceState`
    Fixed-width numeric rows (one row per message) reduced destination-wise
    with an element-wise ufunc (``batch_row_reducer``, e.g. ``bitwise_or``
    for neighborhood estimation's FM sketches).  Messages are folded into an
    accumulator at send time; individual payloads are never materialised.

``"ragged"`` -- :class:`RaggedStreamState`
    Variable-length numeric rows (top-k rank lists).  Send events are
    buffered per superstep and grouped by destination vertex at the barrier
    with a stable sort, so each vertex sees its payload elements in *exact
    scalar send order* (worker by worker, vertices in partition order,
    out-edges in adjacency order).

``"object"`` -- :class:`ObjectState` / :class:`ClusterRowsState`
    Arbitrary Python payloads (semi-cluster lists).  Two interchangeable
    states implement the kind.  :class:`ObjectState` batch-routes the Python
    objects and folds them per vertex in Python (the original hybrid).
    :class:`ClusterRowsState` is the **numeric fast path**: when the
    algorithm can encode its payloads as fixed-width numeric records
    (semi-clusters become ``[internal, boundary, count, member ids...]``
    rows) the whole superstep -- delivery, score recomputation, the sorted
    top-``Smax``/``Cmax`` merge -- runs as array kernels on the ``"ragged"``
    machinery, and no Python payload objects exist during the run.  The
    engine picks the numeric state whenever the algorithm provides the
    encoding hooks and ``EngineConfig.semicluster_numeric`` is left on;
    ``semicluster_numeric=False`` keeps the object fold reachable as the
    differential baseline.

Counter semantics are identical to the scalar engine path: every send call
reports per-message byte sizes, the local/remote split is classified against
the partition-native worker offsets (range arithmetic; a vertex-to-worker
assignment gather on the legacy layout), and delivered (post-routing) counts
and bytes feed the memory model per destination vertex.  The plane does not
support combiners (none of the variable-size algorithms define one); when a
run has an active combiner the engine falls back to the scalar path.

All planes share :class:`BatchPlane`, which owns the partition-native layout
machinery: the execution graph (``run.batch_graph()``, the
partition-contiguous relabelling when ``partition_native`` is on), contiguous
per-worker ownership ranges, slice-view out-edge expansion for contiguous
sender ranges, cached full-partition local/remote classification, and
per-worker segment sums over the worker boundaries.

``tests/test_differential_engine.py`` pins every algorithm in the registry
against the scalar path -- bit-identical counters, vertex values, aggregates
and convergence histories on 25+ seeded graphs.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import BSPError
from repro.bsp.kernels import get_kernels
from repro.bsp.kernels import reference as _ref_kernels
from repro.graph.csr import concat_ranges

VertexId = Hashable

#: Element-wise reducers available to the "rows" payload kind, as
#: ``name -> (ufunc, neutral element)``.
ROW_REDUCERS = {
    "bitwise_or": (np.bitwise_or, 0),
    "add": (np.add, 0),
}


class Ragged:
    """A list of variable-length numeric rows stored as (data, offsets).

    Row ``i`` occupies ``data[offsets[i]:offsets[i + 1]]``.  The layout is
    the 1-D analogue of the CSR adjacency arrays, and the same
    ``concat_ranges`` gather trick drives every row operation.
    """

    __slots__ = ("data", "offsets", "lengths")

    def __init__(self, data: np.ndarray, offsets: np.ndarray) -> None:
        self.data = np.asarray(data)
        self.offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        self.lengths = np.diff(self.offsets)

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_rows(cls, rows: Sequence[Sequence], dtype) -> "Ragged":
        """Build from a sequence of (possibly empty) numeric rows."""
        lengths = np.fromiter((len(row) for row in rows), dtype=np.int64, count=len(rows))
        offsets = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        data = np.fromiter(
            (value for row in rows for value in row), dtype=dtype, count=int(offsets[-1])
        )
        return cls(data, offsets)

    @classmethod
    def from_lengths(cls, data: np.ndarray, lengths: np.ndarray) -> "Ragged":
        """Wrap contiguous ``data`` already grouped into ``lengths``-sized rows."""
        offsets = np.zeros(len(lengths) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        return cls(data, offsets)

    @classmethod
    def concat(cls, parts: Sequence["Ragged"]) -> "Ragged":
        """Row-wise concatenation of several ragged arrays."""
        data = np.concatenate([part.data for part in parts])
        lengths = np.concatenate([part.lengths for part in parts])
        return cls.from_lengths(data, lengths)

    # ----------------------------------------------------------------- access
    def __len__(self) -> int:
        return len(self.lengths)

    def row(self, i: int) -> np.ndarray:
        """Row ``i`` as an array view."""
        return self.data[self.offsets[i] : self.offsets[i + 1]]

    def take(self, indices: np.ndarray) -> "Ragged":
        """Gather rows in the given order (duplicates allowed)."""
        lengths = self.lengths[indices]
        slots = concat_ranges(self.offsets[:-1][indices], lengths)
        return Ragged.from_lengths(self.data[slots], lengths)

    def replace_rows(self, indices: np.ndarray, rows: "Ragged") -> "Ragged":
        """A new ragged array with ``rows`` substituted at ``indices``.

        Row lengths may change; untouched rows keep their content.  Used by
        the top-k batch path to commit per-superstep value updates in one
        rebuild instead of per-row Python surgery.
        """
        lengths = self.lengths.copy()
        lengths[indices] = rows.lengths
        offsets = np.zeros(len(lengths) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        data = np.empty(int(offsets[-1]), dtype=self.data.dtype)
        kept = np.ones(len(lengths), dtype=bool)
        kept[indices] = False
        kept_idx = np.nonzero(kept)[0]
        data[concat_ranges(offsets[:-1][kept_idx], lengths[kept_idx])] = self.data[
            concat_ranges(self.offsets[:-1][kept_idx], self.lengths[kept_idx])
        ]
        data[concat_ranges(offsets[:-1][indices], rows.lengths)] = rows.data
        return Ragged(data, offsets)

    def to_tuples(self) -> List[Tuple]:
        """Materialise every row as a tuple of Python scalars."""
        flat = self.data.tolist()
        bounds = self.offsets.tolist()
        return [tuple(flat[bounds[i] : bounds[i + 1]]) for i in range(len(self))]


# ------------------------------------------------------------------- kernels
# The scalar-exactness kernels themselves now live in the tier-dispatched
# package ``repro.bsp.kernels`` (PR 8): ``kernels/reference.py`` holds the
# pure-NumPy implementations that used to be defined here, and
# ``kernels/compiled.py`` their numba nogil twins.  These module-level
# bindings keep the historical import surface (`from repro.bsp.ragged
# import segment_left_fold_sums`, ...) working and always mean the
# reference tier; tier-aware code goes through ``BatchPlane.kernels`` /
# ``RaggedBatchContext.kernels`` instead.
segment_left_fold_sums = _ref_kernels.segment_left_fold_sums
masked_segment_left_fold = _ref_kernels.masked_segment_left_fold
segment_unique_records = _ref_kernels.segment_unique_records


def segment_unique_topk_desc(
    data: np.ndarray, seg_ids: np.ndarray, num_segments: int, k: int
) -> Ragged:
    """Per-segment ``sorted(set(values), reverse=True)[:k]`` as a Ragged.

    Reference-tier wrapper kept for the historical call signature; see
    :func:`repro.bsp.kernels.reference.segment_unique_topk_desc` for the
    array-level kernel and its bit-identity contract.
    """
    return Ragged.from_lengths(
        *_ref_kernels.segment_unique_topk_desc(data, seg_ids, num_segments, k)
    )


def ragged_rows_equal(left: Ragged, right: Ragged) -> np.ndarray:
    """Row-wise equality of two ragged arrays with the same row count."""
    equal = left.lengths == right.lengths
    same_idx = np.nonzero(equal)[0]
    if len(same_idx):
        a = left.take(same_idx)
        b = right.take(same_idx)
        seg = np.repeat(np.arange(len(same_idx), dtype=np.int64), a.lengths)
        mismatched = np.bincount(seg[a.data != b.data], minlength=len(same_idx)) > 0
        equal[same_idx[mismatched]] = False
    return equal


# ---------------------------------------------------------------- batch state
class BatchPlane:
    """Worker loop, activation and buffer bookkeeping shared by all planes.

    Base of *every* batch execution plane -- the scalar-payload
    ``_VectorizedState`` in :mod:`repro.bsp.engine` and the three ragged
    kinds below -- so the superstep loop, the activation rule
    (:meth:`repro.bsp.worker.Worker.select_active`) and the barrier swap
    exist exactly once.  Implements the interface the engine's run loop
    expects: ``execute_superstep`` / ``advance`` / ``count_active_next`` /
    ``buffered_for`` / ``export_values``.
    """

    #: Context class handed to ``compute_batch`` (set by subclasses).
    context_cls = None

    def __init__(self, run) -> None:
        self.run = run
        # The tier-resolved kernel set for this run; engine-run objects carry
        # one, bare test stubs fall back to the default resolution.
        self.kernels = getattr(run, "kernels", None) or get_kernels()
        graph = run.batch_graph()
        self.graph = graph
        n = graph.num_vertices
        self.ids = graph.ids
        self.indptr = graph.indptr
        self.targets = graph.targets
        self.out_degrees = graph.out_degrees
        layout = getattr(graph, "partition_layout", None)
        if layout is not None and layout.num_workers == run.num_workers:
            # Partition-native layout: worker ``w`` owns the contiguous index
            # range ``worker_offsets[w]:worker_offsets[w + 1]``.  Ownership,
            # activation and the local/remote message split all become range
            # arithmetic -- no per-run index gathers, no vertex-to-worker map.
            self.worker_offsets = layout.offsets
            self.vertex_worker = None
            self.own = None
        else:
            self.worker_offsets = None
            self.vertex_worker = run.partitioning.assignment_array(graph)
            index = graph.index
            self.own = [
                np.fromiter(
                    (index[v] for v in worker.vertices),
                    dtype=np.int64,
                    count=len(worker.vertices),
                )
                for worker in run.workers
            ]
        self.halted = np.zeros(n, dtype=bool)
        self.msg_count = np.zeros(n, dtype=np.int64)
        self.count_next = np.zeros(n, dtype=np.int64)
        # Per-worker (mask, local_count) of a full-partition send; constant
        # across supersteps on the frozen layout (see _local_mask).
        self._span_cache: List[Optional[tuple]] = [None] * run.num_workers

    # ----------------------------------------------------------- superstep run
    def execute_superstep(self, superstep: int) -> None:
        run = self.run
        tracer = run.tracer
        offsets = self.worker_offsets
        compute_span = tracer.begin("compute")
        for worker in run.workers:
            worker.begin_superstep(superstep)
            if offsets is not None:
                active = worker.select_active_range(
                    int(offsets[worker.worker_id]),
                    int(offsets[worker.worker_id + 1]),
                    self.halted,
                    self.msg_count,
                )
            else:
                active = worker.select_active(
                    self.own[worker.worker_id], self.halted, self.msg_count
                )
            if len(active) == 0:
                continue
            batch = self.context_cls(self, worker, active, superstep)
            run.algorithm.compute_batch(batch, run.config)
        compute_span.finish()
        messaging_span = tracer.begin("messaging")
        self._commit_superstep()
        messaging_span.finish()

    def _commit_superstep(self) -> None:
        """Apply value updates staged during the worker loop (subclass hook)."""

    # ------------------------------------------------------- layout primitives
    def own_selector(self, worker_id: int):
        """Index ``halted``/``count_next``-shaped arrays with a worker's vertices.

        A slice (zero-copy view) on the partition-native layout, an index
        array otherwise.
        """
        if self.worker_offsets is not None:
            return slice(
                int(self.worker_offsets[worker_id]),
                int(self.worker_offsets[worker_id + 1]),
            )
        return self.own[worker_id]

    def _expand(self, senders: np.ndarray):
        """Out-edge expansion: ``(destinations, lengths, total, span)`` or None.

        ``senders`` must be ascending vertex indices (the activation order).
        On the partition-native layout a contiguous sender range -- the common
        case: a worker whose active set is its whole partition -- expands to a
        *slice view* of the CSR ``targets`` array; no ``concat_ranges`` gather
        and no copy.  Scattered senders fall back to the gather.  ``span`` is
        the ``(start, stop)`` vertex range of a contiguous expansion (None for
        the gather path); :meth:`_local_mask` uses it to reuse the
        classification of full-partition sends.
        """
        k = len(senders)
        if k == 0:
            return None
        if self.worker_offsets is not None and (
            k == 1 or int(senders[-1]) - int(senders[0]) + 1 == k
        ):
            start = int(senders[0])
            stop = int(senders[-1]) + 1
            lo = int(self.indptr[start])
            hi = int(self.indptr[stop])
            if lo == hi:
                return None
            return (
                self.targets[lo:hi],
                self.out_degrees[start:stop],
                hi - lo,
                (start, stop),
                (lo, hi),
            )
        lengths = self.out_degrees[senders]
        total = int(lengths.sum())
        if total == 0:
            return None
        slots = concat_ranges(self.indptr[senders], lengths)
        return self.targets[slots], lengths, total, None, None

    def _local_mask(self, worker, destinations: np.ndarray, span=None):
        """``(mask, local_count)`` for destinations on the sending worker.

        Partition-native layout: two range comparisons against the worker's
        ``[start, stop)`` offsets.  Legacy layout: a gather through the
        vertex-to-worker assignment array.  A *full-partition* send (``span``
        equals the worker's own range) has a classification that depends only
        on the frozen layout, so it is computed once per run and reused every
        superstep -- PageRank-style always-active workloads pay zero
        per-superstep classification cost.
        """
        worker_id = worker.worker_id
        offsets = self.worker_offsets
        if offsets is None:
            mask = self.vertex_worker[destinations] == worker_id
            return mask, int(np.count_nonzero(mask))
        lo = int(offsets[worker_id])
        hi = int(offsets[worker_id + 1])
        full_span = span is not None and span == (lo, hi)
        if full_span and self._span_cache[worker_id] is not None:
            return self._span_cache[worker_id]
        mask = (destinations >= lo) & (destinations < hi)
        result = (mask, int(np.count_nonzero(mask)))
        if full_span:
            mask.setflags(write=False)
            self._span_cache[worker_id] = result
        return result

    def _segment_sums(self, values: np.ndarray) -> np.ndarray:
        """Per-worker sums of a vertex-aligned array via the worker offsets.

        ``cumsum`` + boundary differences instead of ``add.reduceat`` so that
        empty workers (``offsets[w] == offsets[w + 1]``) correctly sum to 0.
        Only valid on the partition-native layout.
        """
        prefix = np.zeros(len(values) + 1, dtype=np.int64)
        np.cumsum(values, out=prefix[1:])
        return prefix[self.worker_offsets[1:]] - prefix[self.worker_offsets[:-1]]

    # ------------------------------------------------------------- accounting
    def count_active_next(self) -> int:
        """Vertices active in the next superstep (scalar rule, array form)."""
        return int(np.count_nonzero(~self.halted | (self.count_next > 0)))

    def advance(self) -> None:
        """Swap message buffers at the superstep barrier."""
        self.msg_count = self.count_next
        self.count_next = np.zeros(len(self.msg_count), dtype=np.int64)
        self._advance_payloads()

    def _advance_payloads(self) -> None:
        raise NotImplementedError

    def buffered_for(self, worker):
        """(delivered_messages, delivered_bytes) buffered for ``worker``."""
        raise NotImplementedError

    def buffered_all(self):
        """Per-worker delivered ``(messages, bytes)`` arrays for all workers."""
        pairs = [self.buffered_for(worker) for worker in self.run.workers]
        return (
            np.asarray([p[0] for p in pairs], dtype=np.int64),
            np.asarray([p[1] for p in pairs], dtype=np.int64),
        )

    def export_values(self) -> Dict[VertexId, Any]:
        raise NotImplementedError


class _RaggedStateBase(BatchPlane):
    """Per-message-size routing and counter core of the three ragged kinds."""

    def __init__(self, run) -> None:
        super().__init__(run)
        self.bytes_next = np.zeros(run.graph.num_vertices, dtype=np.int64)
        # Per-send-event payload sizes (one entry per sender, aligned with
        # the payload pool entries the subclasses buffer).  The inline path
        # never reads it back -- it is the partial-reduction entry point the
        # process backend serialises so that destination owners can rebuild
        # delivered counts/bytes for their range from the raw streams.
        self._ev_sizes: List[np.ndarray] = []
        # Steady-state delivery cache: ``(dest, refs, derived)`` of the last
        # superstep's routing.  In the common always-active steady state the
        # routing arrays repeat bit for bit every superstep, so the sort /
        # grouping products derived from them are reusable; validity is
        # checked by direct array comparison (memcmp-fast), not by trusting
        # any phase flag.
        self._steady: Optional[Tuple[np.ndarray, np.ndarray, Any]] = None

    # --------------------------------------------------------------- messaging
    def _route(self, worker, senders: np.ndarray, sizes: np.ndarray):
        """Expand senders' out-edges in scalar send order and count them.

        ``sizes[i]`` is the byte size of sender ``i``'s payload (every copy
        along its out-edges has the same size, exactly as the scalar path's
        per-edge ``message_size`` calls report).  Returns ``(destinations,
        degrees, span)`` or None when no edges exist; ``span`` is the
        contiguous ``(start, stop)`` sender range (None for scattered
        senders).
        """
        expanded = self._expand(senders)
        if expanded is None:
            return None
        destinations, degrees, total, span, _ = expanded
        sizes = np.asarray(sizes, dtype=np.int64)
        self._ev_sizes.append(sizes)
        per_edge_sizes = np.repeat(sizes, degrees)
        n = len(self.count_next)
        self.count_next += np.bincount(destinations, minlength=n)
        # Per-vertex byte sums are sums of small ints, exact in float64.
        self.bytes_next += np.bincount(
            destinations, weights=per_edge_sizes, minlength=n
        ).astype(np.int64)

        local_mask, local = self._local_mask(worker, destinations, span)
        local_bytes = int(per_edge_sizes[local_mask].sum())
        total_bytes = int(per_edge_sizes.sum())
        worker.counters.record_sent(total, local, local_bytes, total_bytes - local_bytes)
        self.run._next_message_count += total
        return destinations, degrees, span

    # ------------------------------------------------------------- accounting
    def buffered_for(self, worker):
        """(delivered_messages, delivered_bytes) buffered for ``worker``.

        The ragged plane never runs with a combiner, so delivered equals
        sent: one buffered payload per routed message.  On the partition-native
        layout the worker's vertices are a contiguous range, so both sums run
        over slice views.
        """
        own = self.own_selector(worker.worker_id)
        return int(self.count_next[own].sum()), int(self.bytes_next[own].sum())

    def buffered_all(self):
        """Per-worker delivered ``(messages, bytes)`` arrays for all workers.

        Partition-native layout: two segment-sum passes over the worker
        boundaries; one call replaces ``num_workers`` ``buffered_for`` calls.
        """
        if self.worker_offsets is not None:
            return self._segment_sums(self.count_next), self._segment_sums(self.bytes_next)
        return super().buffered_all()

    def advance(self) -> None:
        super().advance()
        self.bytes_next = np.zeros(len(self.msg_count), dtype=np.int64)
        self._ev_sizes = []

    # ------------------------------------------------------ steady-state cache
    def _steady_lookup(self, dest: np.ndarray, refs: np.ndarray):
        """The cached derived products iff this superstep's routing arrays
        are bit-identical to the last one's, else None."""
        cached = self._steady
        if (
            cached is not None
            and np.array_equal(cached[0], dest)
            and np.array_equal(cached[1], refs)
        ):
            return cached[2]
        return None

    def _steady_store(self, dest: np.ndarray, refs: np.ndarray, derived) -> None:
        self._steady = (dest, refs, derived)


class RaggedBatchContext:
    """API surface shared by the ragged batch contexts.

    The array analogue of :class:`repro.bsp.vertex.VertexContext` for
    variable-size payloads; subclasses add the payload-kind-specific value
    and messaging accessors.
    """

    __slots__ = ("_state", "_worker", "indices", "superstep")

    def __init__(self, state: _RaggedStateBase, worker, indices, superstep: int) -> None:
        self._state = state
        self._worker = worker
        self.indices = indices
        self.superstep = superstep

    @property
    def num_vertices(self) -> int:
        """Global vertex count."""
        return self._state.graph.num_vertices

    @property
    def num_edges(self) -> int:
        """Global edge count."""
        return self._state.graph.num_edges

    @property
    def out_degrees(self) -> np.ndarray:
        """Cached out-degree array of the run graph."""
        return self._state.out_degrees

    @property
    def message_counts(self) -> np.ndarray:
        """Messages received per vertex this superstep (graph-wide array)."""
        return self._state.msg_count

    @property
    def kernels(self):
        """The run's tier-resolved :class:`repro.bsp.kernels.KernelSet`.

        Algorithms route their hot segment kernels through this so the
        compiled tier applies without forking any algorithm code.
        """
        return self._state.kernels

    def aggregate(self, name: str, contributions) -> None:
        """Fold per-vertex contributions into a global aggregator, in order."""
        self._state.run.registry.contribute_many(name, contributions)

    def vote_to_halt(self, mask=None) -> None:
        """Halt all active vertices, or a subset of them.

        ``mask`` selects within the active set: either a boolean mask or a
        positional index array aligned with ``indices``.
        """
        indices = self.indices if mask is None else self.indices[mask]
        self._state.halted[indices] = True


# ------------------------------------------------------------------ rows kind
class RowBatchContext(RaggedBatchContext):
    """Batch context for fixed-width row payloads (e.g. FM sketch vectors)."""

    __slots__ = ()

    @property
    def values(self) -> np.ndarray:
        """Global ``(n, width)`` vertex-value matrix (index with ``indices``)."""
        return self._state.values

    @property
    def incoming(self) -> np.ndarray:
        """Destination-wise reduced rows delivered this superstep."""
        return self._state.acc

    def send_rows_to_all_neighbors(self, senders, rows, sizes) -> None:
        """Send row ``rows[i]`` along every out-edge of ``senders[i]``."""
        self._state.send_rows(self._worker, senders, rows, sizes)


class RowReduceState(_RaggedStateBase):
    """Fixed-width rows reduced destination-wise with an element-wise ufunc."""

    context_cls = RowBatchContext

    def __init__(self, run, values: np.ndarray) -> None:
        super().__init__(run)
        self.values = values
        reducer = getattr(run.algorithm, "batch_row_reducer", "bitwise_or")
        if reducer not in ROW_REDUCERS:
            raise BSPError(f"unsupported batch_row_reducer {reducer!r}")
        self._reduce, self._neutral = ROW_REDUCERS[reducer]
        shape = values.shape
        self.acc = np.full(shape, self._neutral, dtype=values.dtype)
        self.acc_next = np.full(shape, self._neutral, dtype=values.dtype)
        self._ev_dest: List[np.ndarray] = []
        self._ev_ref: List[np.ndarray] = []
        self._ev_rows: List[np.ndarray] = []
        self._ev_vspan: List[Optional[tuple]] = []
        self._ev_row_base = 0
        # Cached destination grouping of the *whole* edge stream (the
        # reverse-CSR structure): constant per run, built on the first
        # full-graph superstep.
        self._rev_group: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def send_rows(self, worker, senders, rows, sizes) -> None:
        routed = self._route(worker, senders, sizes)
        if routed is None:
            return
        destinations, degrees, span = routed
        # Buffer the send events; the destination-wise fold happens once per
        # superstep in _commit_superstep.  Only sender *references* are
        # repeated per edge here -- rows are gathered after the sort.
        refs = np.repeat(
            np.arange(len(senders), dtype=np.int64) + self._ev_row_base, degrees
        )
        self._ev_dest.append(destinations)
        self._ev_ref.append(refs)
        self._ev_rows.append(np.asarray(rows))
        self._ev_vspan.append(span)
        self._ev_row_base += len(senders)

    def _commit_superstep(self) -> None:
        if not self._ev_dest:
            return
        # Destination-sort + reduceat instead of ufunc.at: group the edge
        # stream by destination (stable, though the reducers are commutative
        # and exact on ints, so any order yields identical bits), reduce each
        # group in one vectorized pass, and fold the per-destination results
        # into the accumulator with a single fancy-indexed assignment.
        spans = self._ev_vspan
        n = len(self.acc_next)
        tiled_full = (
            all(span is not None for span in spans)
            and spans[0][0] == 0
            and spans[-1][1] == n
            and all(spans[i][1] == spans[i + 1][0] for i in range(len(spans) - 1))
        )
        if len(self._ev_rows) == 1:
            pool = self._ev_rows[0]
        else:
            pool = np.concatenate(self._ev_rows, axis=0)
        if tiled_full:
            # Full-graph steady state (every vertex sends every superstep, the
            # common case for sketch propagation): the destination stream is
            # the CSR targets array and pool row i is vertex i's payload, so
            # the sort is a constant of the frozen layout -- computed once,
            # leaving one row gather + one reduceat per superstep.
            if self._rev_group is None:
                # Non-stable sort: the reducers are commutative and exact on
                # ints, so the within-group order cannot change the result.
                order = np.argsort(self.targets)
                sorted_dest = self.targets[order]
                group_starts = np.flatnonzero(
                    np.concatenate(([True], sorted_dest[1:] != sorted_dest[:-1]))
                )
                sources = np.repeat(
                    np.arange(n, dtype=np.int64), self.out_degrees
                )[order]
                self._rev_group = (group_starts, sorted_dest[group_starts], sources)
            group_starts, unique_dest, edge_rows = self._rev_group
        else:
            if len(self._ev_dest) == 1:
                dest, refs = self._ev_dest[0], self._ev_ref[0]
            else:
                dest = np.concatenate(self._ev_dest)
                refs = np.concatenate(self._ev_ref)
            derived = self._steady_lookup(dest, refs)
            if derived is None:
                order = np.argsort(dest)  # non-stable: commutative exact reducers
                sorted_dest = dest[order]
                group_starts = np.flatnonzero(
                    np.concatenate(([True], sorted_dest[1:] != sorted_dest[:-1]))
                )
                derived = (group_starts, sorted_dest[group_starts], refs[order])
                self._steady_store(dest, refs, derived)
            group_starts, unique_dest, edge_rows = derived
        self._ev_dest = []
        self._ev_ref = []
        self._ev_rows = []
        self._ev_vspan = []
        self._ev_row_base = 0
        reduced = self._reduce.reduceat(pool[edge_rows], group_starts, axis=0)
        self.acc_next[unique_dest] = self._reduce(self.acc_next[unique_dest], reduced)

    def _advance_payloads(self) -> None:
        self.acc = self.acc_next
        self.acc_next = np.full(self.values.shape, self._neutral, dtype=self.values.dtype)

    def export_values(self) -> Dict[VertexId, Any]:
        return dict(zip(self.ids, (tuple(row) for row in self.values.tolist())))


# ---------------------------------------------------------------- ragged kind
class StreamBatchContext(RaggedBatchContext):
    """Batch context for variable-length numeric row payloads (top-k lists)."""

    __slots__ = ()

    @property
    def values(self) -> Ragged:
        """Global ragged vertex-value rows (one row per vertex)."""
        return self._state.values

    def incoming_elements(self) -> Tuple[np.ndarray, np.ndarray]:
        """Delivered payload elements as ``(data, per-vertex indptr)``.

        ``data[indptr[v]:indptr[v + 1]]`` is the concatenation of every
        payload delivered to vertex ``v`` this superstep, in scalar send
        order.
        """
        return self._state.in_data, self._state.in_elem_indptr

    def set_rows(self, vertex_indices, rows: Ragged) -> None:
        """Stage new value rows; committed at the end of the superstep."""
        self._state.stage_rows(vertex_indices, rows)

    def send_ragged_to_all_neighbors(self, senders, rows: Ragged, sizes) -> None:
        """Send ragged row ``rows[i]`` along every out-edge of ``senders[i]``."""
        self._state.send_ragged(self._worker, senders, rows, sizes)


class RaggedStreamState(_RaggedStateBase):
    """Variable-length numeric payloads delivered in exact scalar send order."""

    context_cls = StreamBatchContext

    def __init__(self, run, values: Ragged) -> None:
        super().__init__(run)
        self.values = values
        n = self.graph.num_vertices
        self.in_data = np.empty(0, dtype=values.data.dtype)
        self.in_elem_indptr = np.zeros(n + 1, dtype=np.int64)
        self._ev_dest: List[np.ndarray] = []
        self._ev_ref: List[np.ndarray] = []
        self._ev_rows: List[Ragged] = []
        self._ev_row_base = 0
        self._staged: List[Tuple[np.ndarray, Ragged]] = []

    def send_ragged(self, worker, senders, rows: Ragged, sizes) -> None:
        routed = self._route(worker, senders, sizes)
        if routed is None:
            return
        destinations, degrees, _ = routed
        refs = np.repeat(
            np.arange(len(senders), dtype=np.int64) + self._ev_row_base, degrees
        )
        self._ev_dest.append(destinations)
        self._ev_ref.append(refs)
        self._ev_rows.append(rows)
        self._ev_row_base += len(senders)

    def stage_rows(self, vertex_indices, rows: Ragged) -> None:
        self._staged.append((np.asarray(vertex_indices, dtype=np.int64), rows))

    def _commit_superstep(self) -> None:
        if not self._staged:
            return
        if len(self._staged) == 1:
            indices, rows = self._staged[0]
        else:
            indices = np.concatenate([idx for idx, _ in self._staged])
            rows = Ragged.concat([rows for _, rows in self._staged])
        self.values = self.values.replace_rows(indices, rows)
        self._staged = []

    def _advance_payloads(self) -> None:
        n = self.graph.num_vertices
        self.in_elem_indptr = np.zeros(n + 1, dtype=np.int64)
        if not self._ev_dest:
            self.in_data = np.empty(0, dtype=self.values.data.dtype)
            return
        dest = np.concatenate(self._ev_dest)
        refs = np.concatenate(self._ev_ref)
        pool = Ragged.concat(self._ev_rows)
        # Stable sort groups messages per destination while preserving the
        # global send order within each vertex's delivery list.  The sorted
        # ref order depends only on the routing arrays, which repeat in the
        # always-active steady state -- reuse it when they do.
        ordered_refs = self._steady_lookup(dest, refs)
        if ordered_refs is None:
            order = np.argsort(dest, kind="stable")
            ordered_refs = refs[order]
            self._steady_store(dest, refs, ordered_refs)
        lengths = pool.lengths[ordered_refs]
        self.in_data = pool.data[
            concat_ranges(pool.offsets[:-1][ordered_refs], lengths)
        ]
        elem_counts = np.bincount(
            dest, weights=pool.lengths[refs], minlength=n
        ).astype(np.int64)
        np.cumsum(elem_counts, out=self.in_elem_indptr[1:])
        self._ev_dest = []
        self._ev_ref = []
        self._ev_rows = []
        self._ev_row_base = 0

    def export_values(self) -> Dict[VertexId, Any]:
        return dict(zip(self.ids, self.values.to_tuples()))


# ---------------------------------------------------------------- object kind
class ObjectBatchContext(RaggedBatchContext):
    """Batch context for arbitrary Python payloads (semi-cluster lists).

    Routing and counters stay vectorized; values and message payloads are
    plain Python objects folded per vertex by the algorithm.
    """

    __slots__ = ()

    def vertex_id(self, i: int) -> VertexId:
        """The vertex id of vertex index ``i``."""
        return self._state.ids[i]

    def out_edges(self, i: int):
        """Outgoing ``(target_id, weight)`` pairs of vertex index ``i``."""
        state = self._state
        return state.graph.out_edges(state.ids[i])

    def value_of(self, i: int) -> Any:
        """Current value of vertex index ``i``."""
        return self._state.values[i]

    def set_value(self, i: int, value: Any) -> None:
        """Update the value of vertex index ``i``."""
        self._state.values[i] = value

    def messages_of(self, i: int) -> List[Any]:
        """Payloads delivered to vertex index ``i``, in scalar send order."""
        return self._state.messages_of(i)

    def send_objects_to_all_neighbors(self, senders, payloads: List[Any]) -> None:
        """Send payload ``payloads[i]`` along every out-edge of ``senders[i]``."""
        self._state.send_objects(self._worker, senders, payloads)


class ObjectState(_RaggedStateBase):
    """Python payload plane: batch routing, per-vertex folds."""

    context_cls = ObjectBatchContext

    def __init__(self, run, values: List[Any]) -> None:
        super().__init__(run)
        self.values = values
        self._pool: List[Any] = []
        self._ev_dest: List[np.ndarray] = []
        self._ev_ref: List[np.ndarray] = []
        self.in_refs = np.empty(0, dtype=np.int64)
        self.in_pool: List[Any] = []
        n = self.graph.num_vertices
        self.in_msg_indptr = np.zeros(n + 1, dtype=np.int64)

    def send_objects(self, worker, senders, payloads: List[Any]) -> None:
        # Per-message sizes via the algorithm's own sizer: one call per
        # sender instead of the scalar path's one call per edge -- every
        # copy of a payload has the same size either way.
        sizer = self.run.message_sizer
        sizes = np.fromiter(
            (sizer(payload) for payload in payloads), dtype=np.int64, count=len(payloads)
        )
        routed = self._route(worker, senders, sizes)
        if routed is None:
            return
        destinations, degrees, _ = routed
        refs = np.repeat(
            np.arange(len(payloads), dtype=np.int64) + len(self._pool), degrees
        )
        self._ev_dest.append(destinations)
        self._ev_ref.append(refs)
        self._pool.extend(payloads)

    def messages_of(self, i: int) -> List[Any]:
        lo = self.in_msg_indptr[i]
        hi = self.in_msg_indptr[i + 1]
        if lo == hi:
            return []
        pool = self.in_pool
        return [pool[j] for j in self.in_refs[lo:hi].tolist()]

    def _advance_payloads(self) -> None:
        n = self.graph.num_vertices
        self.in_msg_indptr = np.zeros(n + 1, dtype=np.int64)
        if not self._ev_dest:
            self.in_refs = np.empty(0, dtype=np.int64)
            self.in_pool = []
            return
        dest = np.concatenate(self._ev_dest)
        refs = np.concatenate(self._ev_ref)
        derived = self._steady_lookup(dest, refs)
        if derived is None:
            order = np.argsort(dest, kind="stable")
            derived = (refs[order], np.bincount(dest, minlength=n))
            self._steady_store(dest, refs, derived)
        self.in_refs, counts = derived
        self.in_pool = self._pool
        np.cumsum(counts, out=self.in_msg_indptr[1:])
        self._pool = []
        self._ev_dest = []
        self._ev_ref = []

    def export_values(self) -> Dict[VertexId, Any]:
        return dict(zip(self.ids, self.values))


# --------------------------------------------------- numeric object fast path
class ClusterRowsContext(StreamBatchContext):
    """Batch context for the numeric fast path of the ``"object"`` kind.

    The payloads are fixed-width numeric *records* (one semi-cluster per
    record) travelling flattened through the ``"ragged"`` delivery machinery,
    so the full :class:`StreamBatchContext` surface applies: ``values`` is
    the global ragged value store (row ``v`` holds vertex ``v``'s records,
    flattened), ``incoming_elements()`` yields the delivered record stream in
    exact scalar send order, ``set_rows`` stages value updates and
    ``send_ragged_to_all_neighbors`` routes record blocks with explicit
    wire-format byte sizes.  On top of that the context exposes the frozen
    graph's CSR arrays -- the vectorized fold consumes adjacency directly
    instead of going through per-vertex ``out_edges`` calls -- and a per-run
    ``cache`` dict where the algorithm keeps run constants (for
    semi-clustering: the record width and the string-rank permutation that
    reproduces the scalar sort tie-break).
    """

    __slots__ = ()

    @property
    def edge_indptr(self) -> np.ndarray:
        """CSR ``indptr`` of the run graph (edge slots of vertex ``i``)."""
        return self._state.indptr

    @property
    def edge_targets(self) -> np.ndarray:
        """CSR ``targets`` of the run graph (destination vertex indices)."""
        return self._state.targets

    @property
    def edge_weights(self) -> np.ndarray:
        """CSR ``weights`` of the run graph, aligned with ``edge_targets``."""
        return self._state.graph.weights

    @property
    def cache(self) -> Dict[str, Any]:
        """Per-run scratch space for algorithm-owned constants."""
        return self._state.cache


class ClusterRowsState(RaggedStreamState):
    """Numeric record plane: the ``"object"`` kind without Python payloads.

    Built instead of :class:`ObjectState` when the algorithm encodes its
    payloads as fixed-width float64 records (see
    ``SemiClustering.encode_numeric_object_plane``) and
    ``EngineConfig.semicluster_numeric`` is on.  Everything below the
    algorithm -- routing, stable per-destination delivery, counter and
    delivered-bytes accounting -- is inherited unchanged from
    :class:`RaggedStreamState`; byte sizes follow the algorithm's *wire
    format* (reported per sender at send time), never the padded in-memory
    record width, so every Table 1 feature matches the scalar path exactly.
    Only value export differs: records decode back into the algorithm's
    Python value objects once, at the end of the run.
    """

    context_cls = ClusterRowsContext

    def __init__(self, run, values: Ragged, decode, cache: Dict[str, Any]) -> None:
        super().__init__(run, values)
        self._decode = decode
        self.cache = cache

    def export_values(self) -> Dict[VertexId, Any]:
        return self._decode(self)


# ------------------------------------------------------------------- factory
def build_ragged_state(run) -> Optional[_RaggedStateBase]:
    """Build the ragged batch state for ``run``, or None when ineligible.

    Ineligibility (non-frozen graph, scalar-only algorithm, an active
    combiner, or values that do not encode into the declared payload kind)
    silently falls back to the per-vertex scalar path, mirroring
    ``_VectorizedState.try_build``.

    For the ``"object"`` kind there is a second, inner dispatch: when the
    engine config leaves ``semicluster_numeric`` on and the algorithm
    provides the numeric-record hooks (``encode_numeric_object_plane`` /
    ``decode_numeric_object_values``), the numeric
    :class:`ClusterRowsState` is built; if the encoder declines (string-id
    rank collisions, oversized clusters, unencodable members) or the flag is
    off, the Python-fold :class:`ObjectState` is used.  Both are
    bit-identical to the scalar path, so the choice is purely a speed/
    baseline trade-off.
    """
    algorithm = run.algorithm
    if not (
        run.engine_config.vectorized
        and getattr(run.graph, "is_frozen", False)
        and callable(getattr(algorithm, "compute_batch", None))
    ):
        return None
    if run.combiner is not None:
        return None
    kind = getattr(algorithm, "batch_payload", "scalar")
    values = [run.values[vertex] for vertex in run.batch_graph().vertices()]
    if kind == "rows":
        try:
            encoded = np.asarray(values, dtype=np.int64)
        except (TypeError, ValueError, OverflowError):
            return None
        if encoded.ndim != 2:
            return None
        return RowReduceState(run, encoded)
    if kind == "ragged":
        try:
            encoded = Ragged.from_rows(values, dtype=np.float64)
        except (TypeError, ValueError):
            return None
        return RaggedStreamState(run, encoded)
    if kind == "object":
        encoder = getattr(algorithm, "encode_numeric_object_plane", None)
        if getattr(run.engine_config, "semicluster_numeric", True) and callable(encoder):
            built = encoder(run.batch_graph(), values, run.config)
            if built is not None:
                encoded, cache = built
                return ClusterRowsState(
                    run, encoded, algorithm.decode_numeric_object_values, cache
                )
        return ObjectState(run, list(values))
    raise BSPError(f"unknown batch_payload kind {kind!r}")
