"""BSP worker: executes the compute function for its partition of vertices.

Each worker owns a set of vertices (decided by the partitioner), a reusable
:class:`VertexContext` and a fresh :class:`WorkerCounters` per superstep.  The
worker does not talk to other workers directly -- all message routing goes
through the engine, which knows the vertex-to-worker assignment and therefore
whether a message is local or remote.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List

import numpy as np

from repro.bsp.counters import WorkerCounters
from repro.bsp.vertex import VertexContext

VertexId = Hashable


class Worker:
    """One BSP worker task (a Giraph mapper slot)."""

    def __init__(self, worker_id: int, vertices: List[VertexId], engine) -> None:
        self.worker_id = worker_id
        self.vertices = vertices
        self._engine = engine
        self._context = VertexContext(engine, self)
        self.counters: WorkerCounters | None = None

    def begin_superstep(self, superstep: int) -> WorkerCounters:
        """Reset the per-superstep counters and return them."""
        self.counters = WorkerCounters(
            worker_id=self.worker_id,
            superstep=superstep,
            total_vertices=len(self.vertices),
        )
        return self.counters

    def execute_superstep(
        self,
        superstep: int,
        incoming: Dict[VertexId, List[Any]],
        halted: set,
        compute,
    ) -> None:
        """Run ``compute`` for every active vertex owned by this worker.

        A vertex is active when it has not voted to halt or when it has
        incoming messages (which re-activate it, per the Pregel model).
        ``compute`` is called as ``compute(context, messages)``.
        """
        context = self._context
        context.superstep = superstep
        counters = self.counters
        for vertex in self.vertices:
            messages = incoming.get(vertex)
            if vertex in halted:
                if not messages:
                    continue
                # Incoming messages re-activate a halted vertex.
                halted.discard(vertex)
            counters.active_vertices += 1
            context._bind(vertex, superstep)
            compute(context, messages or [])

    def select_active(
        self, own: np.ndarray, halted: np.ndarray, message_counts: np.ndarray
    ) -> np.ndarray:
        """Vectorized activation rule for the engine's batch superstep path.

        ``own`` are this worker's vertex indices in partition order; ``halted``
        and ``message_counts`` are graph-wide arrays.  Applies exactly the
        scalar rule of :meth:`execute_superstep`: a vertex is active when it
        has not voted to halt or when it has incoming messages (which clear
        its halt vote), and ``active_vertices`` counts the vertices selected.
        """
        has_messages = message_counts[own] > 0
        halted_own = halted[own]
        reactivated = own[halted_own & has_messages]
        if len(reactivated):
            halted[reactivated] = False
        active = own[~halted_own | has_messages]
        self.counters.active_vertices = len(active)
        return active

    def select_active_range(
        self, start: int, stop: int, halted: np.ndarray, message_counts: np.ndarray
    ) -> np.ndarray:
        """:meth:`select_active` for a partition-contiguous vertex range.

        On a partition-native graph layout this worker owns exactly the index
        range ``[start, stop)``, so activation works on array *slices* (views)
        instead of fancy-index gathers.  Same rule, same counter update.
        """
        halted_own = halted[start:stop]
        has_messages = message_counts[start:stop] > 0
        # ``halted_own`` is a view into ``halted``; materialise the activation
        # mask before clearing the halt votes below mutates it.
        active_mask = ~halted_own | has_messages
        reactivated = halted_own & has_messages
        if reactivated.any():
            halted_own[reactivated] = False
        active = np.flatnonzero(active_mask) + start
        self.counters.active_vertices = len(active)
        return active
