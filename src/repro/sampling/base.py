"""Sampler interface and shared random-walk machinery.

Every sampler picks a set of vertices whose size satisfies the requested
sampling ratio and returns a :class:`SampleResult`: the picked vertices, the
induced sample subgraph and bookkeeping (walks performed, restarts, ...).

The paper's samplers are all walk-based, so the base class provides the
common loop: maintain a current vertex, follow a random outgoing edge, restart
with probability ``restart_probability`` (p = 0.15 in the evaluation), and
jump out of dead ends (vertices without outgoing edges).  The loop itself
lives in :mod:`repro.sampling.walkers`: all per-step randomness is consumed
as uniform doubles from a block-refilled :class:`~repro.sampling.walkers.DrawStream`,
and on frozen (CSR) graphs the walk steps through the adjacency arrays
directly.  A seeded sampler therefore picks the identical vertex set on a
``DiGraph`` and on its frozen counterpart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.exceptions import SamplingError
from repro.graph.digraph import DiGraph, VertexId
from repro.sampling.induced import induced_sample
from repro.sampling.walkers import DrawStream, walk_with_restart
from repro.utils.rng import SeedLike, make_rng


@dataclass
class SampleResult:
    """The outcome of sampling a graph."""

    technique: str
    ratio: float
    vertices: List[VertexId]
    graph: DiGraph
    seed_vertices: List[VertexId] = field(default_factory=list)
    num_walks: int = 0
    num_steps: int = 0
    metadata: Dict[str, float] = field(default_factory=dict)

    @property
    def num_vertices(self) -> int:
        """Number of sampled vertices."""
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        """Number of edges in the induced sample graph."""
        return self.graph.num_edges

    def vertex_scaling_factor(self, original: DiGraph) -> float:
        """The extrapolation factor on vertices ``eV = |V_G| / |V_S|``."""
        return original.num_vertices / max(1, self.num_vertices)

    def edge_scaling_factor(self, original: DiGraph) -> float:
        """The extrapolation factor on edges ``eE = |E_G| / |E_S|``."""
        return original.num_edges / max(1, self.num_edges)


class VertexSampler:
    """Interface: sample a fraction of a graph's vertices."""

    #: Name used by the registry and the sensitivity benchmarks.
    name: str = "sampler"

    def __init__(self, restart_probability: float = 0.15, seed: SeedLike = None) -> None:
        if not 0.0 < restart_probability <= 1.0:
            raise SamplingError("restart_probability must be in (0, 1]")
        self.restart_probability = restart_probability
        self.seed = seed

    # ------------------------------------------------------------------ API
    def sample(self, graph: DiGraph, ratio: float) -> SampleResult:
        """Sample ``ratio`` of the graph's vertices and return the result."""
        self._validate(graph, ratio)
        rng = make_rng(self.seed)
        target = self.target_size(graph, ratio)
        picked, stats = self._pick_vertices(graph, target, rng)
        if len(picked) < target:
            raise SamplingError(
                f"{self.name} picked only {len(picked)} of {target} requested vertices"
            )
        sample_graph = induced_sample(graph, picked, name=f"{graph.name}-{self.name}-{ratio}")
        return SampleResult(
            technique=self.name,
            ratio=ratio,
            vertices=picked,
            graph=sample_graph,
            seed_vertices=stats.get("seeds", []),
            num_walks=int(stats.get("walks", 0)),
            num_steps=int(stats.get("steps", 0)),
        )

    def _pick_vertices(self, graph: DiGraph, target: int, rng) -> tuple:
        """Return ``(picked_vertices, stats_dict)``; implemented by subclasses."""
        raise NotImplementedError

    # -------------------------------------------------------------- helpers
    @staticmethod
    def target_size(graph: DiGraph, ratio: float) -> int:
        """Number of vertices a sample of ``ratio`` must contain."""
        return max(1, int(round(graph.num_vertices * ratio)))

    @staticmethod
    def _validate(graph: DiGraph, ratio: float) -> None:
        if graph.num_vertices == 0:
            raise SamplingError("cannot sample an empty graph")
        if not 0.0 < ratio <= 1.0:
            raise SamplingError(f"sampling ratio must be in (0, 1], got {ratio}")

    @staticmethod
    def _uniform_vertex(vertices: Sequence[VertexId], rng) -> VertexId:
        return vertices[int(rng.integers(0, len(vertices)))]

    @staticmethod
    def _random_successor(graph: DiGraph, vertex: VertexId, rng) -> Optional[VertexId]:
        """A uniformly random out-neighbour of ``vertex`` (None at dead ends).

        Uses ``successor_at`` so that walks over a frozen (CSR) graph index
        straight into the adjacency arrays instead of materialising a
        successor list per step.  The RNG draw is identical either way, so a
        seeded walk picks the same vertices on both representations.
        """
        degree = graph.out_degree(vertex)
        if degree == 0:
            return None
        return graph.successor_at(vertex, int(rng.integers(0, degree)))

    def _walk_until(
        self,
        graph: DiGraph,
        target: int,
        rng,
        seed_pool: Sequence[VertexId],
        accept_step=None,
    ) -> tuple:
        """Shared walk-with-restart loop (see :mod:`repro.sampling.walkers`).

        New walks start at a uniformly random member of ``seed_pool``.
        ``accept_step(current, proposed, draw)`` may veto a proposed move
        (Metropolis-Hastings) using one uniform draw; None accepts every
        move.  Vertices visited by the walk are added to the sample until
        ``target`` distinct vertices are collected.
        """
        stream = DrawStream(rng)
        picked, stats = walk_with_restart(
            graph, target, stream, seed_pool,
            restart_probability=self.restart_probability,
            accept_step=accept_step,
        )

        if len(picked) < target:
            # The walk got stuck (e.g. tiny strongly-connected region); fill
            # the remainder uniformly at random so the requested ratio is met.
            picked_set = set(picked)
            remaining = [v for v in graph.vertices() if v not in picked_set]
            rng.shuffle(remaining)
            for vertex in remaining[: target - len(picked)]:
                self._add(vertex, picked, picked_set)

        return picked, stats

    @staticmethod
    def _add(vertex: VertexId, picked: List[VertexId], picked_set: set) -> None:
        if vertex not in picked_set:
            picked_set.add(vertex)
            picked.append(vertex)
