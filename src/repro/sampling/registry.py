"""Name-based registry of sampling techniques (used by the Fig. 9 benches)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.exceptions import ConfigurationError
from repro.sampling.base import VertexSampler
from repro.sampling.biased_random_jump import BiasedRandomJump
from repro.sampling.forest_fire import ForestFire
from repro.sampling.mhrw import MetropolisHastingsRandomWalk
from repro.sampling.random_jump import RandomJump
from repro.sampling.random_walk import RandomWalkSampler
from repro.utils.rng import SeedLike

_FACTORIES: Dict[str, Callable[[SeedLike], VertexSampler]] = {
    "BRJ": lambda seed: BiasedRandomJump(seed=seed),
    "RJ": lambda seed: RandomJump(seed=seed),
    "MHRW": lambda seed: MetropolisHastingsRandomWalk(seed=seed),
    "RW": lambda seed: RandomWalkSampler(seed=seed),
    "FF": lambda seed: ForestFire(seed=seed),
}


def available_samplers() -> List[str]:
    """Return the names of all registered sampling techniques."""
    return list(_FACTORIES)


def sampler_by_name(name: str, seed: SeedLike = None) -> VertexSampler:
    """Instantiate the sampler registered under ``name``."""
    key = name.upper()
    if key not in _FACTORIES:
        raise ConfigurationError(
            f"unknown sampler {name!r}; available: {', '.join(_FACTORIES)}"
        )
    return _FACTORIES[key](seed)
