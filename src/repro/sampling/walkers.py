"""Batched random-walk machinery shared by the walk-based samplers.

The walk-with-restart chain is inherently sequential -- each step depends on
the vertex reached by the previous one -- so the speedup comes from two
sides:

* **Batched RNG draws.**  All per-step randomness (restart tests, successor
  choices, seed picks, Metropolis-Hastings accept tests) consumes uniform
  doubles from a :class:`DrawStream`, which refills from the NumPy generator
  in blocks (``rng.random(block)``) instead of one scalar call per draw.
  Block draws produce exactly the same value sequence as repeated scalar
  ``rng.random()`` calls, so a seeded walk is reproducible regardless of how
  the stream is chunked.
* **CSR-row stepping.**  On a frozen graph the walk runs over vertex
  *indices*: out-degrees come from ``indptr`` differences and successors
  from direct ``targets`` slots, with the arrays converted to Python lists
  once per walk (list indexing beats both per-step NumPy scalar access and
  the id-keyed protocol lookups).

Both the CSR walk and the protocol walk (used for unfrozen graphs and for
samplers with an accept hook, i.e. MHRW) consume the stream in exactly the
same order, so a seeded sampler picks the *identical* vertex set on a graph
and on its frozen counterpart -- ``tests/test_sampling_vectorized.py`` pins
that equivalence.

Draw protocol (per step)
------------------------
1. one draw ``u``: restart when ``u < restart_probability``;
2. a move consumes one more draw ``c`` and steps to out-edge
   ``floor(c * out_degree)`` (no draw at dead ends);
3. a restart or dead end consumes one draw ``s`` and starts a new walk at
   ``seed_pool[floor(s * len(seed_pool))]``;
4. an accept hook (MHRW) consumes one draw per proposed move.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.graph.digraph import VertexId

#: ``accept_step(current, proposed, draw) -> bool`` -- Metropolis-Hastings
#: style veto over a proposed move, fed one uniform draw.
AcceptStep = Callable[[VertexId, VertexId, float], bool]


class DrawStream:
    """Uniform [0, 1) draws served from block-refilled buffers.

    Equivalent to calling ``rng.random()`` once per draw: NumPy generators
    fill ``random(size)`` from the same bit stream element by element, so
    chunking does not change the values -- it only amortises the per-call
    overhead across ``block`` draws.

    The shared generator's state after a walk does depend on how many full
    blocks were pulled (unused tail draws are discarded), so the ``block``
    default is part of the seeded-reproducibility contract: changing it
    changes every sample set whose walk falls through to the uniform
    fill-up path in ``VertexSampler._walk_until`` (which draws from the
    same generator).
    """

    __slots__ = ("_rng", "_block", "_buffer", "_position")

    def __init__(self, rng, block: int = 4096) -> None:
        self._rng = rng
        self._block = block
        self._buffer: List[float] = []
        self._position = 0

    def draw(self) -> float:
        """Return the next uniform double from the stream."""
        if self._position >= len(self._buffer):
            self._buffer = self._rng.random(self._block).tolist()
            self._position = 0
        value = self._buffer[self._position]
        self._position += 1
        return value


def walk_with_restart(
    graph,
    target: int,
    stream: DrawStream,
    seed_pool: Sequence[VertexId],
    restart_probability: float,
    accept_step: Optional[AcceptStep] = None,
    max_steps: Optional[int] = None,
) -> Tuple[List[VertexId], dict]:
    """Collect up to ``target`` distinct vertices by walk-with-restart.

    Dispatches to the CSR index walk on frozen graphs (when no accept hook
    is involved) and to the id-protocol walk otherwise; both consume the
    draw stream identically.
    """
    if max_steps is None:
        max_steps = max(1000, 200 * target)
    if accept_step is None and getattr(graph, "is_frozen", False):
        return _walk_csr(graph, target, stream, seed_pool, restart_probability, max_steps)
    return _walk_protocol(
        graph, target, stream, seed_pool, restart_probability, accept_step, max_steps
    )


def _walk_csr(
    graph, target, stream, seed_pool, restart_probability, max_steps
) -> Tuple[List[VertexId], dict]:
    """Index-domain walk over the frozen graph's CSR rows."""
    index = graph.index
    ids = graph.ids
    indptr, targets = graph.walk_adjacency()
    seeds = [index[vertex] for vertex in seed_pool]
    num_seeds = len(seeds)
    seen = bytearray(len(ids))
    picked: List[int] = []
    draw = stream.draw

    current = seeds[int(draw() * num_seeds)]
    walks = 1
    seen[current] = 1
    picked.append(current)
    steps = 0

    while len(picked) < target and steps < max_steps:
        steps += 1
        if draw() < restart_probability:
            current = seeds[int(draw() * num_seeds)]
            walks += 1
        else:
            low = indptr[current]
            degree = indptr[current + 1] - low
            if degree == 0:
                current = seeds[int(draw() * num_seeds)]
                walks += 1
            else:
                current = targets[low + int(draw() * degree)]
        if not seen[current]:
            seen[current] = 1
            picked.append(current)

    return [ids[i] for i in picked], {"walks": walks, "steps": steps}


def _walk_protocol(
    graph, target, stream, seed_pool, restart_probability, accept_step, max_steps
) -> Tuple[List[VertexId], dict]:
    """Id-domain walk through the ``DiGraph`` protocol (any graph type)."""
    num_seeds = len(seed_pool)
    picked: List[VertexId] = []
    picked_set = set()
    draw = stream.draw

    def add(vertex) -> None:
        if vertex not in picked_set:
            picked_set.add(vertex)
            picked.append(vertex)

    current = seed_pool[int(draw() * num_seeds)]
    walks = 1
    add(current)
    steps = 0

    while len(picked) < target and steps < max_steps:
        steps += 1
        if draw() < restart_probability:
            current = seed_pool[int(draw() * num_seeds)]
            walks += 1
            add(current)
            continue
        degree = graph.out_degree(current)
        if degree == 0:
            current = seed_pool[int(draw() * num_seeds)]
            walks += 1
            add(current)
            continue
        proposed = graph.successor_at(current, int(draw() * degree))
        if accept_step is not None and not accept_step(current, proposed, draw()):
            continue
        current = proposed
        add(current)

    return picked, {"walks": walks, "steps": steps}
