"""Biased Random Jump (BRJ) sampling -- the paper's default technique.

BRJ differs from Random Jump in how walks are (re)started: instead of jumping
to an arbitrary vertex, BRJ picks ``k`` *seed vertices* in decreasing order of
out-degree (k = 1% of the vertices in the evaluation) and every new walk
starts from one of those hubs, chosen uniformly at random.

The intuition (§3.2.1): the convergence of the algorithms PREDIcT targets is
"dictated" by highly connected vertices, so biasing the sample towards the
core of the network keeps the sample connected and preserves the properties
that determine the number of iterations, especially at small sampling ratios
where uniform jumps tend to fragment the sample.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SamplingError
from repro.graph.digraph import DiGraph
from repro.sampling.base import VertexSampler
from repro.utils.rng import SeedLike


class BiasedRandomJump(VertexSampler):
    """Random walks restarted from the highest out-degree vertices."""

    name = "BRJ"

    def __init__(
        self,
        restart_probability: float = 0.15,
        seed_fraction: float = 0.01,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(restart_probability=restart_probability, seed=seed)
        if not 0.0 < seed_fraction <= 1.0:
            raise SamplingError("seed_fraction must be in (0, 1]")
        self.seed_fraction = seed_fraction

    def _pick_vertices(self, graph: DiGraph, target: int, rng):
        seeds = self.select_seeds(graph)
        picked, stats = self._walk_until(graph, target, rng, seeds)
        stats["seeds"] = seeds
        return picked, stats

    def select_seeds(self, graph: DiGraph):
        """Return the top ``seed_fraction`` of vertices by out-degree.

        On a frozen graph the ranking is an array argsort over the cached
        out-degree vector; a stable descending sort keeps ties in vertex
        order, exactly like the Python ``sorted(..., reverse=True)`` the
        unfrozen path uses.
        """
        num_seeds = max(1, int(round(graph.num_vertices * self.seed_fraction)))
        if getattr(graph, "is_frozen", False):
            order = np.argsort(-graph.out_degrees, kind="stable")[:num_seeds]
            ids = graph.ids
            return [ids[i] for i in order.tolist()]
        ranked = sorted(graph.vertices(), key=graph.out_degree, reverse=True)
        return ranked[:num_seeds]
