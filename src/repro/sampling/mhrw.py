"""Metropolis-Hastings Random Walk (MHRW) sampling.

The technique of Gjoka et al. used in the paper's sensitivity analysis
(Fig. 9): a random walk whose transitions are corrected with the
Metropolis-Hastings acceptance rule so that the stationary distribution over
vertices is uniform, i.e. the walk's inherent bias towards high-degree
vertices is removed.  A proposed move from ``v`` to ``w`` is accepted with
probability ``min(1, degree(v) / degree(w))``; otherwise the walk stays at
``v``.  Like the other samplers it restarts with probability ``p``.
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph
from repro.sampling.base import VertexSampler


class MetropolisHastingsRandomWalk(VertexSampler):
    """Degree-unbiased random walk sampling."""

    name = "MHRW"

    def _pick_vertices(self, graph: DiGraph, target: int, rng):
        vertices = list(graph.vertices())

        def accept_step(current, proposed, draw: float) -> bool:
            current_degree = max(1, graph.out_degree(current))
            proposed_degree = max(1, graph.out_degree(proposed))
            acceptance = min(1.0, current_degree / proposed_degree)
            return draw < acceptance

        picked, stats = self._walk_until(graph, target, rng, vertices, accept_step=accept_step)
        stats["seeds"] = []
        return picked, stats
