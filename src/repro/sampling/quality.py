"""Sample quality assessment.

The paper's sampling requirements (§4.1) are that the sample maintain
connectivity, in/out-degree proportionality and effective diameter similar
(or proportional) to the original graph.  :func:`quality_report` measures all
three, plus the Kolmogorov-Smirnov D-statistics between degree distributions
used by Leskovec & Faloutsos, so that users can diagnose *why* a sample run
mispredicted before blaming the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.graph.digraph import DiGraph
from repro.graph.properties import (
    degree_d_statistics,
    effective_diameter,
    largest_wcc_fraction,
)
from repro.sampling.base import SampleResult


@dataclass(frozen=True)
class SampleQuality:
    """Comparison of a sample graph against its original."""

    technique: str
    ratio: float
    out_degree_d_statistic: float
    in_degree_d_statistic: float
    diameter_original: float
    diameter_sample: float
    wcc_fraction_original: float
    wcc_fraction_sample: float
    average_out_degree_original: float
    average_out_degree_sample: float

    @property
    def diameter_preserved(self) -> bool:
        """True when the sample diameter is within +/-35% of the original."""
        if self.diameter_original == 0:
            return self.diameter_sample == 0
        deviation = abs(self.diameter_sample - self.diameter_original) / self.diameter_original
        return deviation <= 0.35

    @property
    def connectivity_preserved(self) -> bool:
        """True when the sample's largest WCC covers a similar vertex fraction."""
        return self.wcc_fraction_sample >= 0.6 * self.wcc_fraction_original

    def as_dict(self) -> Dict[str, float]:
        """Flatten the report for tabular output."""
        return {
            "technique": self.technique,
            "ratio": self.ratio,
            "D_out_degree": round(self.out_degree_d_statistic, 4),
            "D_in_degree": round(self.in_degree_d_statistic, 4),
            "diameter_original": round(self.diameter_original, 2),
            "diameter_sample": round(self.diameter_sample, 2),
            "wcc_original": round(self.wcc_fraction_original, 3),
            "wcc_sample": round(self.wcc_fraction_sample, 3),
        }


def quality_report(original: DiGraph, sample: SampleResult, seed: int = 13) -> SampleQuality:
    """Compute the :class:`SampleQuality` of ``sample`` w.r.t. ``original``."""
    d_stats = degree_d_statistics(original, sample.graph)
    return SampleQuality(
        technique=sample.technique,
        ratio=sample.ratio,
        out_degree_d_statistic=d_stats["out_degree"],
        in_degree_d_statistic=d_stats["in_degree"],
        diameter_original=effective_diameter(original, seed=seed),
        diameter_sample=effective_diameter(sample.graph, seed=seed),
        wcc_fraction_original=largest_wcc_fraction(original),
        wcc_fraction_sample=largest_wcc_fraction(sample.graph),
        average_out_degree_original=(
            original.num_edges / original.num_vertices if original.num_vertices else 0.0
        ),
        average_out_degree_sample=(
            sample.graph.num_edges / sample.graph.num_vertices
            if sample.graph.num_vertices
            else 0.0
        ),
    )
