"""Plain Random Walk (RW) sampling with restart to the walk's own seed.

The classic Leskovec & Faloutsos random-walk sampler: the walk restarts (with
probability ``p``) at the *same* seed vertex rather than jumping to a random
one.  When the walk gets stuck (the sample stops growing for a while), a new
seed is drawn -- otherwise a single poorly-connected seed could prevent the
sampler from ever reaching the requested ratio.
"""

from __future__ import annotations

from typing import List

from repro.graph.digraph import DiGraph, VertexId
from repro.sampling.base import VertexSampler


class RandomWalkSampler(VertexSampler):
    """Random walk with restart to the current seed."""

    name = "RW"

    #: Number of consecutive non-growing steps after which a new seed is drawn.
    STALL_LIMIT = 100

    def _pick_vertices(self, graph: DiGraph, target: int, rng):
        vertices = list(graph.vertices())
        picked: List[VertexId] = []
        picked_set = set()
        walks = 0
        steps = 0
        max_steps = max(1000, 200 * target)

        seed_vertex = self._uniform_vertex(vertices, rng)
        current = seed_vertex
        walks += 1
        self._add(current, picked, picked_set)
        stalled = 0

        while len(picked) < target and steps < max_steps:
            steps += 1
            before = len(picked)
            if rng.random() < self.restart_probability:
                current = seed_vertex
            else:
                proposed = self._random_successor(graph, current, rng)
                if proposed is None:
                    current = seed_vertex
                else:
                    current = proposed
                    self._add(current, picked, picked_set)
            if len(picked) == before:
                stalled += 1
                if stalled >= self.STALL_LIMIT:
                    seed_vertex = self._uniform_vertex(vertices, rng)
                    current = seed_vertex
                    walks += 1
                    self._add(current, picked, picked_set)
                    stalled = 0
            else:
                stalled = 0

        if len(picked) < target:
            remaining = [v for v in graph.vertices() if v not in picked_set]
            rng.shuffle(remaining)
            for vertex in remaining[: target - len(picked)]:
                self._add(vertex, picked, picked_set)

        return picked, {"walks": walks, "steps": steps, "seeds": []}
