"""Graph sampling techniques used for PREDIcT's sample runs.

The sample run executes the algorithm on a small sample of the input graph, so
the sampling technique must preserve the graph properties that drive
convergence (connectivity, in/out-degree proportionality, effective diameter).
Following §3.2.1 of the paper we implement:

* :class:`RandomJump` (RJ) -- random walks with uniform restarts, the
  Leskovec & Faloutsos technique the paper starts from;
* :class:`BiasedRandomJump` (BRJ) -- the paper's contribution: walks restart
  only from the top out-degree "hub" vertices, trading sampling uniformity for
  connectivity; the paper's default;
* :class:`MetropolisHastingsRandomWalk` (MHRW) -- the unbiased-degree walk
  used in the Fig. 9 sensitivity analysis;
* :class:`RandomWalkSampler` and :class:`ForestFire` -- additional standard
  techniques, useful for ablations;
* :func:`repro.sampling.induced.induced_sample` -- turns the picked vertex set
  into an induced sample subgraph;
* :mod:`repro.sampling.quality` -- D-statistics and property-preservation
  reports comparing sample and original graphs.
"""

from repro.sampling.base import SampleResult, VertexSampler
from repro.sampling.biased_random_jump import BiasedRandomJump
from repro.sampling.forest_fire import ForestFire
from repro.sampling.mhrw import MetropolisHastingsRandomWalk
from repro.sampling.random_jump import RandomJump
from repro.sampling.random_walk import RandomWalkSampler
from repro.sampling.registry import available_samplers, sampler_by_name

__all__ = [
    "VertexSampler",
    "SampleResult",
    "RandomJump",
    "BiasedRandomJump",
    "MetropolisHastingsRandomWalk",
    "RandomWalkSampler",
    "ForestFire",
    "sampler_by_name",
    "available_samplers",
]
