"""Forest Fire (FF) sampling.

The burning-process sampler of Leskovec & Faloutsos: starting from a random
seed, the fire "burns" a geometrically-distributed number of the current
vertex's outgoing edges, recursively spreading to the burnt targets.  When the
fire dies out, a new seed is ignited.  Forest fire preserves community
structure well and is included as an additional baseline for the sampling
sensitivity ablations.
"""

from __future__ import annotations

from collections import deque
from typing import List

from repro.exceptions import SamplingError
from repro.graph.digraph import DiGraph, VertexId
from repro.sampling.base import VertexSampler
from repro.utils.rng import SeedLike


class ForestFire(VertexSampler):
    """Recursive edge-burning sampler."""

    name = "FF"

    def __init__(
        self,
        forward_probability: float = 0.7,
        restart_probability: float = 0.15,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(restart_probability=restart_probability, seed=seed)
        if not 0.0 < forward_probability < 1.0:
            raise SamplingError("forward_probability must be in (0, 1)")
        self.forward_probability = forward_probability

    def _pick_vertices(self, graph: DiGraph, target: int, rng):
        vertices = list(graph.vertices())
        picked: List[VertexId] = []
        picked_set = set()
        walks = 0
        steps = 0

        while len(picked) < target:
            seed_vertex = self._uniform_vertex(vertices, rng)
            walks += 1
            if seed_vertex in picked_set:
                steps += 1
                if steps > 50 * target:
                    break
                continue
            queue = deque([seed_vertex])
            self._add(seed_vertex, picked, picked_set)
            while queue and len(picked) < target:
                steps += 1
                vertex = queue.popleft()
                successors = [s for s in graph.successors(vertex) if s not in picked_set]
                if not successors:
                    continue
                # Geometric number of burnt neighbours with mean pf / (1 - pf).
                num_burn = int(rng.geometric(1.0 - self.forward_probability))
                rng.shuffle(successors)
                for neighbour in successors[:num_burn]:
                    if len(picked) >= target:
                        break
                    self._add(neighbour, picked, picked_set)
                    queue.append(neighbour)

        if len(picked) < target:
            remaining = [v for v in graph.vertices() if v not in picked_set]
            rng.shuffle(remaining)
            for vertex in remaining[: target - len(picked)]:
                self._add(vertex, picked, picked_set)

        return picked, {"walks": walks, "steps": steps, "seeds": []}
