"""Random Jump (RJ) sampling.

The technique from Leskovec & Faloutsos that the paper adopts as a baseline:
a random walk over outgoing edges that, with probability ``p`` (0.15 in the
evaluation), jumps to a *uniformly random* vertex and starts a new walk.
Jumping (rather than restarting at the same seed) guarantees the walk cannot
get stuck in an isolated region, while returning to already-visited vertices
over different edges preserves connectivity and in/out-degree proportionality
reasonably well.
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph
from repro.sampling.base import VertexSampler


class RandomJump(VertexSampler):
    """Random walk with uniform random jumps."""

    name = "RJ"

    def _pick_vertices(self, graph: DiGraph, target: int, rng):
        vertices = list(graph.vertices())
        picked, stats = self._walk_until(graph, target, rng, vertices)
        stats["seeds"] = []
        return picked, stats
