"""Materialising a sample graph from a set of picked vertices.

All the samplers pick *vertices*; the sample graph handed to the sample run is
the subgraph induced by those vertices (edges whose endpoints are both in the
sample).  Isolated helper so that alternative materialisations (e.g. keeping
walked edges only) can be added without touching the samplers.
"""

from __future__ import annotations

from typing import Sequence

from repro.graph.digraph import DiGraph, VertexId


def induced_sample(graph: DiGraph, vertices: Sequence[VertexId], name: str | None = None) -> DiGraph:
    """Return the subgraph of ``graph`` induced by ``vertices``."""
    return graph.subgraph(vertices, name=name)
