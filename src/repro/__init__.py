"""PREDIcT: predicting the runtime of large-scale iterative analytics.

A from-scratch reproduction of Popescu, Balmin, Ercegovac and Ailamaki,
"PREDIcT: Towards Predicting the Runtime of Large Scale Iterative Analytics",
PVLDB 6(13), 2013.

The package is organised as follows:

* :mod:`repro.graph` -- graph substrate (data structure, generators, stand-in
  datasets, properties, partitioning, I/O);
* :mod:`repro.cluster` -- the simulated cluster (specs, cost profile, network
  and memory models) standing in for the paper's 10-node Giraph deployment;
* :mod:`repro.bsp` -- the Pregel/Giraph-style BSP execution engine with
  per-worker, per-superstep key-input-feature counters and a critical-path
  runtime model;
* :mod:`repro.algorithms` -- PageRank, semi-clustering, top-k ranking,
  connected components and neighborhood estimation;
* :mod:`repro.sampling` -- Random Jump, Biased Random Jump, MHRW, Random Walk
  and Forest Fire graph samplers plus sample-quality reports;
* :mod:`repro.core` -- PREDIcT itself: transform functions, sample runs,
  feature extrapolation, the regression-based cost model with forward feature
  selection, the history store and the end-to-end predictor;
* :mod:`repro.experiments` -- the harness that regenerates every table and
  figure of the paper's evaluation.

Quickstart
----------
>>> from repro import BSPEngine, PageRank, PageRankConfig, Predictor
>>> from repro.graph.datasets import load_dataset
>>> graph = load_dataset("wikipedia", scale=0.25)
>>> engine = BSPEngine()
>>> algorithm = PageRank()
>>> config = PageRankConfig.for_tolerance_level(0.001, graph.num_vertices)
>>> predictor = Predictor(engine, algorithm)
>>> prediction = predictor.predict(graph, config, sampling_ratio=0.1)
>>> prediction.predicted_iterations > 0
True
"""

from repro.algorithms import (
    ConnectedComponents,
    ConnectedComponentsConfig,
    NeighborhoodConfig,
    NeighborhoodEstimation,
    PageRank,
    PageRankConfig,
    SemiClustering,
    SemiClusteringConfig,
    TopKRanking,
    TopKRankingConfig,
)
from repro.bsp import BSPEngine, EngineConfig, RunResult
from repro.cluster import ClusterSpec, CostProfile
from repro.core import (
    CostModel,
    Extrapolator,
    HistoryStore,
    Prediction,
    Predictor,
    SampleRunner,
    TransformFunction,
    default_transform,
)
from repro.graph import DiGraph
from repro.sampling import BiasedRandomJump, RandomJump

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "DiGraph",
    "ClusterSpec",
    "CostProfile",
    "BSPEngine",
    "EngineConfig",
    "RunResult",
    "PageRank",
    "PageRankConfig",
    "SemiClustering",
    "SemiClusteringConfig",
    "TopKRanking",
    "TopKRankingConfig",
    "ConnectedComponents",
    "ConnectedComponentsConfig",
    "NeighborhoodEstimation",
    "NeighborhoodConfig",
    "BiasedRandomJump",
    "RandomJump",
    "SampleRunner",
    "TransformFunction",
    "default_transform",
    "Extrapolator",
    "CostModel",
    "HistoryStore",
    "Predictor",
    "Prediction",
]
