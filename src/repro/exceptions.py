"""Exception hierarchy for the PREDIcT reproduction.

All library-specific errors derive from :class:`ReproError` so that callers can
catch everything raised by this package with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class GraphError(ReproError):
    """Raised for malformed graph operations (unknown vertices, bad edges...)."""


class GraphFormatError(GraphError):
    """Raised when an on-disk graph file cannot be parsed."""


class SamplingError(ReproError):
    """Raised when a sampling technique cannot produce a valid sample."""


class ConfigurationError(ReproError):
    """Raised when an algorithm or cluster configuration is invalid."""


class ConvergenceError(ReproError):
    """Raised when an iterative algorithm fails to converge within its budget."""


class BSPError(ReproError):
    """Raised for failures inside the BSP (Giraph-like) execution engine."""


class OutOfMemoryError(BSPError):
    """Raised when the simulated cluster runs out of memory.

    This mirrors the paper's observation that semi-clustering, top-k ranking
    and neighborhood estimation could not be executed on the Twitter dataset
    because Giraph (which cannot spill messages to disk) exhausted cluster RAM.
    """


class StreamCorruptionError(BSPError):
    """Raised when a process-backend message stream fails validation.

    The owner-side replay of the shared-memory stream protocol
    (:mod:`repro.bsp.parallel.protocol`) cross-checks the routing metadata it
    receives -- per-sender edge lengths must be non-negative and sum to the
    advertised destination count, payload byte sizes must be non-negative.
    A mismatch means the stream was corrupted in flight (or by an injected
    ``corrupt`` fault); the recovery policy treats it as a *recoverable*
    barrier fault and rewinds to the last checkpoint.
    """


class ModelingError(ReproError):
    """Raised when a cost model cannot be fitted or used for prediction."""


class PredictionError(ReproError):
    """Raised when the end-to-end PREDIcT predictor cannot produce an estimate."""


class HistoryError(ReproError):
    """Raised for invalid operations on the historical-run store."""
