"""Incremental graph builder with validation and deduplication options.

:class:`GraphBuilder` is a convenience layer on top of :class:`DiGraph` for
code that assembles graphs from noisy sources (files, generators): it can
drop self loops, deduplicate parallel edges, and report simple statistics
about what was filtered out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Set, Tuple

from repro.graph.digraph import DiGraph, VertexId


@dataclass
class BuilderStats:
    """Statistics about edges accepted and rejected by a :class:`GraphBuilder`."""

    edges_added: int = 0
    self_loops_dropped: int = 0
    duplicates_dropped: int = 0

    def as_dict(self) -> dict:
        """Return the statistics as a plain dictionary."""
        return {
            "edges_added": self.edges_added,
            "self_loops_dropped": self.self_loops_dropped,
            "duplicates_dropped": self.duplicates_dropped,
        }


@dataclass
class GraphBuilder:
    """Build a :class:`DiGraph` edge by edge with optional filtering.

    Parameters
    ----------
    name:
        Name given to the built graph.
    allow_self_loops:
        When False (default) edges ``v -> v`` are silently dropped and counted.
    deduplicate:
        When True parallel edges are collapsed to a single edge.
    """

    name: str = "graph"
    allow_self_loops: bool = False
    deduplicate: bool = False
    _graph: DiGraph = field(init=False)
    _seen: Set[Tuple[VertexId, VertexId]] = field(init=False, default_factory=set)
    stats: BuilderStats = field(init=False, default_factory=BuilderStats)

    def __post_init__(self) -> None:
        self._graph = DiGraph(name=self.name)

    def add_vertex(self, vertex: VertexId) -> "GraphBuilder":
        """Add an isolated vertex."""
        self._graph.add_vertex(vertex)
        return self

    def add_edge(self, source: VertexId, target: VertexId, weight: float = 1.0) -> "GraphBuilder":
        """Add one edge, applying the self-loop / duplicate policies."""
        if source == target and not self.allow_self_loops:
            self.stats.self_loops_dropped += 1
            return self
        if self.deduplicate:
            key = (source, target)
            if key in self._seen:
                self.stats.duplicates_dropped += 1
                return self
            self._seen.add(key)
        self._graph.add_edge(source, target, weight)
        self.stats.edges_added += 1
        return self

    def add_edges(self, edges: Iterable[Tuple[VertexId, VertexId]]) -> "GraphBuilder":
        """Add many ``(source, target)`` edges."""
        for source, target in edges:
            self.add_edge(source, target)
        return self

    def build(self) -> DiGraph:
        """Return the built graph."""
        return self._graph
