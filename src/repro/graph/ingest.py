"""Out-of-core edge-list ingestion into an on-disk CSR cache.

The paper's inputs are HDFS-resident edge lists of up to 1.5B edges
(PAPER.md Table 2); :func:`repro.graph.io.read_edge_list` -- a per-line
Python loop into a dict-backed builder -- cannot load them.  This module is
the out-of-core ingestion path: a chunked, ``np.loadtxt``-free parser that
bucket-sorts edges through spill files into an on-disk ``.npy`` CSR cache,
so peak memory is bounded by the chunk/bucket sizes rather than the graph.

Pipeline
--------
1. **Digest** -- the cache is keyed by a content hash: sha256 over the raw
   file bytes plus the ingestion options (comment char, self-loop/dedup
   policy, partitioner).  Re-ingesting the same file with the same options
   is a directory lookup.
2. **Parse + spill** -- the file is read in fixed-size binary chunks
   (gzip-aware), lines are tokenised and converted with vectorised
   ``np.array(tokens).astype`` casts, self-loops are dropped (matching
   :class:`~repro.graph.builder.GraphBuilder` semantics) and the surviving
   ``(source, target, weight)`` triples are appended to a binary spill file.
3. **Bucket sort** -- the spill is routed into at most
   ``_MAX_BUCKETS`` bucket files by contiguous source-id range, so each
   bucket fits in memory regardless of the total edge count.
4. **CSR write** -- buckets are processed in ascending source order: load,
   stable-sort by source (file order preserved within a source), optional
   per-``(source, target)`` dedup keeping the first occurrence (buckets
   partition the source space, so bucket-local dedup equals the builder's
   global dedup), then *sequential* appends to ``targets.npy`` /
   ``weights.npy`` and the matching ``indptr.npy`` slice.  The ``.npy``
   headers are fixed-size and patched after the data is on disk, so the
   final edge count never has to be known up front.
5. **Partition (optional)** -- a partitioner (e.g. LDG) runs on the
   memmapped CSR and the cache is rewritten partition-contiguous; the
   worker offsets land in ``meta.json`` so
   :class:`~repro.graph.partition.ContiguousPartitioner` can reuse them and
   ``CSRGraph.repartition`` becomes a metadata no-op.

Cache layout (one directory per ``(file digest, options)``)::

    <cache_dir>/<digest>/
        indptr.npy    int64[n + 1]
        targets.npy   int64[m]
        weights.npy   float64[m]
        ids.npy       int64[n]   -- only for partition-permuted caches
        meta.json     counts, options, digest, partition offsets

Vertex-id contract: ingestion requires non-negative integer ids and the
cache is *dense* -- the vertex set is ``0..max_id`` and ids never seen in
the file are isolated vertices.  (``read_edge_list`` instead creates
vertices in first-appearance order; the two agree on every edge and on the
adjacency order of every source, which is what the equivalence tests pin.)

:func:`load_csr_cache` rebuilds a :class:`~repro.graph.csr.CSRGraph` over
``np.load(..., mmap_mode=...)`` views, with ids as a lazy ``range`` -- the
graph object is O(1) in the edge count and pages are faulted in on demand.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import shutil
import struct
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import GraphError, GraphFormatError
from repro.graph.csr import CSRGraph, concat_ranges
from repro.graph.io import HEADER_PREFIXES
from repro.obs.tracer import current_tracer

PathLike = Union[str, Path]

#: Bump when the on-disk layout changes; part of the cache digest.
FORMAT_VERSION = 1

#: Bytes of raw text parsed per chunk.  Peak parser memory is a small
#: multiple of this (token lists plus the converted arrays).
DEFAULT_CHUNK_BYTES = 1 << 20

#: Target bytes of one bucket file; per-bucket sort memory is a small
#: multiple of this.
DEFAULT_BUCKET_BYTES = 1 << 25

#: Upper bound on simultaneously open bucket files.
_MAX_BUCKETS = 128

#: Reserved bytes for a ``.npy`` header written after the data (v1.0
#: format: 6-byte magic + 2-byte version + 2-byte header length + padded
#: header dict).  128 is a multiple of the format's 16-byte alignment and
#: comfortably fits any int64/float64 1-D shape.
_NPY_HEADER_SPACE = 128

#: Spill/bucket record: one edge as it came out of the parser.
_SPILL_DTYPE = np.dtype([("source", "<i8"), ("target", "<i8"), ("weight", "<f8")])

_HEADER_PREFIXES_B = tuple(prefix.encode("ascii") for prefix in HEADER_PREFIXES)


# ------------------------------------------------------------------- digest
def cache_digest(
    path: PathLike,
    comment: str = "#",
    allow_self_loops: bool = False,
    deduplicate: bool = False,
    partitioner: Optional[str] = None,
    num_workers: Optional[int] = None,
) -> str:
    """Content hash keying the CSR cache of ``path`` under these options.

    Hashes the raw stored bytes (the compressed stream for ``.gz`` inputs),
    so the hash pass is pure sequential I/O, then folds in every option
    that changes the resulting CSR.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            block = handle.read(1 << 20)
            if not block:
                break
            digest.update(block)
    options = {
        "format_version": FORMAT_VERSION,
        "comment": comment,
        "allow_self_loops": bool(allow_self_loops),
        "deduplicate": bool(deduplicate),
        "partitioner": partitioner,
        "num_workers": int(num_workers) if num_workers else None,
    }
    digest.update(json.dumps(options, sort_keys=True).encode("ascii"))
    return digest.hexdigest()[:16]


# ------------------------------------------------------------------- parser
def _open_binary(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "rb")
    return open(path, "rb")


def _locate_parse_error(
    tokens: Sequence[bytes], line_numbers: Sequence[int], path: Path, what: str, cast
) -> GraphFormatError:
    """Pin a vectorised cast failure to its source line."""
    for token, line_no in zip(tokens, line_numbers):
        try:
            cast(token)
        except ValueError:
            return GraphFormatError(f"{path}:{line_no}: {what}: {token.decode(errors='replace')!r}")
    return GraphFormatError(f"{path}: {what}")  # pragma: no cover - cast raced

def _parse_lines(
    lines: List[bytes], first_line_no: int, comment: bytes, path: Path
) -> Optional[Tuple[np.ndarray, np.ndarray, Optional[np.ndarray], List[int]]]:
    """Tokenise one block of lines into (sources, targets, weights?) arrays.

    Comments, blank lines and ``write_edge_list``'s own header lines are
    skipped (headers unconditionally -- see the satellite bugfix in
    :func:`repro.graph.io.read_edge_list`).  The int/float conversions are
    single vectorised ``astype`` casts over the token arrays.
    """
    tok_src: List[bytes] = []
    tok_tgt: List[bytes] = []
    tok_wgt: List[bytes] = []
    line_numbers: List[int] = []
    has_weights = False
    for offset, raw in enumerate(lines):
        line = raw.strip()
        if (
            not line
            or line.startswith(_HEADER_PREFIXES_B)
            or line.startswith(comment)
        ):
            continue
        parts = line.split(None, 3)
        if len(parts) < 2:
            raise GraphFormatError(
                f"{path}:{first_line_no + offset}: expected 'source target "
                f"[weight]', got {line.decode(errors='replace')!r}"
            )
        tok_src.append(parts[0])
        tok_tgt.append(parts[1])
        if len(parts) > 2:
            tok_wgt.append(parts[2])
            has_weights = True
        else:
            tok_wgt.append(b"1")
        line_numbers.append(first_line_no + offset)
    if not tok_src:
        return None
    try:
        sources = np.array(tok_src).astype(np.int64)
        targets = np.array(tok_tgt).astype(np.int64)
    except ValueError:
        raise _locate_parse_error(
            tok_src + tok_tgt, line_numbers * 2, path,
            "vertex ids are not integers", int,
        ) from None
    if has_weights:
        try:
            weights = np.array(tok_wgt).astype(np.float64)
        except ValueError:
            raise _locate_parse_error(
                tok_wgt, line_numbers, path, "bad weight", float
            ) from None
    else:
        weights = None
    bad = (sources < 0) | (targets < 0)
    if bad.any():
        line_no = line_numbers[int(np.argmax(bad))]
        raise GraphFormatError(f"{path}:{line_no}: vertex ids must be non-negative")
    return sources, targets, weights, line_numbers


def _iter_chunks(handle, comment: bytes, chunk_bytes: int, path: Path):
    """Yield parsed ``(sources, targets, weights?)`` arrays per text chunk."""
    carry = b""
    line_no = 1
    while True:
        block = handle.read(chunk_bytes)
        if not block:
            break
        block = carry + block
        cut = block.rfind(b"\n")
        if cut < 0:
            carry = block
            continue
        carry = block[cut + 1 :]
        lines = block[:cut].split(b"\n")
        parsed = _parse_lines(lines, line_no, comment, path)
        line_no += len(lines)
        if parsed is not None:
            yield parsed
    if carry.strip():
        parsed = _parse_lines([carry], line_no, comment, path)
        if parsed is not None:
            yield parsed


# ---------------------------------------------------------------- npy files
def _write_npy_header(handle, descr: str, shape: Tuple[int, ...]) -> None:
    """Write a v1.0 ``.npy`` header into the reserved leading block.

    The data region always starts at byte ``_NPY_HEADER_SPACE``, so the
    header can be (re)written after the array length is finally known --
    the trick that lets the CSR writer stream data of unknown total size.
    """
    header = "{'descr': '%s', 'fortran_order': False, 'shape': %r, }" % (descr, shape)
    padding = _NPY_HEADER_SPACE - 10 - 1 - len(header)
    if padding < 0:  # pragma: no cover - shapes here are always short
        raise GraphError(f"npy header too long for reserved space: {header!r}")
    handle.seek(0)
    handle.write(b"\x93NUMPY\x01\x00")
    handle.write(struct.pack("<H", _NPY_HEADER_SPACE - 10))
    handle.write((header + " " * padding + "\n").encode("latin1"))


def _open_npy_stream(path: Path):
    """Open a ``.npy`` file for streaming: reserve the header, seek to data."""
    handle = open(path, "w+b")
    handle.write(b"\0" * _NPY_HEADER_SPACE)
    return handle


# ------------------------------------------------------------------- ingest
def ingest_edge_list(
    path: PathLike,
    cache_dir: PathLike,
    name: Optional[str] = None,
    comment: str = "#",
    allow_self_loops: bool = False,
    deduplicate: bool = False,
    partitioner: Optional[str] = None,
    num_workers: Optional[int] = None,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    bucket_bytes: int = DEFAULT_BUCKET_BYTES,
    force: bool = False,
    tracer=None,
) -> Path:
    """Ingest an edge-list file into an on-disk CSR cache; return its path.

    Peak memory is O(chunk + bucket), independent of the graph size.  The
    cache is keyed by :func:`cache_digest`; an existing complete cache is
    returned without re-reading the input (unless ``force``).  With
    ``partitioner`` (a :data:`repro.graph.partition.PARTITIONERS` name) and
    ``num_workers``, the cache lands partition-contiguous on disk.
    ``tracer`` (default: the ambient :func:`repro.obs.current_tracer`)
    records one span per pipeline stage.
    """
    file_path = Path(path)
    tracer = tracer if tracer is not None else current_tracer()
    if partitioner is not None and not num_workers:
        raise GraphError("partitioner at ingest requires num_workers")
    with tracer.span("ingest") as ingest_span:
        if tracer.enabled:
            ingest_span.set("path", str(file_path))
        digest = cache_digest(
            file_path, comment=comment, allow_self_loops=allow_self_loops,
            deduplicate=deduplicate, partitioner=partitioner, num_workers=num_workers,
        )
        cache_root = Path(cache_dir)
        final_dir = cache_root / digest
        if (final_dir / "meta.json").exists() and not force:
            if tracer.enabled:
                ingest_span.set("cache_hit", True)
            return final_dir
        if tracer.enabled:
            ingest_span.set("cache_hit", False)
        cache_root.mkdir(parents=True, exist_ok=True)
        tmp_dir = cache_root / f".tmp-{digest}-{os.getpid()}"
        if tmp_dir.exists():
            shutil.rmtree(tmp_dir)
        tmp_dir.mkdir()
        try:
            meta = _ingest_into(
                file_path, tmp_dir,
                name=name or file_path.name.partition(".")[0],
                comment=comment, allow_self_loops=allow_self_loops,
                deduplicate=deduplicate, chunk_bytes=chunk_bytes,
                bucket_bytes=bucket_bytes, tracer=tracer,
            )
            if partitioner is not None:
                with tracer.span("ingest.partition") as part_span:
                    _partition_stage(tmp_dir, meta, partitioner, int(num_workers))
                    if tracer.enabled:
                        part_span.set("partitioner", partitioner)
                        part_span.set("num_workers", int(num_workers))
            meta["digest"] = digest
            with open(tmp_dir / "meta.json", "w") as handle:
                json.dump(meta, handle, indent=1)
            if final_dir.exists():
                shutil.rmtree(final_dir)
            os.replace(tmp_dir, final_dir)
        finally:
            if tmp_dir.exists():
                shutil.rmtree(tmp_dir)
        if tracer.enabled:
            ingest_span.set("num_vertices", meta["num_vertices"])
            ingest_span.set("num_edges", meta["num_edges"])
    return final_dir


def _ingest_into(
    file_path: Path,
    out_dir: Path,
    name: str,
    comment: str,
    allow_self_loops: bool,
    deduplicate: bool,
    chunk_bytes: int,
    bucket_bytes: int,
    tracer=None,
) -> dict:
    """Run the parse/spill/bucket/CSR passes; write arrays into ``out_dir``."""
    tracer = tracer if tracer is not None else current_tracer()
    comment_b = comment.encode("utf-8")
    spill_path = out_dir / "spill.bin"
    max_id = -1
    raw_edges = 0
    self_loops_dropped = 0
    has_weights = False

    # Pass A: chunked parse -> binary spill of (source, target, weight).
    parse_span = tracer.begin("ingest.parse")
    with _open_binary(file_path) as handle, open(spill_path, "wb") as spill:
        for sources, targets, weights, _ in _iter_chunks(
            handle, comment_b, chunk_bytes, file_path
        ):
            if not allow_self_loops:
                keep = sources != targets
                self_loops_dropped += int(len(sources) - keep.sum())
                if not keep.all():
                    sources = sources[keep]
                    targets = targets[keep]
                    weights = weights[keep] if weights is not None else None
            if not len(sources):
                continue
            records = np.empty(len(sources), dtype=_SPILL_DTYPE)
            records["source"] = sources
            records["target"] = targets
            records["weight"] = weights if weights is not None else 1.0
            if weights is not None:
                has_weights = True
            chunk_max = int(max(sources.max(), targets.max()))
            max_id = max(max_id, chunk_max)
            raw_edges += len(records)
            spill.write(records.tobytes())
    if tracer.enabled:
        parse_span.set("raw_edges", raw_edges + self_loops_dropped)
        parse_span.set("spilled_edges", raw_edges)
    parse_span.finish()

    num_vertices = max_id + 1
    spill_bytes = raw_edges * _SPILL_DTYPE.itemsize
    num_buckets = min(_MAX_BUCKETS, max(1, -(-spill_bytes // max(1, bucket_bytes))))
    bounds = (np.arange(num_buckets + 1, dtype=np.int64) * num_vertices) // num_buckets

    # Pass B: route the spill into per-source-range bucket files.  Skipped
    # when everything fits one bucket -- the spill already is that bucket.
    bucket_span = tracer.begin("ingest.bucket")
    if tracer.enabled:
        bucket_span.set("num_buckets", num_buckets)
    if num_buckets > 1:
        bucket_paths = [out_dir / f"bucket-{k}.bin" for k in range(num_buckets)]
        bucket_files = [open(p, "wb") for p in bucket_paths]
        try:
            records_per_chunk = max(1, chunk_bytes // _SPILL_DTYPE.itemsize)
            with open(spill_path, "rb") as spill:
                while True:
                    blob = spill.read(records_per_chunk * _SPILL_DTYPE.itemsize)
                    if not blob:
                        break
                    records = np.frombuffer(blob, dtype=_SPILL_DTYPE)
                    buckets = np.searchsorted(bounds, records["source"], side="right") - 1
                    for k in np.unique(buckets):
                        bucket_files[k].write(records[buckets == k].tobytes())
        finally:
            for handle in bucket_files:
                handle.close()
        spill_path.unlink()
    else:
        bucket_paths = [spill_path]
    bucket_span.finish()

    # Pass C: per bucket -- sort by source, dedup, sequential CSR append.
    csr_span = tracer.begin("ingest.csr_write")
    duplicates_dropped = 0
    num_edges = 0
    indptr_f = _open_npy_stream(out_dir / "indptr.npy")
    targets_f = _open_npy_stream(out_dir / "targets.npy")
    weights_f = _open_npy_stream(out_dir / "weights.npy")
    try:
        indptr_f.write(np.zeros(1, dtype=np.int64).tobytes())
        for k, bucket_path in enumerate(bucket_paths):
            lo, hi = int(bounds[k]), int(bounds[k + 1])
            if hi <= lo:
                continue
            records = (
                np.fromfile(bucket_path, dtype=_SPILL_DTYPE)
                if bucket_path.exists()
                else np.empty(0, dtype=_SPILL_DTYPE)
            )
            sources = records["source"]
            order = np.argsort(sources, kind="stable")
            sources = sources[order]
            targets = records["target"][order]
            weights = records["weight"][order]
            if deduplicate and len(sources):
                # Bucket-local == global dedup: every edge of a source lives
                # in this bucket.  Keep the first file occurrence per
                # (source, target), like GraphBuilder.
                keys = sources * np.int64(num_vertices) + targets
                by_key = np.argsort(keys, kind="stable")
                first = np.ones(len(keys), dtype=bool)
                first[1:] = keys[by_key][1:] != keys[by_key][:-1]
                keep = np.sort(by_key[first])
                duplicates_dropped += int(len(sources) - len(keep))
                sources = sources[keep]
                targets = targets[keep]
                weights = weights[keep]
            counts = np.bincount(sources - lo, minlength=hi - lo)
            indptr_slice = num_edges + np.cumsum(counts, dtype=np.int64)
            indptr_f.write(indptr_slice.tobytes())
            targets_f.write(np.ascontiguousarray(targets, dtype=np.int64).tobytes())
            weights_f.write(np.ascontiguousarray(weights, dtype=np.float64).tobytes())
            num_edges += len(sources)
            bucket_path.unlink()
        for bucket_path in bucket_paths:  # empty-range leftovers
            if bucket_path.exists():
                bucket_path.unlink()
        _write_npy_header(indptr_f, "<i8", (num_vertices + 1,))
        _write_npy_header(targets_f, "<i8", (num_edges,))
        _write_npy_header(weights_f, "<f8", (num_edges,))
    finally:
        indptr_f.close()
        targets_f.close()
        weights_f.close()
    if tracer.enabled:
        csr_span.set("num_vertices", num_vertices)
        csr_span.set("num_edges", num_edges)
    csr_span.finish()

    return {
        "format_version": FORMAT_VERSION,
        "name": name,
        "num_vertices": num_vertices,
        "num_edges": num_edges,
        "has_weights": has_weights,
        "options": {
            "comment": comment,
            "allow_self_loops": allow_self_loops,
            "deduplicate": deduplicate,
        },
        "stats": {
            "raw_edges": raw_edges + self_loops_dropped,
            "self_loops_dropped": self_loops_dropped,
            "duplicates_dropped": duplicates_dropped,
        },
        "partition": None,
    }


def _partition_stage(
    out_dir: Path, meta: dict, partitioner_name: str, num_workers: int,
    block_vertices: int = 1 << 18,
) -> None:
    """Rewrite the cache partition-contiguous for ``partitioner_name``.

    The partitioner runs on the memmapped base CSR; when its stable layout
    is not already the identity, a permuted copy is streamed out block by
    block (O(block) resident) and the original arrays are replaced.  The
    worker offsets are recorded in ``meta`` so ``ContiguousPartitioner``
    reproduces the assignment as a metadata-only repartition.
    """
    from repro.graph.partition import partitioner_by_name

    graph = load_csr_cache(out_dir, mmap_mode="r", _meta=meta)
    partitioning = partitioner_by_name(partitioner_name).partition(graph, num_workers)
    layout = partitioning.layout()
    meta["partition"] = {
        "partitioner": partitioner_name,
        "num_workers": num_workers,
        "offsets": [int(v) for v in layout.offsets],
        "permuted": False,
    }
    if layout.is_identity:
        return
    meta["partition"]["permuted"] = True
    n = graph.num_vertices
    perm = np.asarray(layout.perm, dtype=np.int64)
    inverse = np.asarray(layout.inverse_perm, dtype=np.int64)
    indptr_f = _open_npy_stream(out_dir / "indptr.perm.npy")
    targets_f = _open_npy_stream(out_dir / "targets.perm.npy")
    weights_f = _open_npy_stream(out_dir / "weights.perm.npy")
    try:
        indptr_f.write(np.zeros(1, dtype=np.int64).tobytes())
        written = 0
        for start in range(0, n, block_vertices):
            verts = perm[start : start + block_vertices]
            lengths = np.asarray(graph.out_degrees[verts], dtype=np.int64)
            slots = concat_ranges(np.asarray(graph.indptr[verts]), lengths)
            targets_f.write(inverse[np.asarray(graph.targets[slots])].tobytes())
            weights_f.write(np.asarray(graph.weights[slots]).tobytes())
            indptr_f.write((written + np.cumsum(lengths, dtype=np.int64)).tobytes())
            written += int(lengths.sum())
        _write_npy_header(indptr_f, "<i8", (n + 1,))
        _write_npy_header(targets_f, "<i8", (written,))
        _write_npy_header(weights_f, "<f8", (written,))
    finally:
        indptr_f.close()
        targets_f.close()
        weights_f.close()
    del graph  # drop the memmap views before replacing their files
    np.save(out_dir / "ids.npy", perm)  # original ids are 0..n-1 == perm values
    for stem in ("indptr", "targets", "weights"):
        os.replace(out_dir / f"{stem}.perm.npy", out_dir / f"{stem}.npy")


# --------------------------------------------------------------- load / save
def load_csr_cache(
    cache_path: PathLike,
    mmap_mode: Optional[str] = "r",
    _meta: Optional[dict] = None,
) -> CSRGraph:
    """Rebuild a :class:`CSRGraph` over a CSR cache directory.

    With the default ``mmap_mode="r"`` the arrays are ``np.memmap`` views
    and pages load on first touch; ``mmap_mode=None`` reads everything into
    RAM (the in-memory comparator of the differential tests).  Ids are a
    lazy ``range`` unless the cache was partition-permuted, so the graph
    object itself stays O(vertices-touched).
    """
    cache_path = Path(cache_path)
    if _meta is None:
        meta_path = cache_path / "meta.json"
        if not meta_path.exists():
            raise GraphError(f"no CSR cache at {cache_path} (missing meta.json)")
        with open(meta_path) as handle:
            _meta = json.load(handle)
    indptr = np.load(cache_path / "indptr.npy", mmap_mode=mmap_mode)
    targets = np.load(cache_path / "targets.npy", mmap_mode=mmap_mode)
    weights = np.load(cache_path / "weights.npy", mmap_mode=mmap_mode)
    n = int(_meta["num_vertices"])
    ids_path = cache_path / "ids.npy"
    ids = np.load(ids_path).tolist() if ids_path.exists() else range(n)
    graph = CSRGraph(
        _meta.get("name", cache_path.name), ids, indptr, targets, weights,
        validate=False,
    )
    graph.mmap_backed = mmap_mode is not None
    partition = _meta.get("partition")
    if partition:
        graph.ingest_partition = {
            "partitioner": partition["partitioner"],
            "num_workers": int(partition["num_workers"]),
            "offsets": np.asarray(partition["offsets"], dtype=np.int64),
        }
    return graph


def save_csr_cache(graph, cache_path: PathLike, name: Optional[str] = None) -> Path:
    """Write a frozen graph's CSR arrays as a cache directory.

    The in-RAM complement of :func:`ingest_edge_list` for graphs that
    already exist as objects (generated stand-ins, test fixtures).  Ids
    must be integers; dense ``0..n-1`` ids are stored implicitly.
    """
    frozen = graph.freeze()
    cache_path = Path(cache_path)
    cache_path.mkdir(parents=True, exist_ok=True)
    n = frozen.num_vertices
    ids = frozen.ids
    dense = isinstance(ids, range) and ids == range(n)
    if not dense:
        if not frozen.integer_ids:
            raise GraphError(
                f"CSR cache requires integer vertex ids; graph {frozen.name!r} "
                "has non-integer ids"
            )
        ids_array = np.asarray(list(ids), dtype=np.int64)
        if np.array_equal(ids_array, np.arange(n, dtype=np.int64)):
            dense = True
        else:
            np.save(cache_path / "ids.npy", ids_array)
    np.save(cache_path / "indptr.npy", np.asarray(frozen.indptr, dtype=np.int64))
    np.save(cache_path / "targets.npy", np.asarray(frozen.targets, dtype=np.int64))
    np.save(cache_path / "weights.npy", np.asarray(frozen.weights, dtype=np.float64))
    if dense and (cache_path / "ids.npy").exists():
        (cache_path / "ids.npy").unlink()
    partition = None
    if frozen.ingest_partition is not None:
        partition = {
            "partitioner": frozen.ingest_partition["partitioner"],
            "num_workers": int(frozen.ingest_partition["num_workers"]),
            "offsets": [int(v) for v in frozen.ingest_partition["offsets"]],
            "permuted": not dense,
        }
    meta = {
        "format_version": FORMAT_VERSION,
        "name": name or frozen.name,
        "num_vertices": n,
        "num_edges": frozen.num_edges,
        "has_weights": True,
        "options": None,
        "stats": None,
        "partition": partition,
    }
    with open(cache_path / "meta.json", "w") as handle:
        json.dump(meta, handle, indent=1)
    return cache_path


def ingest_or_load(
    path: PathLike,
    cache_dir: PathLike,
    mmap_mode: Optional[str] = "r",
    **options,
) -> CSRGraph:
    """Ingest ``path`` if its cache is missing, then load the cached CSR."""
    cache = ingest_edge_list(path, cache_dir, **options)
    return load_csr_cache(cache, mmap_mode=mmap_mode)
