"""Registry of synthetic stand-in datasets for the paper's evaluation graphs.

The paper (Table 2) evaluates on four real graphs:

=============  ===========  ==============  =====
Dataset        # Nodes      # Edges         Size
=============  ===========  ==============  =====
LiveJournal    4,847,571    68,993,777      1 GB
Wikipedia      11,712,323   97,652,232      1.4 GB
Twitter        40,103,281   1,468,365,182   25 GB
UK-2002        18,520,486   298,113,762     4.7 GB
=============  ===========  ==============  =====

Those graphs cannot ship with this repository and would not fit a pure-Python
testbed, so each one is replaced by a *stand-in* generated at laptop scale
whose qualitative shape matches the original:

* ``wiki`` / ``uk`` -- scale-free web-graph stand-ins (preferential attachment
  and copying model respectively); ``uk`` is roughly 2-3x larger and denser
  than ``wiki``, matching the ordering of the originals.
* ``twitter`` -- an R-MAT graph with Graph500 skew; by far the densest graph,
  with an average degree ~4-8x the web graphs, matching Twitter's relative
  density (36 edges/vertex vs 8-16 for the others).
* ``livejournal`` -- a log-normal (non-power-law) out-degree graph with high
  edge reciprocity.  The paper attributes LiveJournal's consistently larger
  prediction errors to its out-degree distribution not following a power law,
  so the stand-in deliberately reproduces that property.

The absolute sizes are configurable through a global ``scale`` knob so tests
use tiny graphs and benchmarks use larger ones.  Dataset instances are cached
per (name, scale) because generation is the most expensive part of the suite.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.graph import generators
from repro.graph.digraph import DiGraph
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class DatasetSpec:
    """Description of a stand-in dataset.

    ``paper_vertices`` / ``paper_edges`` record the size of the original graph
    (for documentation and for the Table 2 benchmark); the generator builds a
    graph of roughly ``base_vertices * scale`` vertices.
    """

    name: str
    prefix: str
    kind: str
    paper_vertices: int
    paper_edges: int
    paper_size_gb: float
    base_vertices: int
    generator: Callable[[int, int], DiGraph]
    scale_free: bool
    description: str


def _make_livejournal(num_vertices: int, seed: int) -> DiGraph:
    return generators.lognormal_digraph(
        num_vertices=num_vertices,
        mean_out_degree=9.0,
        sigma=0.55,
        reciprocity=0.5,
        seed=seed,
        name="livejournal",
    )


def _make_wikipedia(num_vertices: int, seed: int) -> DiGraph:
    return generators.preferential_attachment(
        num_vertices=num_vertices,
        out_degree=8,
        seed=seed,
        name="wikipedia",
    )


def _make_uk(num_vertices: int, seed: int) -> DiGraph:
    return generators.copying_model(
        num_vertices=num_vertices,
        out_degree=12,
        copy_probability=0.6,
        seed=seed,
        name="uk-2002",
    )


def _make_twitter(num_vertices: int, seed: int) -> DiGraph:
    # The Twitter follower graph is scale-free like the web graphs but much
    # denser (~36 edges/vertex vs 8-16); a high-out-degree preferential
    # attachment graph reproduces that regime.  (An R-MAT generator is also
    # available in :mod:`repro.graph.generators` but its synthetic core is so
    # tight that samples converge unrealistically fast.)
    return generators.preferential_attachment(
        num_vertices=num_vertices,
        out_degree=20,
        seed=seed,
        name="twitter",
    )


_SPECS: Dict[str, DatasetSpec] = {
    "livejournal": DatasetSpec(
        name="livejournal",
        prefix="LJ",
        kind="social",
        paper_vertices=4_847_571,
        paper_edges=68_993_777,
        paper_size_gb=1.0,
        base_vertices=3000,
        generator=_make_livejournal,
        scale_free=False,
        description="Friendship graph stand-in with log-normal (non-power-law) out-degrees",
    ),
    "wikipedia": DatasetSpec(
        name="wikipedia",
        prefix="Wiki",
        kind="web",
        paper_vertices=11_712_323,
        paper_edges=97_652_232,
        paper_size_gb=1.4,
        base_vertices=4000,
        generator=_make_wikipedia,
        scale_free=True,
        description="Scale-free web-graph stand-in (preferential attachment)",
    ),
    "twitter": DatasetSpec(
        name="twitter",
        prefix="TW",
        kind="social",
        paper_vertices=40_103_281,
        paper_edges=1_468_365_182,
        paper_size_gb=25.0,
        base_vertices=8192,
        generator=_make_twitter,
        scale_free=True,
        description="Dense follower-graph stand-in (high-degree preferential attachment)",
    ),
    "uk-2002": DatasetSpec(
        name="uk-2002",
        prefix="UK",
        kind="web",
        paper_vertices=18_520_486,
        paper_edges=298_113_762,
        paper_size_gb=4.7,
        base_vertices=6000,
        generator=_make_uk,
        scale_free=True,
        description="Scale-free .uk web-crawl stand-in (copying model)",
    ),
}

# LRU-bounded instance cache.  A plain dict here grew without bound: every
# (name, scale, seed) cell of a sweep pinned a full graph forever, which is
# exactly the wrong behaviour once scales get large.  The bound is small --
# one sweep revisits only a handful of graphs -- and evicted entries are
# freed as soon as the caller drops its own reference.
_CACHE: "OrderedDict[Tuple[str, float, int], DiGraph]" = OrderedDict()
_CACHE_LIMIT = 4


def set_cache_limit(limit: int) -> int:
    """Set the dataset-cache capacity; returns the previous limit."""
    global _CACHE_LIMIT
    if limit < 1:
        raise ConfigurationError(f"cache limit must be >= 1, got {limit}")
    previous = _CACHE_LIMIT
    _CACHE_LIMIT = int(limit)
    _evict()
    return previous


def _evict() -> None:
    while len(_CACHE) > _CACHE_LIMIT:
        _CACHE.popitem(last=False)


def available_datasets() -> List[str]:
    """Return the names of all registered stand-in datasets."""
    return list(_SPECS)


def dataset_spec(name: str) -> DatasetSpec:
    """Return the :class:`DatasetSpec` for ``name`` (case-insensitive)."""
    key = name.lower()
    if key not in _SPECS:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {', '.join(_SPECS)}"
        )
    return _SPECS[key]


def load_dataset(
    name: str,
    scale: float = 1.0,
    seed: int = 42,
    csr_cache_dir: Optional[Union[str, Path]] = None,
):
    """Generate (or fetch from cache) the stand-in graph for ``name``.

    ``scale`` multiplies the baseline vertex count: the unit-test suite uses
    ``scale <= 0.3`` for speed while the benchmarks use ``scale = 1.0``.

    With ``csr_cache_dir`` the dataset is served from an on-disk CSR cache
    instead: generated once, persisted via
    :func:`repro.graph.ingest.save_csr_cache`, and returned as a
    memmap-backed :class:`~repro.graph.csr.CSRGraph` whose arrays page in
    on demand -- repeated sessions skip generation entirely and the
    in-process cache holds only the O(1) graph object.
    """
    spec = dataset_spec(name)
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    if csr_cache_dir is not None:
        return _load_csr_dataset(spec, float(scale), int(seed), Path(csr_cache_dir))
    cache_key = (spec.name, float(scale), int(seed))
    if cache_key not in _CACHE:
        num_vertices = max(64, int(spec.base_vertices * scale))
        graph_seed = derive_seed(seed, spec.name)
        _CACHE[cache_key] = spec.generator(num_vertices, graph_seed)
        _evict()
    else:
        _CACHE.move_to_end(cache_key)
    return _CACHE[cache_key]


def _load_csr_dataset(spec: DatasetSpec, scale: float, seed: int, cache_dir: Path):
    """Serve a stand-in dataset from (and into) an on-disk CSR cache."""
    from repro.graph.ingest import load_csr_cache, save_csr_cache

    cache_path = cache_dir / f"{spec.name}-scale{scale:g}-seed{seed}"
    if not (cache_path / "meta.json").exists():
        num_vertices = max(64, int(spec.base_vertices * scale))
        graph_seed = derive_seed(seed, spec.name)
        graph = spec.generator(num_vertices, graph_seed)
        save_csr_cache(graph.freeze(), cache_path, name=spec.name)
        del graph
    return load_csr_cache(cache_path, mmap_mode="r")


def clear_cache() -> None:
    """Drop all cached dataset instances (used by tests)."""
    _CACHE.clear()


def paper_table2_rows() -> List[dict]:
    """Rows of the paper's Table 2 (original dataset characteristics)."""
    return [
        {
            "name": spec.name,
            "prefix": spec.prefix,
            "paper_nodes": spec.paper_vertices,
            "paper_edges": spec.paper_edges,
            "paper_size_gb": spec.paper_size_gb,
        }
        for spec in _SPECS.values()
    ]
