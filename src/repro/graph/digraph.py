"""A lightweight directed graph with optional edge weights.

The graph is the only data structure the rest of the library operates on: the
BSP engine iterates over vertices and their outgoing edges, the samplers walk
outgoing edges and the property analysers need both in- and out-adjacency.
Vertices are identified by arbitrary hashable ids (the stand-in datasets use
contiguous integers, but nothing relies on that).

Design notes
------------
* Out-adjacency is the primary structure (``dict`` of vertex -> list of
  (target, weight) pairs); in-degree counts are maintained incrementally so
  that degree statistics are O(1) per vertex.
* Parallel edges are allowed (Giraph allows them too); self-loops are allowed
  but the generators avoid them.
* ``as_undirected`` mirrors the paper's setup step: "In Giraph, which
  inherently supports only directed graphs, a reverse edge is added to each
  edge" for algorithms that operate on undirected graphs (semi-clustering).
* ``freeze()`` converts the dict-of-lists structure into an immutable,
  NumPy-backed :class:`repro.graph.csr.CSRGraph` (``indptr`` / ``targets`` /
  ``weights`` arrays plus cached in/out-degree arrays).  The frozen graph
  implements the same read protocol with identical vertex- and edge-iteration
  order, so it is a drop-in replacement everywhere; on top of that it enables
  the BSP engine's vectorized superstep fast path and O(1) array walks for the
  samplers.  The experiment harness freezes every loaded dataset before
  running; build-time code (generators, I/O, builders) keeps using ``DiGraph``
  and freezes once construction is complete.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import GraphError

VertexId = Hashable
Edge = Tuple[VertexId, VertexId]
WeightedEdge = Tuple[VertexId, VertexId, float]


class DiGraph:
    """Directed graph with weighted edges and O(1) degree queries."""

    #: Mutable dict-of-lists graphs are never frozen; see :meth:`freeze`.
    is_frozen = False

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._out: Dict[VertexId, List[Tuple[VertexId, float]]] = {}
        self._in_degree: Dict[VertexId, int] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------ build
    def add_vertex(self, vertex: VertexId) -> None:
        """Add an isolated vertex; no-op if it already exists."""
        if vertex not in self._out:
            self._out[vertex] = []
            self._in_degree[vertex] = 0

    def add_edge(self, source: VertexId, target: VertexId, weight: float = 1.0) -> None:
        """Add a directed edge, creating endpoints as needed."""
        self.add_vertex(source)
        self.add_vertex(target)
        self._out[source].append((target, float(weight)))
        self._in_degree[target] += 1
        self._num_edges += 1

    def add_edges(self, edges: Iterable[Edge]) -> None:
        """Add edges from an iterable of ``(source, target)`` pairs."""
        for source, target in edges:
            self.add_edge(source, target)

    def add_weighted_edges(self, edges: Iterable[WeightedEdge]) -> None:
        """Add edges from an iterable of ``(source, target, weight)`` triples."""
        for source, target, weight in edges:
            self.add_edge(source, target, weight)

    # ----------------------------------------------------------------- access
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self._out)

    @property
    def num_edges(self) -> int:
        """Number of directed edges (parallel edges counted individually)."""
        return self._num_edges

    def vertices(self) -> Iterator[VertexId]:
        """Iterate over vertex ids in insertion order."""
        return iter(self._out)

    def has_vertex(self, vertex: VertexId) -> bool:
        """Return True if ``vertex`` is in the graph."""
        return vertex in self._out

    def has_edge(self, source: VertexId, target: VertexId) -> bool:
        """Return True if at least one ``source -> target`` edge exists."""
        if source not in self._out:
            return False
        return any(t == target for t, _ in self._out[source])

    def successors(self, vertex: VertexId) -> List[VertexId]:
        """Return the list of out-neighbours of ``vertex`` (with duplicates)."""
        self._require(vertex)
        return [target for target, _ in self._out[vertex]]

    def successor_at(self, vertex: VertexId, position: int) -> VertexId:
        """The target of the ``position``-th outgoing edge (no list built)."""
        self._require(vertex)
        return self._out[vertex][position][0]

    def out_edges(self, vertex: VertexId) -> List[Tuple[VertexId, float]]:
        """Return ``(target, weight)`` pairs for the outgoing edges of ``vertex``."""
        self._require(vertex)
        return list(self._out[vertex])

    def out_degree(self, vertex: VertexId) -> int:
        """Number of outgoing edges of ``vertex``."""
        self._require(vertex)
        return len(self._out[vertex])

    def in_degree(self, vertex: VertexId) -> int:
        """Number of incoming edges of ``vertex``."""
        self._require(vertex)
        return self._in_degree[vertex]

    def degree(self, vertex: VertexId) -> int:
        """Total (in + out) degree of ``vertex``."""
        return self.in_degree(vertex) + self.out_degree(vertex)

    def edges(self) -> Iterator[WeightedEdge]:
        """Iterate over all edges as ``(source, target, weight)`` triples."""
        for source, targets in self._out.items():
            for target, weight in targets:
                yield source, target, weight

    def out_degree_sequence(self) -> List[int]:
        """Out-degrees of all vertices, in vertex-iteration order."""
        return [len(targets) for targets in self._out.values()]

    def in_degree_sequence(self) -> List[int]:
        """In-degrees of all vertices, in vertex-iteration order."""
        return [self._in_degree[v] for v in self._out]

    # ------------------------------------------------------------ derivations
    def freeze(self, name: Optional[str] = None):
        """Return an immutable CSR (array-backed) view of this graph.

        The frozen graph preserves vertex- and edge-iteration order exactly,
        so BSP runs, samples and property reports are identical on either
        representation; the CSR form is what unlocks the engine's vectorized
        superstep path.
        """
        from repro.graph.csr import CSRGraph

        return CSRGraph.from_digraph(self, name=name)

    def subgraph(self, vertices: Sequence[VertexId], name: Optional[str] = None) -> "DiGraph":
        """Return the induced subgraph on ``vertices``.

        Edges are kept only when both endpoints are in ``vertices``.  This is
        the operation the samplers use to materialise a sample graph from the
        set of picked vertex ids.
        """
        keep = set(vertices)
        sub = DiGraph(name=name or f"{self.name}-sub")
        for vertex in vertices:
            if vertex in self._out:
                sub.add_vertex(vertex)
        for vertex in vertices:
            if vertex not in self._out:
                continue
            for target, weight in self._out[vertex]:
                if target in keep:
                    sub.add_edge(vertex, target, weight)
        return sub

    def as_undirected(self, name: Optional[str] = None) -> "DiGraph":
        """Return a symmetrised copy: every edge gets a reverse edge.

        Mirrors the paper's preprocessing for algorithms that need undirected
        input (semi-clustering): "a reverse edge is added to each edge".
        Existing reverse edges are not deduplicated, matching that description.
        """
        sym = DiGraph(name=name or f"{self.name}-undirected")
        for vertex in self._out:
            sym.add_vertex(vertex)
        for source, target, weight in self.edges():
            sym.add_edge(source, target, weight)
            sym.add_edge(target, source, weight)
        return sym

    def reverse(self, name: Optional[str] = None) -> "DiGraph":
        """Return a copy with every edge direction flipped."""
        rev = DiGraph(name=name or f"{self.name}-reversed")
        for vertex in self._out:
            rev.add_vertex(vertex)
        for source, target, weight in self.edges():
            rev.add_edge(target, source, weight)
        return rev

    def copy(self, name: Optional[str] = None) -> "DiGraph":
        """Return a deep copy of the graph structure."""
        dup = DiGraph(name=name or self.name)
        for vertex in self._out:
            dup.add_vertex(vertex)
        for source, target, weight in self.edges():
            dup.add_edge(source, target, weight)
        return dup

    def relabel_to_integers(self, name: Optional[str] = None) -> Tuple["DiGraph", Dict[VertexId, int]]:
        """Return a copy with vertices relabelled ``0..n-1`` plus the mapping."""
        mapping = {vertex: index for index, vertex in enumerate(self._out)}
        relabelled = DiGraph(name=name or f"{self.name}-int")
        for vertex in self._out:
            relabelled.add_vertex(mapping[vertex])
        for source, target, weight in self.edges():
            relabelled.add_edge(mapping[source], mapping[target], weight)
        return relabelled, mapping

    # -------------------------------------------------------------- internals
    def _require(self, vertex: VertexId) -> None:
        if vertex not in self._out:
            raise GraphError(f"vertex {vertex!r} is not in graph {self.name!r}")

    def __contains__(self, vertex: VertexId) -> bool:
        return vertex in self._out

    def __len__(self) -> int:
        return len(self._out)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DiGraph(name={self.name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges})"
        )
