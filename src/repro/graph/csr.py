"""Array-native frozen graph: compressed sparse row (CSR) adjacency.

:class:`CSRGraph` is the immutable, NumPy-backed counterpart of
:class:`repro.graph.digraph.DiGraph`.  It implements the same read-side
protocol (``vertices`` / ``successors`` / ``out_edges`` / ``degree`` queries /
``subgraph`` / ``as_undirected`` / ``reverse`` / ...), so every consumer of a
``DiGraph`` -- the BSP engine, the samplers, the property analysers, the
partitioners -- works on a ``CSRGraph`` unchanged.  On top of the protocol it
exposes the raw arrays, which is what enables the engine's vectorized
superstep fast path and array-walking samplers.

CSR layout
----------
The out-adjacency is stored as three parallel arrays:

* ``indptr``   -- ``int64[n + 1]``; the out-edges of the vertex with index
  ``i`` occupy edge slots ``indptr[i]:indptr[i + 1]``.
* ``targets``  -- ``int64[m]``; target *vertex index* of each edge slot.
* ``weights``  -- ``float64[m]``; weight of each edge slot.

plus two cached degree arrays (``out_degrees = diff(indptr)`` and
``in_degrees = bincount(targets)``).  Vertex *ids* remain arbitrary hashable
objects: ``ids[i]`` maps an index back to its id and ``index[id]`` maps an id
to its index.  Indices follow the insertion order of the source ``DiGraph``,
and edge slots within a vertex keep the order in which the edges were added.

Ordering guarantees
-------------------
The engine's differential-testing harness requires that a frozen graph is
*observationally identical* to the ``DiGraph`` it came from: ``vertices()``
iterates in the same order, ``out_edges`` returns edges in the same order, and
the derivations (``subgraph``, ``as_undirected``, ``reverse``) produce the
same vertex and edge orderings that the dict-of-lists implementations produce.
``as_undirected`` and ``reverse`` achieve this with stable sorts over the edge
event sequence, so message-send order -- and therefore every floating-point
accumulation in a BSP run -- is bit-identical between the two representations.

Mutation (``add_vertex`` / ``add_edge``) raises :class:`GraphError`; build a
``DiGraph`` (or use :meth:`CSRGraph.from_edge_arrays`) and ``freeze()`` it.
"""

from __future__ import annotations

import weakref
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import GraphError

VertexId = Hashable
WeightedEdge = Tuple[VertexId, VertexId, float]

#: Vertex-id containers a CSRGraph stores as-is.  ``range`` is the id form
#: of the out-of-core caches (dense integer ids): slicing a range is lazy
#: and pickles in O(1), so a 100M-vertex memmapped graph never materialises
#: a Python list of its ids.
IdSequence = Union[List[VertexId], range]


class CSRGraph:
    """Immutable directed graph over NumPy CSR arrays (``DiGraph`` protocol)."""

    #: Frozen graphs advertise themselves so the engine can pick the fast path.
    is_frozen = True

    #: Set by :meth:`repartition`: the partition-contiguous layout this graph
    #: was relabelled into (``repro.graph.partition.PartitionLayout``), or
    #: None for a graph in plain insertion order.
    partition_layout = None

    #: True when the CSR arrays are ``np.memmap`` views of an on-disk cache
    #: (see :mod:`repro.graph.ingest`).  Consumers that would pin a second
    #: full copy (the repartition cache) hold it weakly instead.
    mmap_backed = False

    #: Set by :func:`repro.graph.ingest.load_csr_cache` for caches written
    #: partition-contiguous at ingest time: ``{"partitioner", "num_workers",
    #: "offsets"}``.  ``ContiguousPartitioner`` reuses the offsets, turning
    #: ``repartition`` into a metadata no-op.
    ingest_partition = None

    def __init__(
        self,
        name: str,
        ids: Sequence[VertexId],
        indptr: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray,
        index: Optional[Dict[VertexId, int]] = None,
        validate: bool = True,
    ) -> None:
        self.name = name
        self.ids: IdSequence = ids if isinstance(ids, (list, range)) else list(ids)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.targets = np.ascontiguousarray(targets, dtype=np.int64)
        self.weights = np.ascontiguousarray(weights, dtype=np.float64)
        n = len(self.ids)
        if self.indptr.shape != (n + 1,):
            raise GraphError(
                f"indptr must have {n + 1} entries, got {self.indptr.shape}"
            )
        if self.targets.shape != self.weights.shape:
            raise GraphError("targets and weights must have the same length")
        # ``validate=False`` skips the O(m) bounds scan for arrays whose
        # invariants are guaranteed by construction (shared copies, the
        # ingest pipeline's own output) -- on a memmapped graph the scan
        # would fault in every targets page just to re-check them.
        if validate and len(self.targets) and (
            int(self.targets.min()) < 0 or int(self.targets.max()) >= n
        ):
            raise GraphError("edge targets must be vertex indices in [0, n)")
        self._index: Optional[Dict[VertexId, int]] = index
        self.out_degrees = np.diff(self.indptr)
        # The in-degree cache is lazy: consumers on the write-light paths
        # (repartitioned copies, the process backend's per-worker shared-
        # memory attachments) never ask for it, and the O(m) bincount is the
        # most expensive part of constructing a CSRGraph over existing
        # arrays.
        self._in_degrees: Optional[np.ndarray] = None
        # The arrays are shared across copy()/relabel_to_integers()/freeze();
        # make the sharing safe by enforcing the advertised immutability.
        for array in (self.indptr, self.targets, self.weights, self.out_degrees):
            array.setflags(write=False)
        # Lazy per-vertex (target_id, weight) rows for the scalar protocol.
        # Built on first access only: batch-path algorithms and the samplers
        # never touch it, while scalar-fallback algorithms (one out_edges call
        # per vertex per superstep) would otherwise pay NumPy-slice-to-tuple
        # conversion on every call.
        self._edge_rows: Optional[List[Optional[List[Tuple[VertexId, float]]]]] = None
        # Lazy Python-list forms of (indptr, targets) for the samplers' index
        # walk: list indexing beats per-step NumPy scalar access, and the
        # arrays are immutable, so the conversion is paid once per graph
        # instead of once per sample() call.
        self._walk_adjacency: Optional[Tuple[List[int], List[int]]] = None
        # One-slot repartition cache: experiment sweeps run many algorithms
        # over one frozen graph with the same partitioning, and the
        # relabelled graph is immutable, so the permutation cost is paid once
        # per (graph, assignment) instead of once per run.  On a memmapped
        # graph the slot holds a weakref -- a strong reference would pin a
        # second, fully-materialised copy of a graph that may not fit RAM.
        self._repartition_cache: Optional[Tuple[Tuple[int, bytes], object]] = None

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_digraph(cls, graph, name: Optional[str] = None) -> "CSRGraph":
        """Freeze a ``DiGraph`` into CSR arrays (preserving all orderings)."""
        ids = list(graph.vertices())
        index = {vertex: i for i, vertex in enumerate(ids)}
        n = len(ids)
        num_edges = graph.num_edges
        indptr = np.zeros(n + 1, dtype=np.int64)
        targets = np.empty(num_edges, dtype=np.int64)
        weights = np.empty(num_edges, dtype=np.float64)
        cursor = 0
        for i, vertex in enumerate(ids):
            for target, weight in graph.out_edges(vertex):
                targets[cursor] = index[target]
                weights[cursor] = weight
                cursor += 1
            indptr[i + 1] = cursor
        return cls(name or graph.name, ids, indptr, targets, weights, index=index)

    @classmethod
    def from_edge_arrays(
        cls,
        num_vertices: int,
        sources: np.ndarray,
        targets: np.ndarray,
        weights: Optional[np.ndarray] = None,
        name: str = "csr-graph",
    ) -> "CSRGraph":
        """Build directly from parallel source/target index arrays.

        Vertex ids are the integers ``0..num_vertices - 1``.  Edge slots are
        grouped by source with a stable sort, so edges of the same source keep
        their relative order in the input arrays.
        """
        if num_vertices <= 0:
            raise GraphError(f"num_vertices must be positive, got {num_vertices}")
        sources = np.ascontiguousarray(sources, dtype=np.int64)
        targets = np.ascontiguousarray(targets, dtype=np.int64)
        if sources.shape != targets.shape:
            raise GraphError("sources and targets must have the same length")
        if len(sources) and (
            int(sources.min()) < 0
            or int(targets.min()) < 0
            or int(sources.max()) >= num_vertices
            or int(targets.max()) >= num_vertices
        ):
            raise GraphError("edge endpoints must be indices in [0, num_vertices)")
        if weights is None:
            weights = np.ones(len(sources), dtype=np.float64)
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        if weights.shape != sources.shape:
            raise GraphError("weights must have the same length as sources/targets")
        order = np.argsort(sources, kind="stable")
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(np.bincount(sources, minlength=num_vertices), out=indptr[1:])
        # index is left lazy: for integer ids 0..n-1 the lazy build
        # ({v: i}) coincides with the identity mapping.
        return cls(name, list(range(num_vertices)), indptr, targets[order], weights[order])

    # ------------------------------------------------------------------ build
    def add_vertex(self, vertex: VertexId) -> None:
        raise GraphError(
            f"graph {self.name!r} is frozen (CSR); build a DiGraph and freeze() it"
        )

    def add_edge(self, source: VertexId, target: VertexId, weight: float = 1.0) -> None:
        raise GraphError(
            f"graph {self.name!r} is frozen (CSR); build a DiGraph and freeze() it"
        )

    # ----------------------------------------------------------------- access
    @property
    def in_degrees(self) -> np.ndarray:
        """Cached in-degree array (built lazily, immutable once built)."""
        if self._in_degrees is None:
            degrees = np.bincount(
                self.targets, minlength=self.num_vertices
            ).astype(np.int64)
            degrees.setflags(write=False)
            self._in_degrees = degrees
        return self._in_degrees

    @property
    def index(self) -> Dict[VertexId, int]:
        """Map vertex id -> vertex index (built lazily, never mutated).

        Pure-array consumers -- the partition-native batch planes, the
        samplers' index walks -- never touch it, so graphs derived on those
        paths (e.g. ``repartition``) skip the O(n) dict build entirely.
        """
        if self._index is None:
            self._index = {v: i for i, v in enumerate(self.ids)}
        return self._index

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self.ids)

    @property
    def num_edges(self) -> int:
        """Number of directed edges (parallel edges counted individually)."""
        return int(self.targets.shape[0])

    def vertices(self) -> Iterator[VertexId]:
        """Iterate over vertex ids in (preserved) insertion order."""
        return iter(self.ids)

    def has_vertex(self, vertex: VertexId) -> bool:
        """Return True if ``vertex`` is in the graph."""
        return vertex in self.index

    def has_edge(self, source: VertexId, target: VertexId) -> bool:
        """Return True if at least one ``source -> target`` edge exists."""
        si = self.index.get(source)
        ti = self.index.get(target)
        if si is None or ti is None:
            return False
        row = self.targets[self.indptr[si] : self.indptr[si + 1]]
        return bool(np.any(row == ti))

    def successors(self, vertex: VertexId) -> List[VertexId]:
        """Return the list of out-neighbours of ``vertex`` (with duplicates)."""
        return [target for target, _ in self._edge_row(self._require(vertex))]

    def successor_at(self, vertex: VertexId, position: int) -> VertexId:
        """The target of the ``position``-th outgoing edge (O(1), no list).

        List-index semantics, matching ``DiGraph.successor_at``: negative
        positions index from the end and out-of-range positions raise
        ``IndexError`` instead of silently reading a neighbouring row.
        """
        i = self._require(vertex)
        degree = int(self.out_degrees[i])
        if position < 0:
            position += degree
        if not 0 <= position < degree:
            raise IndexError(
                f"edge position {position} out of range for vertex {vertex!r} "
                f"with out-degree {degree}"
            )
        return self.ids[int(self.targets[self.indptr[i] + position])]

    def out_edges(self, vertex: VertexId) -> List[Tuple[VertexId, float]]:
        """Return ``(target, weight)`` pairs for the outgoing edges of ``vertex``."""
        return list(self._edge_row(self._require(vertex)))

    def _edge_row(self, i: int) -> List[Tuple[VertexId, float]]:
        """The cached (target_id, weight) row of vertex index ``i``."""
        rows = self._edge_rows
        if rows is None:
            rows = self._edge_rows = [None] * self.num_vertices
        row = rows[i]
        if row is None:
            lo, hi = self.indptr[i], self.indptr[i + 1]
            ids = self.ids
            row = rows[i] = [
                (ids[t], w)
                for t, w in zip(self.targets[lo:hi].tolist(), self.weights[lo:hi].tolist())
            ]
        return row

    def out_degree(self, vertex: VertexId) -> int:
        """Number of outgoing edges of ``vertex``."""
        return int(self.out_degrees[self._require(vertex)])

    def in_degree(self, vertex: VertexId) -> int:
        """Number of incoming edges of ``vertex``."""
        return int(self.in_degrees[self._require(vertex)])

    def degree(self, vertex: VertexId) -> int:
        """Total (in + out) degree of ``vertex``."""
        i = self._require(vertex)
        return int(self.out_degrees[i] + self.in_degrees[i])

    def edges(self) -> Iterator[WeightedEdge]:
        """Iterate over all edges as ``(source, target, weight)`` triples."""
        ids = self.ids
        indptr = self.indptr
        targets = self.targets.tolist()
        weights = self.weights.tolist()
        for i, source in enumerate(ids):
            for slot in range(int(indptr[i]), int(indptr[i + 1])):
                yield source, ids[targets[slot]], weights[slot]

    def walk_adjacency(self) -> Tuple[List[int], List[int]]:
        """Cached ``(indptr, targets)`` as Python lists (samplers' step loop).

        The list forms cost ~4x the arrays' memory and live as long as the
        graph -- a deliberate trade-off: experiment sweeps draw many samples
        from one frozen graph, and per-step list indexing is what makes the
        walk fast.  Callers that sample a huge graph once and care about
        resident memory can set ``graph._walk_adjacency = None`` afterwards
        to release the copies.
        """
        if self._walk_adjacency is None:
            self._walk_adjacency = (self.indptr.tolist(), self.targets.tolist())
        return self._walk_adjacency

    def out_degree_sequence(self) -> List[int]:
        """Out-degrees of all vertices, in vertex-iteration order."""
        return self.out_degrees.tolist()

    def in_degree_sequence(self) -> List[int]:
        """In-degrees of all vertices, in vertex-iteration order."""
        return self.in_degrees.tolist()

    @property
    def integer_ids(self) -> bool:
        """True when every vertex id is a plain Python int (array-friendly)."""
        if isinstance(self.ids, range):
            return True
        return all(type(v) is int for v in self.ids)

    # ------------------------------------------------------------ derivations
    def freeze(self, name: Optional[str] = None) -> "CSRGraph":
        """Already frozen; return self (or a renamed shallow copy)."""
        if name is None or name == self.name:
            return self
        return self.copy(name=name)

    def to_digraph(self, name: Optional[str] = None):
        """Thaw back into a mutable ``DiGraph`` with identical orderings."""
        from repro.graph.digraph import DiGraph

        graph = DiGraph(name=name or self.name)
        for vertex in self.ids:
            graph.add_vertex(vertex)
        for source, target, weight in self.edges():
            graph.add_edge(source, target, weight)
        return graph

    def subgraph(self, vertices: Sequence[VertexId], name: Optional[str] = None) -> "CSRGraph":
        """Induced subgraph on ``vertices`` (kept in the given order).

        Matches ``DiGraph.subgraph`` exactly, including its handling of
        duplicate entries: vertices appear once (first occurrence order) but
        the edge loop runs per *occurrence*, so a repeated vertex contributes
        its edges repeatedly -- same multiset, same per-vertex edge order.
        Ids not in the graph are skipped.
        """
        index = self.index
        occurrence_idx = np.fromiter(
            (index[v] for v in vertices if v in index), dtype=np.int64
        )
        kept_ids = list(dict.fromkeys(v for v in vertices if v in index))
        kept_idx = np.fromiter(
            (index[v] for v in kept_ids), dtype=np.int64, count=len(kept_ids)
        )
        new_name = name or f"{self.name}-sub"
        n_new = len(kept_ids)
        if n_new == 0:
            return CSRGraph(
                new_name,
                [],
                np.zeros(1, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        # Old index -> new index (-1 = dropped).
        remap = np.full(self.num_vertices, -1, dtype=np.int64)
        remap[kept_idx] = np.arange(n_new, dtype=np.int64)
        degrees = self.out_degrees[occurrence_idx]
        slots = concat_ranges(self.indptr[occurrence_idx], degrees)
        new_targets = remap[self.targets[slots]]
        keep_edge = new_targets >= 0
        new_sources = np.repeat(remap[occurrence_idx], degrees)[keep_edge]
        new_targets = new_targets[keep_edge]
        new_weights = self.weights[slots][keep_edge]
        # Occurrences of the same vertex are not contiguous; a stable sort
        # groups them per source while preserving occurrence order, which is
        # exactly the per-vertex append order DiGraph.subgraph produces.
        order = np.argsort(new_sources, kind="stable")
        new_sources = new_sources[order]
        indptr = np.zeros(n_new + 1, dtype=np.int64)
        np.cumsum(np.bincount(new_sources, minlength=n_new), out=indptr[1:])
        return CSRGraph(new_name, kept_ids, indptr, new_targets[order], new_weights[order])

    def as_undirected(self, name: Optional[str] = None) -> "CSRGraph":
        """Symmetrised copy: every edge gets a reverse edge.

        Reproduces ``DiGraph.as_undirected``'s exact edge ordering: the edge
        event sequence is ``(s0->t0, t0->s0, s1->t1, t1->s1, ...)`` in global
        edge order, grouped per source with a stable sort.
        """
        m = self.num_edges
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.out_degrees)
        nsrc = np.empty(2 * m, dtype=np.int64)
        ndst = np.empty(2 * m, dtype=np.int64)
        nw = np.empty(2 * m, dtype=np.float64)
        nsrc[0::2] = src
        nsrc[1::2] = self.targets
        ndst[0::2] = self.targets
        ndst[1::2] = src
        nw[0::2] = self.weights
        nw[1::2] = self.weights
        order = np.argsort(nsrc, kind="stable")
        indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.cumsum(np.bincount(nsrc, minlength=self.num_vertices), out=indptr[1:])
        return CSRGraph(
            name or f"{self.name}-undirected",
            self.ids,
            indptr,
            ndst[order],
            nw[order],
            index=self._index,
        )

    def reverse(self, name: Optional[str] = None) -> "CSRGraph":
        """Copy with every edge direction flipped (stable per-vertex order)."""
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.out_degrees)
        order = np.argsort(self.targets, kind="stable")
        indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.cumsum(self.in_degrees, out=indptr[1:])
        return CSRGraph(
            name or f"{self.name}-reversed",
            self.ids,
            indptr,
            src[order],
            self.weights[order],
            index=self._index,
        )

    def copy(self, name: Optional[str] = None) -> "CSRGraph":
        """Shallow copy; the underlying arrays are shared (they are immutable)."""
        clone = CSRGraph(
            name or self.name,
            self.ids,
            self.indptr,
            self.targets,
            self.weights,
            index=self._index,
            validate=False,  # sharing already-validated arrays
        )
        clone.mmap_backed = self.mmap_backed
        clone.ingest_partition = self.ingest_partition
        return clone

    def repartition(self, partitioning) -> "CSRGraph":
        """Relabel vertices into partition-contiguous order for ``partitioning``.

        Returns a new :class:`CSRGraph` whose vertex *indices* follow the
        partitioning's stable layout: worker ``w`` owns exactly the contiguous
        index range ``layout.offsets[w]:layout.offsets[w + 1]`` and therefore a
        contiguous CSR edge slice.  Vertex *ids* travel with the permutation,
        so results keyed by id are unchanged; within each vertex the adjacency
        order is preserved exactly, so message-send order -- and every
        floating-point accumulation derived from it -- is untouched.

        The layout is recorded on the result as ``partition_layout``.  When
        the graph is already partition-contiguous for ``partitioning`` (e.g.
        repartitioning a repartitioned graph with a stable partitioner), the
        relabelling is the identity and a shallow copy is returned --
        ``repartition`` is idempotent.

        The most recent relabelling is cached on the graph (both graphs are
        immutable): experiment sweeps that run many algorithms over one
        frozen graph with the same partitioning pay the permutation cost
        once, not once per run.
        """
        layout = partitioning.layout()
        if layout.num_vertices != self.num_vertices:
            raise GraphError(
                f"partitioning covers {layout.num_vertices} vertices but graph "
                f"{self.name!r} has {self.num_vertices}"
            )
        if partitioning.ids is not self.ids and not _ids_match(partitioning.ids, self.ids):
            # Same count but different ids/order: the workers array would be
            # applied to the wrong vertices.  (Identity check first -- the
            # partitioners reuse the frozen graph's ids list, so the O(n)
            # comparison only runs for partitionings built elsewhere.)
            raise GraphError(
                f"partitioning is not aligned with graph {self.name!r}: "
                "it was built for a different vertex set or vertex order"
            )
        cache_key = (partitioning.num_workers, partitioning.workers.tobytes())
        cached = self._cached_repartition(cache_key)
        if cached is not None:
            return cached
        if layout.is_identity:
            relabelled = self.copy()
            relabelled.partition_layout = layout
        else:
            perm = layout.perm
            lengths = self.out_degrees[perm]
            indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
            np.cumsum(lengths, out=indptr[1:])
            slots = concat_ranges(np.asarray(self.indptr)[perm], lengths)
            relabelled = CSRGraph(
                f"{self.name}-partitioned",
                [self.ids[i] for i in perm.tolist()],
                indptr,
                np.asarray(layout.inverse_perm)[np.asarray(self.targets)[slots]],
                np.asarray(self.weights)[slots],
                validate=False,  # a permutation of already-validated arrays
            )
            relabelled.partition_layout = layout
        if self.mmap_backed and not layout.is_identity:
            # A materialised relabelling of a memmapped graph can dwarf the
            # graph object itself; hold it only as long as a consumer does.
            self._repartition_cache = (cache_key, weakref.ref(relabelled))
        else:
            self._repartition_cache = (cache_key, relabelled)
        return relabelled

    def _cached_repartition(self, cache_key) -> Optional["CSRGraph"]:
        """The cached relabelling for ``cache_key``, if it is still alive."""
        if self._repartition_cache is None or self._repartition_cache[0] != cache_key:
            return None
        cached = self._repartition_cache[1]
        if isinstance(cached, weakref.ref):
            cached = cached()
            if cached is None:
                self._repartition_cache = None
        return cached

    def invalidate_repartition_cache(self) -> None:
        """Drop the cached relabelled graph (frees it if nothing else holds it)."""
        self._repartition_cache = None

    def relabel_to_integers(
        self, name: Optional[str] = None
    ) -> Tuple["CSRGraph", Dict[VertexId, int]]:
        """Copy with vertices relabelled ``0..n-1`` plus the mapping."""
        mapping = {vertex: i for i, vertex in enumerate(self.ids)}
        relabelled = CSRGraph(
            name or f"{self.name}-int",
            list(range(self.num_vertices)),
            self.indptr,
            self.targets,
            self.weights,
        )
        return relabelled, mapping

    # -------------------------------------------------------------- internals
    def _require(self, vertex: VertexId) -> int:
        index = self.index.get(vertex)
        if index is None:
            raise GraphError(f"vertex {vertex!r} is not in graph {self.name!r}")
        return index

    def __contains__(self, vertex: VertexId) -> bool:
        return vertex in self.index

    def __len__(self) -> int:
        return len(self.ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"CSRGraph(name={self.name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges})"
        )


def _ids_match(a, b) -> bool:
    """Element-wise id equality across list/range container mixes."""
    if type(a) is type(b):
        return a == b
    return len(a) == len(b) and all(x == y for x, y in zip(a, b))


def concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[i], starts[i] + lengths[i])`` vectorially."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    prefix = np.cumsum(lengths) - lengths
    return np.arange(total, dtype=np.int64) + np.repeat(starts - prefix, lengths)
