"""Vertex partitioning: mapping vertices to BSP workers.

Giraph's master "is in charge of partitioning the input according to a
partitioning strategy [and] allocating partitions to workers".  The default
strategy is hash partitioning of vertex ids.  The partitioning matters for
PREDIcT because the *worker on the critical path* -- the one with the most
outbound edges -- determines the runtime of each superstep, and the paper's
critical-path detection runs directly on the partitioning.

Array-native layout
-------------------
:class:`Partitioning` is array-native: the canonical representation is a
``workers`` array (``int64[n]``, worker index of each vertex, aligned with
the source graph's vertex order) plus the derived *partition-contiguous
layout*:

* ``offsets``      -- ``int64[W + 1]``; in partition-contiguous vertex order
  worker ``w`` owns exactly the index range ``offsets[w]:offsets[w + 1]``.
* ``perm``         -- ``int64[n]``; ``perm[k]`` is the source-order index of
  the vertex at contiguous position ``k``.  The permutation is *stable*:
  within a worker, vertices keep their source insertion order, which is the
  per-worker iteration order of the scalar engine path.
* ``inverse_perm`` -- ``int64[n]``; ``inverse_perm[perm[k]] == k``.

``CSRGraph.repartition(partitioning)`` uses this layout to relabel a frozen
graph so each worker's vertices (and therefore its CSR edge slice) are
contiguous -- the engine's batch planes then classify local vs. remote
messages with range arithmetic on ``offsets`` instead of gathering a
vertex-to-worker map per superstep.

Cache interplay: the relabelled graph is cached *on the frozen graph* (one
slot, keyed by ``(num_workers, workers.tobytes())`` -- see
``CSRGraph.repartition``), and because every partitioner here is a pure
function of the vertex ids, re-partitioning the same graph with the same
partitioner and worker count reproduces the same ``workers`` array and hits
that cache.  Experiment sweeps that run all five algorithms over one dataset
therefore pay the permutation cost once, not once per run.

The historical dict API (``assignment``, ``worker_vertices``, ``worker_of``,
``vertices_of``) is preserved as thin lazy wrappers over the arrays; nothing
on the hot path builds the dictionaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graph.digraph import DiGraph, VertexId

#: Python's hash(n) == n for 0 <= n < 2**61 - 1 (the Mersenne prime modulus
#: of CPython's integer hash), which is what lets HashPartitioner vectorize
#: integer vertex ids with one modulo instead of n hash() calls.
_PYHASH_MODULUS = (1 << 61) - 1


@dataclass(frozen=True)
class PartitionLayout:
    """The partition-contiguous vertex layout derived from a partitioning.

    Attached to a repartitioned :class:`repro.graph.csr.CSRGraph` as
    ``graph.partition_layout`` so that every consumer -- the engine's batch
    planes, the critical-path estimator, the memory accounting -- can turn
    per-worker questions into slice arithmetic over ``offsets``.
    """

    num_workers: int
    offsets: np.ndarray
    perm: np.ndarray
    inverse_perm: np.ndarray

    @property
    def num_vertices(self) -> int:
        """Number of vertices covered by the layout."""
        return len(self.perm)

    @property
    def is_identity(self) -> bool:
        """True when the source order is already partition-contiguous."""
        return bool(np.array_equal(self.perm, np.arange(len(self.perm))))

    def worker_slice(self, worker: int) -> slice:
        """The contiguous index range owned by ``worker``."""
        return slice(int(self.offsets[worker]), int(self.offsets[worker + 1]))

    def worker_of_index(self, index) -> np.ndarray:
        """Worker of contiguous vertex index/indices (searchsorted on offsets)."""
        return np.searchsorted(self.offsets, index, side="right") - 1

    def assignment_contiguous(self) -> np.ndarray:
        """Worker of every vertex, in partition-contiguous vertex order."""
        return np.repeat(
            np.arange(self.num_workers, dtype=np.int64), np.diff(self.offsets)
        )


class Partitioning:
    """The result of partitioning a graph across workers (array-native).

    Attributes
    ----------
    num_workers:
        Number of workers.
    ids:
        Vertex ids in source-graph iteration order.
    workers:
        ``int64[n]`` worker index of each vertex, aligned with ``ids``.
    offsets / perm / inverse_perm:
        The partition-contiguous layout (see the module docstring).
    """

    def __init__(self, num_workers: int, ids: Sequence[VertexId], workers: np.ndarray) -> None:
        self.num_workers = int(num_workers)
        # ``range`` ids (the memmap-backed caches) are kept lazy: slicing a
        # range is O(1) and the dict/list wrappers below stay unbuilt on the
        # array paths.
        self.ids = ids if isinstance(ids, (list, range)) else list(ids)
        workers = np.ascontiguousarray(workers, dtype=np.int64)
        if workers.shape != (len(self.ids),):
            raise ConfigurationError(
                f"workers array must have one entry per vertex "
                f"({len(self.ids)}), got shape {workers.shape}"
            )
        if len(workers) and (
            int(workers.min()) < 0 or int(workers.max()) >= self.num_workers
        ):
            raise ConfigurationError(
                f"worker indices must lie in [0, {self.num_workers})"
            )
        self.workers = workers
        counts = np.bincount(workers, minlength=self.num_workers)
        self.offsets = np.zeros(self.num_workers + 1, dtype=np.int64)
        np.cumsum(counts, out=self.offsets[1:])
        # Stable sort: within a worker, vertices keep source insertion order
        # (the scalar engine's per-worker iteration order).
        self.perm = np.argsort(workers, kind="stable").astype(np.int64, copy=False)
        self.inverse_perm = np.empty(len(workers), dtype=np.int64)
        self.inverse_perm[self.perm] = np.arange(len(workers), dtype=np.int64)
        for array in (self.workers, self.offsets, self.perm, self.inverse_perm):
            array.setflags(write=False)
        self._layout: Optional[PartitionLayout] = None
        self._assignment: Optional[Dict[VertexId, int]] = None
        self._worker_vertices: Optional[List[Sequence[VertexId]]] = None

    # -------------------------------------------------------------- dict API
    @property
    def assignment(self) -> Dict[VertexId, int]:
        """Map vertex id -> worker index (lazy wrapper over ``workers``)."""
        if self._assignment is None:
            self._assignment = dict(zip(self.ids, self.workers.tolist()))
        return self._assignment

    @property
    def worker_vertices(self) -> List[List[VertexId]]:
        """For each worker, its vertices (lazy wrapper over the layout)."""
        if self._worker_vertices is None:
            ids = self.ids
            bounds = self.offsets.tolist()
            if isinstance(ids, range) and self.layout().is_identity:
                # Contiguous assignment over lazy ids: each worker's vertex
                # list is a range slice -- O(1) per worker, no n-sized list.
                self._worker_vertices = [
                    ids[bounds[w] : bounds[w + 1]] for w in range(self.num_workers)
                ]
            else:
                order = self.perm.tolist()
                self._worker_vertices = [
                    [ids[i] for i in order[bounds[w] : bounds[w + 1]]]
                    for w in range(self.num_workers)
                ]
        return self._worker_vertices

    def worker_of(self, vertex: VertexId) -> int:
        """Return the worker that owns ``vertex``."""
        return self.assignment[vertex]

    def vertices_of(self, worker: int) -> List[VertexId]:
        """Return the vertices owned by ``worker`` (source insertion order)."""
        return self.worker_vertices[worker]

    # ------------------------------------------------------------- array API
    def layout(self) -> PartitionLayout:
        """The partition-contiguous layout (cached; shared with repartition).

        The layout's permutation is *stable*: vertices of one worker keep
        their source insertion order, which is the scalar engine's
        per-worker iteration order.  Every bit-identity argument the batch
        planes make (send order, float accumulation order, delivery-list
        order) leans on this guarantee, so a custom partitioner only has to
        produce a ``workers`` array -- stability comes from here.
        """
        if self._layout is None:
            self._layout = PartitionLayout(
                num_workers=self.num_workers,
                offsets=self.offsets,
                perm=self.perm,
                inverse_perm=self.inverse_perm,
            )
        return self._layout

    def assignment_array(self, graph=None) -> np.ndarray:
        """Worker index of each vertex, aligned with ``graph.vertices()`` order.

        With no ``graph`` (or a graph in the source vertex order) this is the
        stored ``workers`` array -- no per-vertex Python work.  A graph whose
        iteration order differs (e.g. a repartitioned copy) falls back to the
        id-keyed dict so the result is always aligned with the caller's graph.
        """
        if graph is None:
            return self.workers
        ids = getattr(graph, "ids", None)
        if ids is self.ids:
            return self.workers
        if graph.num_vertices == len(self.ids):
            vertices = list(graph.vertices())
            if vertices == self.ids:
                return self.workers
            assignment = self.assignment
            return np.fromiter(
                (assignment[vertex] for vertex in vertices),
                dtype=np.int64,
                count=len(vertices),
            )
        raise ConfigurationError(
            f"graph has {graph.num_vertices} vertices but the partitioning "
            f"covers {len(self.ids)}"
        )

    def worker_outbound_edges_array(self, graph) -> np.ndarray:
        """Total outbound edges per worker, as an ``int64[W]`` array.

        This is exactly the statistic the paper's critical-path heuristic
        uses: "the worker with the largest number of outbound edges is
        considered to be on the critical path".  One bincount over the degree
        array -- no per-vertex Python loop on either graph representation.
        """
        degrees = getattr(graph, "out_degrees", None)
        if degrees is None:
            degrees = np.fromiter(
                (graph.out_degree(vertex) for vertex in graph.vertices()),
                dtype=np.int64,
                count=graph.num_vertices,
            )
        owners = self.assignment_array(graph)
        totals = np.bincount(owners, weights=degrees, minlength=self.num_workers)
        return totals.astype(np.int64)

    def worker_outbound_edges(self, graph) -> List[int]:
        """Total outbound edges per worker (list form of the array above)."""
        return self.worker_outbound_edges_array(graph).tolist()

    def worker_vertex_counts(self) -> List[int]:
        """Number of vertices per worker."""
        return np.diff(self.offsets).tolist()


class BasePartitioner:
    """Interface: assign every vertex of a graph to one of ``num_workers``."""

    def partition(self, graph: DiGraph, num_workers: int) -> Partitioning:
        """Return a :class:`Partitioning` of ``graph`` over ``num_workers``."""
        self._validate(graph, num_workers)
        ids = getattr(graph, "ids", None)
        if ids is None:
            ids = list(graph.vertices())
        workers = self._assign_graph(graph, ids, num_workers)
        return Partitioning(num_workers, ids, workers)

    def _assign_graph(
        self, graph: DiGraph, ids: List[VertexId], num_workers: int
    ) -> np.ndarray:
        """Worker index per vertex; override to use the graph structure.

        The default delegates to :meth:`_assign`, which sees only the vertex
        ids -- enough for hash/range/chunk.  Edge-cut-aware partitioners
        (LDG) override this hook instead.
        """
        return self._assign(ids, num_workers)

    def _assign(self, ids: List[VertexId], num_workers: int) -> np.ndarray:
        """Worker index per vertex, aligned with ``ids`` (subclass hook)."""
        raise NotImplementedError

    @staticmethod
    def _validate(graph: DiGraph, num_workers: int) -> None:
        if num_workers <= 0:
            raise ConfigurationError(f"num_workers must be positive, got {num_workers}")
        if graph.num_vertices == 0:
            raise ConfigurationError("cannot partition an empty graph")


class HashPartitioner(BasePartitioner):
    """Giraph's default: worker = hash(vertex id) mod num_workers.

    The assignment depends only on the vertex *id*, so it is stable across
    ``freeze()`` / ``to_digraph()`` round trips and across repartitioned
    copies of the same graph.  Non-negative integer ids below ``2**61 - 1``
    hash to themselves in CPython, so the common array-friendly case is one
    vectorized modulo.
    """

    def _assign(self, ids: List[VertexId], num_workers: int) -> np.ndarray:
        if ids and type(ids[0]) is int:
            # No dtype forced: a list that is not purely (machine-size)
            # integers comes back as float/object and takes the hash()
            # fallback instead of being silently truncated to int64.
            arr = np.asarray(ids)
            if (
                arr.dtype.kind in "iu"
                and int(arr.min()) >= 0
                and int(arr.max()) < _PYHASH_MODULUS
            ):
                return arr.astype(np.int64) % num_workers
        return np.fromiter(
            (hash(vertex) % num_workers for vertex in ids),
            dtype=np.int64,
            count=len(ids),
        )


class RangePartitioner(BasePartitioner):
    """Contiguous id ranges: vertices are sorted and split into equal ranges."""

    def _assign(self, ids: List[VertexId], num_workers: int) -> np.ndarray:
        order = sorted(range(len(ids)), key=lambda i: (str(type(ids[i])), ids[i]))
        ranks = np.empty(len(ids), dtype=np.int64)
        ranks[np.asarray(order, dtype=np.int64)] = np.arange(len(ids), dtype=np.int64)
        chunk = max(1, (len(ids) + num_workers - 1) // num_workers)
        return np.minimum(ranks // chunk, num_workers - 1)


class ChunkPartitioner(BasePartitioner):
    """Round-robin over vertex insertion order (balanced vertex counts)."""

    def _assign(self, ids: List[VertexId], num_workers: int) -> np.ndarray:
        return np.arange(len(ids), dtype=np.int64) % num_workers


class LDGPartitioner(BasePartitioner):
    """Greedy streaming Linear Deterministic Greedy (edge-cut minimising).

    Vertices are streamed in graph iteration order; each is placed on the
    worker maximising ``|N(v) ∩ P_w| * (1 - |P_w| / C)`` with capacity
    ``C = ceil(n / num_workers)`` (Stanton & Kliot, "Streaming graph
    partitioning for large distributed graphs", KDD'12).  ``N(v)`` counts
    *edges* between ``v`` and the worker's already-placed vertices, both
    directions, parallel edges included -- an order-independent multiset, so
    a graph and its frozen CSR counterpart (identical vertex order, identical
    adjacency) partition identically and the differential suite can sweep
    this partitioner like any other.  Ties break deterministically: least
    loaded worker first, then lowest worker index; workers at capacity are
    excluded, so vertex counts stay balanced within one vertex.

    Unlike hash partitioning the assignment depends on the graph structure,
    not just the ids -- measurably fewer cut edges on clustered graphs (see
    :func:`edge_cut`), at the cost of an O(n) Python streaming loop at
    partition time (paid once per run; the supersteps it speeds up run many
    times).
    """

    def _assign_graph(
        self, graph: DiGraph, ids: List[VertexId], num_workers: int
    ) -> np.ndarray:
        n = len(ids)
        sources, targets = _edge_index_arrays(graph, ids)
        # Undirected multiset adjacency: every edge contributes to both
        # endpoints' neighbourhoods (CSR layout over 2m edge stubs).
        stub_src = np.concatenate([sources, targets])
        stub_dst = np.concatenate([targets, sources])
        order = np.argsort(stub_src, kind="stable")
        stub_dst = stub_dst[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(stub_src, minlength=n), out=indptr[1:])

        capacity = -(-n // num_workers)
        assignment = np.full(n, -1, dtype=np.int64)
        sizes = np.zeros(num_workers, dtype=np.int64)
        for vertex in range(n):
            neighbours = stub_dst[indptr[vertex] : indptr[vertex + 1]]
            placed = assignment[neighbours]
            counts = np.bincount(placed[placed >= 0], minlength=num_workers)
            scores = counts * (1.0 - sizes / capacity)
            scores[sizes >= capacity] = -np.inf
            best = np.flatnonzero(scores == scores.max())
            least_loaded = best[sizes[best] == sizes[best].min()]
            worker = int(least_loaded[0])
            assignment[vertex] = worker
            sizes[worker] += 1
        return assignment


class ContiguousPartitioner(BasePartitioner):
    """Contiguous vertex blocks, balanced by *outbound edges*.

    The vertex order is kept as-is and split into ``num_workers`` contiguous
    blocks whose edge counts are as even as one cut per boundary allows --
    the layout is therefore always the identity permutation, and
    ``CSRGraph.repartition`` degenerates to a metadata-only shallow copy.
    That makes this the natural partitioner for memmap-backed graphs: no
    second on-disk-sized copy is ever materialised.

    A graph ingested with a partitioner (``ingest_edge_list(...,
    partitioner="ldg")``) already *is* partition-contiguous on disk; when
    its recorded worker count matches, the stored offsets are reused
    verbatim, so the at-ingest assignment (e.g. LDG's edge-cut-minimising
    one) is reproduced exactly -- the "LDG at ingest" contract.
    """

    def _assign_graph(
        self, graph: DiGraph, ids: Sequence[VertexId], num_workers: int
    ) -> np.ndarray:
        n = len(ids)
        recorded = getattr(graph, "ingest_partition", None)
        if recorded is not None and int(recorded["num_workers"]) == num_workers:
            offsets = np.asarray(recorded["offsets"], dtype=np.int64)
        else:
            degrees = getattr(graph, "out_degrees", None)
            if degrees is None:
                degrees = np.fromiter(
                    (graph.out_degree(vertex) for vertex in graph.vertices()),
                    dtype=np.int64,
                    count=n,
                )
            cumulative = np.cumsum(degrees, dtype=np.int64)
            total = int(cumulative[-1]) if n else 0
            if total == 0:
                # No edges to balance: fall back to even vertex blocks.
                offsets = (np.arange(num_workers + 1, dtype=np.int64) * n) // num_workers
            else:
                quotas = total * np.arange(1, num_workers, dtype=np.float64) / num_workers
                offsets = np.empty(num_workers + 1, dtype=np.int64)
                offsets[0] = 0
                offsets[-1] = n
                offsets[1:-1] = np.searchsorted(cumulative, quotas, side="left") + 1
                np.minimum(offsets, n, out=offsets)
                np.maximum.accumulate(offsets, out=offsets)
        return np.repeat(
            np.arange(num_workers, dtype=np.int64), np.diff(offsets)
        )


def _edge_index_arrays(graph, ids: List[VertexId]):
    """``(sources, targets)`` index arrays of the graph's directed edges.

    Edge order follows per-vertex adjacency order, which ``freeze()``
    preserves -- so a ``DiGraph`` and its CSR counterpart yield identical
    arrays and therefore identical LDG assignments.
    """
    graph_targets = getattr(graph, "targets", None)
    if graph_targets is not None and getattr(graph, "ids", None) is ids:
        sources = np.repeat(np.arange(len(ids), dtype=np.int64), graph.out_degrees)
        return sources, graph_targets
    index = {vertex: i for i, vertex in enumerate(ids)}
    sources_list: List[int] = []
    targets_list: List[int] = []
    for i, vertex in enumerate(ids):
        for target, _ in graph.out_edges(vertex):
            sources_list.append(i)
            targets_list.append(index[target])
    return (
        np.asarray(sources_list, dtype=np.int64),
        np.asarray(targets_list, dtype=np.int64),
    )


def edge_cut(graph, partitioning: Partitioning) -> int:
    """Number of directed edges whose endpoints live on different workers.

    The partition-quality metric LDG minimises: cut edges are exactly the
    *remote* messages of a full-graph superstep, the quantity the paper's
    network model charges for.  One vectorized pass on a frozen graph; a
    Python edge loop on a ``DiGraph``.
    """
    workers = partitioning.assignment_array(graph)
    targets = getattr(graph, "targets", None)
    if targets is not None:
        source_workers = np.repeat(workers, graph.out_degrees)
        return int(np.count_nonzero(source_workers != workers[targets]))
    assignment = partitioning.assignment
    count = 0
    for vertex in graph.vertices():
        worker = assignment[vertex]
        for target, _ in graph.out_edges(vertex):
            if assignment[target] != worker:
                count += 1
    return count


#: Partitioner registry used by the experiments CLI.
PARTITIONERS = {
    "hash": HashPartitioner,
    "range": RangePartitioner,
    "chunk": ChunkPartitioner,
    "ldg": LDGPartitioner,
    "contiguous": ContiguousPartitioner,
}


def partitioner_by_name(name: str) -> BasePartitioner:
    """Instantiate a partitioner by registry name (case-insensitive)."""
    key = name.lower()
    if key not in PARTITIONERS:
        raise ConfigurationError(
            f"unknown partitioner {name!r}; available: {sorted(PARTITIONERS)}"
        )
    return PARTITIONERS[key]()
