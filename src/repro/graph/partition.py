"""Vertex partitioning: mapping vertices to BSP workers.

Giraph's master "is in charge of partitioning the input according to a
partitioning strategy [and] allocating partitions to workers".  The default
strategy is hash partitioning of vertex ids.  The partitioning matters for
PREDIcT because the *worker on the critical path* -- the one with the most
outbound edges -- determines the runtime of each superstep, and the paper's
critical-path detection runs directly on the partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graph.digraph import DiGraph, VertexId


@dataclass
class Partitioning:
    """The result of partitioning a graph across workers.

    Attributes
    ----------
    assignment:
        Map vertex id -> worker index.
    worker_vertices:
        For each worker, the list of vertices it owns.
    """

    num_workers: int
    assignment: Dict[VertexId, int]
    worker_vertices: List[List[VertexId]] = field(default_factory=list)

    def worker_of(self, vertex: VertexId) -> int:
        """Return the worker that owns ``vertex``."""
        return self.assignment[vertex]

    def vertices_of(self, worker: int) -> List[VertexId]:
        """Return the vertices owned by ``worker``."""
        return self.worker_vertices[worker]

    def assignment_array(self, graph: DiGraph) -> np.ndarray:
        """Worker index of each vertex, aligned with ``graph.vertices()`` order.

        This is the partition map the engine's vectorized superstep uses to
        classify messages as local or remote with one array comparison.
        """
        return np.fromiter(
            (self.assignment[vertex] for vertex in graph.vertices()),
            dtype=np.int64,
            count=graph.num_vertices,
        )

    def worker_outbound_edges(self, graph: DiGraph) -> List[int]:
        """Total outbound edges per worker.

        This is exactly the statistic the paper's critical-path heuristic
        uses: "the worker with the largest number of outbound edges is
        considered to be on the critical path".
        """
        degrees = getattr(graph, "out_degrees", None)
        if degrees is not None:
            # Frozen (CSR) graph: one bincount instead of a Python loop.
            owners = self.assignment_array(graph)
            totals = np.bincount(owners, weights=degrees, minlength=self.num_workers)
            return [int(total) for total in totals]
        totals = [0] * self.num_workers
        for vertex, worker in self.assignment.items():
            totals[worker] += graph.out_degree(vertex)
        return totals

    def worker_vertex_counts(self) -> List[int]:
        """Number of vertices per worker."""
        return [len(vertices) for vertices in self.worker_vertices]


class BasePartitioner:
    """Interface: assign every vertex of a graph to one of ``num_workers``."""

    def partition(self, graph: DiGraph, num_workers: int) -> Partitioning:
        """Return a :class:`Partitioning` of ``graph`` over ``num_workers``."""
        raise NotImplementedError

    @staticmethod
    def _validate(graph: DiGraph, num_workers: int) -> None:
        if num_workers <= 0:
            raise ConfigurationError(f"num_workers must be positive, got {num_workers}")
        if graph.num_vertices == 0:
            raise ConfigurationError("cannot partition an empty graph")

    @staticmethod
    def _build(num_workers: int, assignment: Dict[VertexId, int]) -> Partitioning:
        worker_vertices: List[List[VertexId]] = [[] for _ in range(num_workers)]
        for vertex, worker in assignment.items():
            worker_vertices[worker].append(vertex)
        return Partitioning(
            num_workers=num_workers,
            assignment=assignment,
            worker_vertices=worker_vertices,
        )


class HashPartitioner(BasePartitioner):
    """Giraph's default: worker = hash(vertex id) mod num_workers."""

    def partition(self, graph: DiGraph, num_workers: int) -> Partitioning:
        self._validate(graph, num_workers)
        assignment = {vertex: hash(vertex) % num_workers for vertex in graph.vertices()}
        return self._build(num_workers, assignment)


class RangePartitioner(BasePartitioner):
    """Contiguous id ranges: vertices are sorted and split into equal ranges."""

    def partition(self, graph: DiGraph, num_workers: int) -> Partitioning:
        self._validate(graph, num_workers)
        ordered: Sequence[VertexId] = sorted(graph.vertices(), key=lambda v: (str(type(v)), v))
        assignment: Dict[VertexId, int] = {}
        chunk = max(1, (len(ordered) + num_workers - 1) // num_workers)
        for index, vertex in enumerate(ordered):
            assignment[vertex] = min(index // chunk, num_workers - 1)
        return self._build(num_workers, assignment)


class ChunkPartitioner(BasePartitioner):
    """Round-robin over vertex insertion order (balanced vertex counts)."""

    def partition(self, graph: DiGraph, num_workers: int) -> Partitioning:
        self._validate(graph, num_workers)
        assignment = {
            vertex: index % num_workers for index, vertex in enumerate(graph.vertices())
        }
        return self._build(num_workers, assignment)
