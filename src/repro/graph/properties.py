"""Graph property analysis.

These are the key properties the paper's sampling requirements refer to:

* in/out degree distributions and their proportionality,
* the *effective diameter* (the 90th-percentile shortest-path distance over
  connected pairs, per Kang et al. / Leskovec et al.),
* clustering coefficient,
* connectivity (weakly connected components), and
* a power-law / scale-free check on the out-degree distribution (the paper
  observes that LiveJournal's out-degree distribution does not follow a power
  law, which explains its larger prediction errors).

Exact diameter computation is quadratic, so the effective diameter is
estimated by BFS from a random sample of source vertices, which is standard
practice and sufficient for the comparisons the benchmarks make.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.graph.digraph import DiGraph, VertexId
from repro.utils.rng import SeedLike, make_rng
from repro.utils.stats import d_statistic


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary statistics of a degree sequence."""

    mean: float
    median: float
    maximum: int
    p90: float
    p99: float

    @classmethod
    def from_sequence(cls, degrees: Sequence[int]) -> "DegreeStatistics":
        """Compute statistics from a raw degree sequence."""
        arr = np.asarray(degrees, dtype=float)
        if arr.size == 0:
            return cls(0.0, 0.0, 0, 0.0, 0.0)
        return cls(
            mean=float(arr.mean()),
            median=float(np.median(arr)),
            maximum=int(arr.max()),
            p90=float(np.percentile(arr, 90)),
            p99=float(np.percentile(arr, 99)),
        )


@dataclass(frozen=True)
class GraphProperties:
    """The per-graph properties reported by Table 2 and used by the samplers."""

    name: str
    num_vertices: int
    num_edges: int
    average_out_degree: float
    out_degree: DegreeStatistics
    in_degree: DegreeStatistics
    effective_diameter: float
    clustering_coefficient: float
    largest_wcc_fraction: float
    scale_free: bool

    def as_dict(self) -> dict:
        """Flatten the properties for tabular reporting."""
        return {
            "name": self.name,
            "vertices": self.num_vertices,
            "edges": self.num_edges,
            "avg_out_degree": round(self.average_out_degree, 2),
            "max_out_degree": self.out_degree.maximum,
            "effective_diameter": round(self.effective_diameter, 2),
            "clustering_coefficient": round(self.clustering_coefficient, 4),
            "largest_wcc_fraction": round(self.largest_wcc_fraction, 3),
            "scale_free": self.scale_free,
        }


def bfs_distances(graph: DiGraph, source: VertexId, directed: bool = True,
                  in_adjacency: Optional[Dict[VertexId, List[VertexId]]] = None) -> Dict[VertexId, int]:
    """Return shortest-path hop distances from ``source``.

    When ``directed`` is False the traversal also follows reverse edges; the
    caller may pass a precomputed in-adjacency map to avoid rebuilding it for
    every source.
    """
    distances: Dict[VertexId, int] = {source: 0}
    queue = deque([source])
    if not directed and in_adjacency is None:
        in_adjacency = build_in_adjacency(graph)
    while queue:
        vertex = queue.popleft()
        depth = distances[vertex]
        neighbours = graph.successors(vertex)
        if not directed and in_adjacency is not None:
            neighbours = neighbours + in_adjacency.get(vertex, [])
        for neighbour in neighbours:
            if neighbour not in distances:
                distances[neighbour] = depth + 1
                queue.append(neighbour)
    return distances


def build_in_adjacency(graph: DiGraph) -> Dict[VertexId, List[VertexId]]:
    """Return a map from each vertex to the list of its in-neighbours."""
    in_adj: Dict[VertexId, List[VertexId]] = {v: [] for v in graph.vertices()}
    for source, target, _ in graph.edges():
        in_adj[target].append(source)
    return in_adj


def effective_diameter(
    graph: DiGraph,
    quantile: float = 0.9,
    num_sources: int = 64,
    directed: bool = False,
    seed: SeedLike = 7,
) -> float:
    """Estimate the effective diameter of ``graph``.

    The effective diameter is "the shortest distance in which ``quantile`` of
    all connected pairs of nodes can reach each other".  It is estimated from
    BFS trees rooted at ``num_sources`` randomly chosen vertices.
    """
    vertices = list(graph.vertices())
    if not vertices:
        return 0.0
    rng = make_rng(seed)
    if len(vertices) <= num_sources:
        sources = vertices
    else:
        indices = rng.choice(len(vertices), size=num_sources, replace=False)
        sources = [vertices[i] for i in indices]
    in_adj = None if directed else build_in_adjacency(graph)
    all_distances: List[int] = []
    for source in sources:
        distances = bfs_distances(graph, source, directed=directed, in_adjacency=in_adj)
        all_distances.extend(d for d in distances.values() if d > 0)
    if not all_distances:
        return 0.0
    return float(np.percentile(np.asarray(all_distances, dtype=float), quantile * 100))


def clustering_coefficient(graph: DiGraph, num_samples: int = 2000, seed: SeedLike = 11) -> float:
    """Estimate the average local clustering coefficient (undirected sense).

    For each sampled vertex we measure what fraction of its neighbour pairs
    are themselves connected (in either direction).  Vertices with fewer than
    two neighbours contribute zero, which is the usual convention.
    """
    vertices = list(graph.vertices())
    if not vertices:
        return 0.0
    rng = make_rng(seed)
    if len(vertices) <= num_samples:
        sampled = vertices
    else:
        indices = rng.choice(len(vertices), size=num_samples, replace=False)
        sampled = [vertices[i] for i in indices]
    in_adj = build_in_adjacency(graph)
    neighbour_sets = {}

    def neighbours_of(vertex: VertexId) -> set:
        if vertex not in neighbour_sets:
            neighbour_sets[vertex] = set(graph.successors(vertex)) | set(in_adj.get(vertex, []))
            neighbour_sets[vertex].discard(vertex)
        return neighbour_sets[vertex]

    coefficients = []
    for vertex in sampled:
        neigh = list(neighbours_of(vertex))
        k = len(neigh)
        if k < 2:
            coefficients.append(0.0)
            continue
        # Cap the neighbourhood size for hub vertices to keep this tractable.
        if k > 50:
            idx = rng.choice(k, size=50, replace=False)
            neigh = [neigh[i] for i in idx]
            k = 50
        links = 0
        for i in range(k):
            set_i = neighbours_of(neigh[i])
            for j in range(i + 1, k):
                if neigh[j] in set_i:
                    links += 1
        coefficients.append(2.0 * links / (k * (k - 1)))
    return float(np.mean(coefficients))


def weakly_connected_components(graph: DiGraph) -> List[List[VertexId]]:
    """Return the weakly connected components as lists of vertex ids."""
    in_adj = build_in_adjacency(graph)
    seen: set = set()
    components: List[List[VertexId]] = []
    for start in graph.vertices():
        if start in seen:
            continue
        component = []
        queue = deque([start])
        seen.add(start)
        while queue:
            vertex = queue.popleft()
            component.append(vertex)
            for neighbour in graph.successors(vertex):
                if neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
            for neighbour in in_adj.get(vertex, []):
                if neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
        components.append(component)
    return components


def largest_wcc_fraction(graph: DiGraph) -> float:
    """Fraction of vertices inside the largest weakly connected component."""
    if graph.num_vertices == 0:
        return 0.0
    components = weakly_connected_components(graph)
    largest = max(len(c) for c in components)
    return largest / graph.num_vertices


def is_scale_free(graph: DiGraph, minimum_exponent: float = 1.5, maximum_exponent: float = 4.0) -> bool:
    """Heuristically test whether the out-degree distribution follows a power law.

    A log-log linear regression is fitted to the complementary CDF of the
    out-degree distribution; the graph is called scale-free when the fit is
    good (R² >= 0.85) and the implied exponent is in a plausible range.  This
    mirrors the paper's footnote analysis of LiveJournal's out-degree
    distribution ("we observed that it is not following a power law").
    """
    degrees = np.asarray([d for d in graph.out_degree_sequence() if d > 0], dtype=float)
    if degrees.size < 10:
        return False
    values, counts = np.unique(degrees, return_counts=True)
    ccdf = 1.0 - np.cumsum(counts) / counts.sum()
    # Drop the final zero entry of the CCDF to keep the log defined.
    mask = ccdf > 0
    if mask.sum() < 5:
        return False
    log_x = np.log10(values[mask])
    log_y = np.log10(ccdf[mask])
    slope, intercept = np.polyfit(log_x, log_y, 1)
    fitted = slope * log_x + intercept
    ss_res = float(np.sum((log_y - fitted) ** 2))
    ss_tot = float(np.sum((log_y - log_y.mean()) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    exponent = 1.0 - slope  # CCDF exponent is alpha - 1 for a power law.
    return bool(r_squared >= 0.85 and minimum_exponent <= exponent <= maximum_exponent)


def analyze(graph: DiGraph, seed: SeedLike = 17, diameter_sources: int = 48) -> GraphProperties:
    """Compute the full :class:`GraphProperties` bundle for ``graph``."""
    out_stats = DegreeStatistics.from_sequence(graph.out_degree_sequence())
    in_stats = DegreeStatistics.from_sequence(graph.in_degree_sequence())
    avg_out = graph.num_edges / graph.num_vertices if graph.num_vertices else 0.0
    return GraphProperties(
        name=graph.name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        average_out_degree=avg_out,
        out_degree=out_stats,
        in_degree=in_stats,
        effective_diameter=effective_diameter(graph, num_sources=diameter_sources, seed=seed),
        clustering_coefficient=clustering_coefficient(graph, seed=seed),
        largest_wcc_fraction=largest_wcc_fraction(graph),
        scale_free=is_scale_free(graph),
    )


def degree_d_statistics(graph: DiGraph, sample: DiGraph) -> Dict[str, float]:
    """D-statistics between the degree distributions of ``graph`` and ``sample``.

    This is the Leskovec & Faloutsos quality score the paper cites when
    motivating the choice of Random Jump-style sampling.
    """
    return {
        "out_degree": d_statistic(sample.out_degree_sequence(), graph.out_degree_sequence()),
        "in_degree": d_statistic(sample.in_degree_sequence(), graph.in_degree_sequence()),
    }
