"""Synthetic graph generators.

The paper evaluates on four real graphs (LiveJournal, Wikipedia, Twitter,
UK-2002).  Those datasets are not redistributable inside this repository and
are far too large for a pure-Python testbed, so we generate *stand-ins* whose
qualitative shape matches the originals:

* ``preferential_attachment`` -- directed Barabási–Albert-style scale-free
  graphs; used for the web-graph stand-ins (Wikipedia, UK-2002).
* ``rmat`` -- recursive-matrix (Kronecker-like) generator with strong hub
  skew; used for the Twitter stand-in, which is much denser than the rest.
* ``copying_model`` -- the classic web-graph copying model; an alternative
  scale-free generator used in tests and ablations.
* ``lognormal_digraph`` -- a generator whose out-degree distribution follows
  a log-normal (NOT a power law).  The paper attributes LiveJournal's larger
  prediction errors to its non-power-law out-degree distribution, so the LJ
  stand-in uses this generator.
* ``erdos_renyi`` -- uniform random graphs for unit tests.
* ``uniform_csr`` -- array-native uniform random graphs built directly as
  frozen :class:`repro.graph.csr.CSRGraph` instances (no per-edge Python
  work); used by the performance benchmarks that need 50k+ vertices.
* ``chain`` / ``star`` / ``complete`` -- degenerate structures used to test
  the documented limitations of the methodology (§3.5 of the paper).

All generators are deterministic given a seed.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graph.digraph import DiGraph
from repro.utils.rng import SeedLike, make_rng


def _require_positive(name: str, value: int) -> None:
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")


def preferential_attachment(
    num_vertices: int,
    out_degree: int = 8,
    seed: SeedLike = None,
    name: str = "preferential-attachment",
) -> DiGraph:
    """Directed scale-free graph via preferential attachment.

    Each new vertex creates ``out_degree`` outgoing edges whose targets are
    chosen proportionally to the targets' current in-degree (plus one), which
    yields a heavy-tailed in-degree distribution and a correlated, heavy-tailed
    out-degree distribution once the extra "back edges" below are added.
    A fraction of reciprocal edges is added so the graph is well connected in
    both directions, as real web graphs are.
    """
    _require_positive("num_vertices", num_vertices)
    _require_positive("out_degree", out_degree)
    rng = make_rng(seed)
    graph = DiGraph(name=name)

    # Target pool with repetition implements preferential attachment cheaply.
    target_pool: List[int] = []
    initial = min(out_degree + 1, num_vertices)
    for vertex in range(initial):
        graph.add_vertex(vertex)
        target_pool.append(vertex)
    for vertex in range(initial):
        for other in range(initial):
            if vertex != other:
                graph.add_edge(vertex, other)
                target_pool.append(other)

    for vertex in range(initial, num_vertices):
        graph.add_vertex(vertex)
        num_links = 1 + rng.poisson(max(out_degree - 1, 0))
        num_links = min(num_links, vertex)
        chosen = set()
        for _ in range(num_links):
            target = int(target_pool[rng.integers(0, len(target_pool))])
            if target == vertex or target in chosen:
                continue
            chosen.add(target)
            graph.add_edge(vertex, target)
            target_pool.append(target)
            target_pool.append(vertex)
            # Occasionally add a reciprocal edge so hubs also have large
            # out-degree, which matters for BRJ seed selection.
            if rng.random() < 0.3:
                graph.add_edge(target, vertex)
                target_pool.append(vertex)
    return graph


def rmat(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: SeedLike = None,
    name: str = "rmat",
) -> DiGraph:
    """R-MAT / Kronecker-style generator (2^scale vertices).

    The default (a, b, c, d) parameters are the Graph500 values, which produce
    extremely skewed degree distributions similar to the Twitter follower
    graph.  ``edge_factor`` is the average number of directed edges per vertex.
    """
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    d = 1.0 - a - b - c
    if d < 0:
        raise ConfigurationError("rmat probabilities must sum to at most 1")
    rng = make_rng(seed)
    num_vertices = 2**scale
    num_edges = num_vertices * edge_factor
    graph = DiGraph(name=name)
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)

    # Vectorised quadrant selection: for each edge and each level of recursion
    # draw which quadrant of the adjacency matrix the edge falls into.
    sources = np.zeros(num_edges, dtype=np.int64)
    targets = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        draws = rng.random(num_edges)
        go_right = (draws >= a + c) & (draws < a + c + b) | (draws >= a + b + c)
        go_down = (draws >= a) & (draws < a + c) | (draws >= a + b + c)
        bit = 1 << (scale - level - 1)
        sources += np.where(go_down, bit, 0)
        targets += np.where(go_right, bit, 0)
    for source, target in zip(sources.tolist(), targets.tolist()):
        if source != target:
            graph.add_edge(int(source), int(target))
    return graph


def copying_model(
    num_vertices: int,
    out_degree: int = 6,
    copy_probability: float = 0.5,
    seed: SeedLike = None,
    name: str = "copying-model",
) -> DiGraph:
    """Web-graph copying model (Kumar et al.): new vertices copy the out-links
    of a randomly chosen prototype with probability ``copy_probability`` and
    otherwise link to uniformly random earlier vertices."""
    _require_positive("num_vertices", num_vertices)
    _require_positive("out_degree", out_degree)
    if not 0.0 <= copy_probability <= 1.0:
        raise ConfigurationError("copy_probability must be in [0, 1]")
    rng = make_rng(seed)
    graph = DiGraph(name=name)
    initial = min(out_degree + 1, num_vertices)
    for vertex in range(initial):
        graph.add_vertex(vertex)
    for vertex in range(initial):
        for other in range(initial):
            if vertex != other:
                graph.add_edge(vertex, other)
    for vertex in range(initial, num_vertices):
        graph.add_vertex(vertex)
        prototype = int(rng.integers(0, vertex))
        prototype_targets = graph.successors(prototype)
        for slot in range(out_degree):
            if prototype_targets and rng.random() < copy_probability:
                target = prototype_targets[int(rng.integers(0, len(prototype_targets)))]
            else:
                target = int(rng.integers(0, vertex))
            if target != vertex:
                graph.add_edge(vertex, target)
    return graph


def lognormal_digraph(
    num_vertices: int,
    mean_out_degree: float = 12.0,
    sigma: float = 0.6,
    reciprocity: float = 0.4,
    seed: SeedLike = None,
    name: str = "lognormal",
) -> DiGraph:
    """Directed graph with a log-normal out-degree distribution.

    Social friendship graphs such as LiveJournal have out-degree distributions
    that are heavy-ish but *not* power laws; the paper singles this out as the
    reason LiveJournal samples poorly.  This generator reproduces that regime:
    out-degrees are log-normal, targets are chosen with mild preferential
    attachment, and a substantial fraction of edges are reciprocated (as in a
    friendship graph).
    """
    _require_positive("num_vertices", num_vertices)
    rng = make_rng(seed)
    graph = DiGraph(name=name)
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)
    mu = np.log(mean_out_degree) - 0.5 * sigma**2
    out_degrees = np.maximum(1, rng.lognormal(mean=mu, sigma=sigma, size=num_vertices).astype(int))
    # Mild popularity skew for target choice, far from a power law.
    popularity = rng.lognormal(mean=0.0, sigma=0.8, size=num_vertices)
    popularity = popularity / popularity.sum()
    for vertex in range(num_vertices):
        k = int(min(out_degrees[vertex], num_vertices - 1))
        targets = rng.choice(num_vertices, size=k, replace=False, p=popularity)
        for target in targets.tolist():
            if target == vertex:
                continue
            graph.add_edge(vertex, int(target))
            if rng.random() < reciprocity:
                graph.add_edge(int(target), vertex)
    return graph


def uniform_csr(
    num_vertices: int,
    num_edges: int,
    seed: SeedLike = None,
    name: str = "uniform-csr",
):
    """Uniform random directed graph built directly as a frozen CSR graph.

    Samples ``num_edges`` (source, target) pairs uniformly (self-loops are
    resampled away where possible) entirely with array operations -- no
    per-edge Python work -- so it scales to the 50k+ vertex graphs the
    performance benchmarks need.  Returns a
    :class:`repro.graph.csr.CSRGraph`; use ``.to_digraph()`` when a mutable
    copy is required (e.g. for scalar-vs-vectorized comparisons).
    """
    from repro.graph.csr import CSRGraph

    _require_positive("num_vertices", num_vertices)
    _require_positive("num_edges", num_edges)
    rng = make_rng(seed)
    sources = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    targets = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    if num_vertices > 1:
        loops = sources == targets
        # Shift loop targets by a random non-zero offset to break the loop
        # without changing the uniform marginal distribution.
        offsets = rng.integers(1, num_vertices, size=int(loops.sum()), dtype=np.int64)
        targets[loops] = (targets[loops] + offsets) % num_vertices
    return CSRGraph.from_edge_arrays(num_vertices, sources, targets, name=name)


def erdos_renyi(
    num_vertices: int,
    edge_probability: float,
    seed: SeedLike = None,
    name: str = "erdos-renyi",
) -> DiGraph:
    """Uniform G(n, p) directed random graph (used mainly in tests)."""
    _require_positive("num_vertices", num_vertices)
    if not 0.0 <= edge_probability <= 1.0:
        raise ConfigurationError("edge_probability must be in [0, 1]")
    rng = make_rng(seed)
    graph = DiGraph(name=name)
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)
    expected = edge_probability * num_vertices * (num_vertices - 1)
    if expected > 0 and edge_probability < 0.2:
        # Sparse case: sample the number of edges then place them uniformly.
        num_edges = rng.poisson(expected)
        for _ in range(num_edges):
            source = int(rng.integers(0, num_vertices))
            target = int(rng.integers(0, num_vertices))
            if source != target:
                graph.add_edge(source, target)
    else:
        for source in range(num_vertices):
            for target in range(num_vertices):
                if source != target and rng.random() < edge_probability:
                    graph.add_edge(source, target)
    return graph


def chain(num_vertices: int, name: str = "chain") -> DiGraph:
    """A directed path 0 -> 1 -> ... -> n-1 (degenerate structure, §3.5)."""
    _require_positive("num_vertices", num_vertices)
    graph = DiGraph(name=name)
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)
    for vertex in range(num_vertices - 1):
        graph.add_edge(vertex, vertex + 1)
    return graph


def star(num_leaves: int, name: str = "star") -> DiGraph:
    """A star: vertex 0 points to every leaf (degenerate hub structure)."""
    _require_positive("num_leaves", num_leaves)
    graph = DiGraph(name=name)
    graph.add_vertex(0)
    for leaf in range(1, num_leaves + 1):
        graph.add_edge(0, leaf)
    return graph


def complete(num_vertices: int, name: str = "complete") -> DiGraph:
    """Complete directed graph on ``num_vertices`` vertices."""
    _require_positive("num_vertices", num_vertices)
    graph = DiGraph(name=name)
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)
    for source in range(num_vertices):
        for target in range(num_vertices):
            if source != target:
                graph.add_edge(source, target)
    return graph


def two_level_hierarchy(
    num_communities: int,
    community_size: int,
    intra_probability: float = 0.3,
    inter_edges_per_vertex: int = 1,
    seed: SeedLike = None,
    name: str = "communities",
) -> DiGraph:
    """Community-structured graph used for semi-clustering examples/tests.

    Vertices within a community are densely connected, with a handful of
    random cross-community edges, so that semi-clustering has genuine cluster
    structure to discover.
    """
    _require_positive("num_communities", num_communities)
    _require_positive("community_size", community_size)
    rng = make_rng(seed)
    graph = DiGraph(name=name)
    total = num_communities * community_size
    for vertex in range(total):
        graph.add_vertex(vertex)
    for community in range(num_communities):
        base = community * community_size
        for i in range(community_size):
            for j in range(community_size):
                if i != j and rng.random() < intra_probability:
                    graph.add_edge(base + i, base + j, weight=1.0 + rng.random())
    for vertex in range(total):
        for _ in range(inter_edges_per_vertex):
            target = int(rng.integers(0, total))
            if target != vertex:
                graph.add_edge(vertex, target, weight=0.1 + 0.2 * rng.random())
    return graph
