"""Graph substrate: directed graphs, generators, properties, I/O, partitioning.

This package is the stand-in for the paper's input layer (HDFS edge lists of
real web/social graphs).  It provides:

* :class:`repro.graph.digraph.DiGraph` -- the in-memory directed graph used by
  the BSP engine, the samplers and the property analysers.
* :class:`repro.graph.csr.CSRGraph` -- the immutable NumPy/CSR counterpart
  produced by ``DiGraph.freeze()``; same protocol, array-native internals,
  enables the engine's vectorized superstep fast path.
* :mod:`repro.graph.generators` -- synthetic scale-free / non-scale-free graph
  generators used to build laptop-scale stand-ins for the paper's datasets.
* :mod:`repro.graph.datasets` -- the registry of stand-in datasets (LiveJournal,
  Wikipedia, Twitter, UK-2002) with shapes calibrated to the originals.
* :mod:`repro.graph.properties` -- degree statistics, effective diameter,
  clustering coefficient and connectivity, used both by the samplers'
  quality report and by the Table 2 benchmark.
* :mod:`repro.graph.partition` -- vertex partitioners mapping vertices to BSP
  workers (hash partitioning is Giraph's default).
* :mod:`repro.graph.ingest` -- out-of-core edge-list ingestion into on-disk,
  memmap-backed CSR caches (graphs larger than RAM).
"""

from repro.graph.digraph import DiGraph
from repro.graph.csr import CSRGraph
from repro.graph.builder import GraphBuilder
from repro.graph.ingest import (
    ingest_edge_list,
    ingest_or_load,
    load_csr_cache,
    save_csr_cache,
)
from repro.graph.partition import (
    ChunkPartitioner,
    ContiguousPartitioner,
    HashPartitioner,
    Partitioning,
    RangePartitioner,
)

__all__ = [
    "DiGraph",
    "CSRGraph",
    "GraphBuilder",
    "HashPartitioner",
    "RangePartitioner",
    "ChunkPartitioner",
    "ContiguousPartitioner",
    "Partitioning",
    "ingest_edge_list",
    "ingest_or_load",
    "load_csr_cache",
    "save_csr_cache",
]
