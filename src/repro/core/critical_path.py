"""Identifying the worker on the critical path before execution.

In a homogeneous cluster the superstep runtime is determined by the slowest
worker.  For network-intensive algorithms the slowest worker is the one with
the most messaging work, and the number of messages a worker sends is
determined by the outbound edges of the vertices it owns.  The paper's
heuristic (§3.4, "Modeling the Critical Path") therefore is: given the
partitioning, compute the total outbound edges per worker and declare the
worker with the largest total to be on the critical path.  This can be done in
the read phase, *before* the superstep phase starts, which is what makes it
usable for prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graph.digraph import DiGraph
from repro.graph.partition import Partitioning


@dataclass(frozen=True)
class CriticalPathEstimate:
    """The predicted critical-path worker and the per-worker statistics."""

    critical_worker: int
    outbound_edges: List[int]
    vertex_counts: List[int]

    @property
    def skew(self) -> float:
        """Ratio between the critical worker's edges and the mean worker's."""
        if not self.outbound_edges:
            return 1.0
        mean = sum(self.outbound_edges) / len(self.outbound_edges)
        if mean == 0:
            return 1.0
        return self.outbound_edges[self.critical_worker] / mean


def estimate_critical_path(
    graph: DiGraph, partitioning: Optional[Partitioning] = None
) -> CriticalPathEstimate:
    """Predict which worker will be on the critical path for ``partitioning``.

    On a partition-native graph (``graph.partition_layout`` set by
    ``CSRGraph.repartition``) the per-worker statistics are pure slice
    arithmetic over the layout: worker ``w``'s outbound edge count is
    ``indptr[offsets[w + 1]] - indptr[offsets[w]]`` -- the bounds of its
    contiguous CSR edge slice -- and its vertex count is the width of its
    index range.  These are exactly the edge volumes the engine's batch path
    routes per worker, so the detection is *exact* for that path (no
    per-vertex re-aggregation, no Python loop).  ``partitioning`` may be
    omitted for such a graph; for any other graph it is required and the
    statistics come from the partitioning's vectorized per-worker bincounts.
    """
    layout = getattr(graph, "partition_layout", None)
    if layout is not None and (
        partitioning is None or partitioning.layout() is layout
    ):
        outbound = (
            graph.indptr[layout.offsets[1:]] - graph.indptr[layout.offsets[:-1]]
        ).tolist()
        vertex_counts = np.diff(layout.offsets).tolist()
    elif partitioning is None:
        raise ConfigurationError(
            "estimate_critical_path needs a partitioning for a graph without "
            "a partition-native layout"
        )
    else:
        outbound = partitioning.worker_outbound_edges(graph)
        vertex_counts = partitioning.worker_vertex_counts()
    critical = int(max(range(len(outbound)), key=outbound.__getitem__))
    return CriticalPathEstimate(
        critical_worker=critical,
        outbound_edges=outbound,
        vertex_counts=vertex_counts,
    )


def critical_path_accuracy(estimate: CriticalPathEstimate, observed_workers: List[int]) -> float:
    """Fraction of iterations whose observed critical worker matches the estimate.

    ``observed_workers`` is the list of per-iteration critical workers recorded
    by the engine.  Used by the unit tests to validate the heuristic.
    """
    if not observed_workers:
        return 0.0
    hits = sum(1 for worker in observed_workers if worker == estimate.critical_worker)
    return hits / len(observed_workers)
