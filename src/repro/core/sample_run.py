"""The sample run: executing the algorithm on a transformed sample.

The sample run is the preliminary phase of PREDIcT (§3.2): sample the input
graph, apply the transform function to the algorithm's configuration, execute
the algorithm on the sample with the *same* execution framework and system
configuration as the actual run, and profile per-iteration key input features.

:class:`SampleRunner` packages those steps; its output,
:class:`SampleRunProfile`, carries everything the prediction phase needs: the
sample itself, the profiled run, the scaling factors ``eV``/``eE`` and the
transformed configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.bsp.engine import BSPEngine, EngineConfig
from repro.bsp.result import RunResult
from repro.core.extrapolation import ScalingFactors
from repro.core.features import FeatureRow, FeatureTable
from repro.core.transform import TransformFunction, default_transform
from repro.exceptions import ConfigurationError
from repro.graph.digraph import DiGraph
from repro.obs.tracer import current_tracer
from repro.sampling.base import SampleResult, VertexSampler
from repro.sampling.biased_random_jump import BiasedRandomJump


@dataclass
class SampleRunProfile:
    """Everything observed during one sample run."""

    algorithm: str
    graph_name: str
    sampling_ratio: float
    sample: SampleResult
    run: RunResult
    factors: ScalingFactors
    sample_config: object

    @property
    def num_iterations(self) -> int:
        """Number of iterations the sample run executed."""
        return self.run.num_iterations

    @property
    def runtime(self) -> float:
        """Total simulated runtime of the sample run (all phases)."""
        return self.run.total_runtime

    def feature_rows(self, level: str = "critical") -> List[FeatureRow]:
        """Per-iteration feature rows of the sample run."""
        return self.run.iteration_feature_rows(level=level)

    def training_table(self, level: str = "critical") -> FeatureTable:
        """(features, runtime) observations for cost-model training."""
        return FeatureTable.from_run(self.run, level=level)


class DictProfileCache:
    """Minimal in-process profile cache (an unbounded dict behind get/put).

    Speaks the same ``get``/``put`` protocol as the service's pluggable
    :class:`~repro.service.cache.CacheBackend`, so a :class:`SampleRunner`
    takes either interchangeably.
    """

    def __init__(self) -> None:
        self._data: Dict[Any, SampleRunProfile] = {}

    def get(self, key, default=None):
        return self._data.get(key, default)

    def put(self, key, value) -> None:
        self._data[key] = value

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


class SampleRunner:
    """Runs an algorithm on samples of a graph, applying the transform function.

    ``profile_cache`` + ``profile_key`` plug in sample-run memoisation: before
    executing, ``profile_key(graph, config, ratio)`` keys a ``get`` on the
    cache, and a finished profile is ``put`` back.  Sample runs are
    deterministic given (graph, config, ratio) -- the sampler re-seeds per
    call -- so cached profiles are exact, not approximations.  The predictor
    uses a per-predictor dict cache; the prediction service shares one
    canonical-keyed cache across requests (hits/misses are counted on the
    active tracer as ``sample_run.cache.hit`` / ``.miss``).
    """

    def __init__(
        self,
        engine: BSPEngine,
        algorithm,
        sampler: Optional[VertexSampler] = None,
        transform: Optional[TransformFunction] = None,
        engine_config: Optional[EngineConfig] = None,
        profile_cache: Optional[Any] = None,
        profile_key: Optional[Callable[[DiGraph, Any, float], Any]] = None,
    ) -> None:
        self.engine = engine
        self.algorithm = algorithm
        self.sampler = sampler or BiasedRandomJump()
        self.transform = transform or default_transform(algorithm)
        self.engine_config = engine_config or EngineConfig()
        self.profile_cache = profile_cache
        self.profile_key = profile_key

    def run(self, graph: DiGraph, config, sampling_ratio: float) -> SampleRunProfile:
        """Sample ``graph``, transform ``config`` and execute the sample run."""
        if not 0.0 < sampling_ratio <= 1.0:
            raise ConfigurationError(
                f"sampling_ratio must be in (0, 1], got {sampling_ratio}"
            )
        # Trace through the engine's explicit tracer when one is configured;
        # otherwise through the ambient tracer (NULL_TRACER when off).
        tracer = self.engine_config.trace
        tracer = tracer if tracer is not None else current_tracer()
        cache_key = None
        if self.profile_cache is not None and self.profile_key is not None:
            cache_key = self.profile_key(graph, config, sampling_ratio)
            cached = self.profile_cache.get(cache_key)
            if cached is not None:
                tracer.counter("sample_run.cache.hit")
                return cached
            tracer.counter("sample_run.cache.miss")
        with tracer.span("sample_run") as run_span:
            if tracer.enabled:
                run_span.set("algorithm", self.algorithm.name)
                run_span.set("sampling_ratio", sampling_ratio)
            with tracer.span("sample") as sample_span:
                sample = self.sampler.sample(graph, sampling_ratio)
                if tracer.enabled:
                    sample_span.set("sample_vertices", sample.graph.num_vertices)
                    sample_span.set("sample_edges", sample.graph.num_edges)
            if sample.graph.num_edges == 0:
                raise ConfigurationError(
                    "the sample contains no edges; increase the sampling ratio or "
                    "use a sampler that preserves connectivity"
                )
            with tracer.span("transform"):
                sample_config = self.transform(self.algorithm, config, sampling_ratio)
            run = self.engine.run(
                sample.graph,
                self.algorithm,
                config=sample_config,
                engine_config=self.engine_config,
            )
            factors = ScalingFactors.from_sample(graph, sample)
        profile = SampleRunProfile(
            algorithm=self.algorithm.name,
            graph_name=graph.name,
            sampling_ratio=sampling_ratio,
            sample=sample,
            run=run,
            factors=factors,
            sample_config=sample_config,
        )
        if cache_key is not None:
            self.profile_cache.put(cache_key, profile)
        return profile

    def run_many(self, graph: DiGraph, config, sampling_ratios) -> List[SampleRunProfile]:
        """Execute sample runs at several sampling ratios (training sweeps)."""
        return [self.run(graph, config, ratio) for ratio in sampling_ratios]
