"""Store of historical runs used to improve cost-model training.

The paper trains the cost model on the sample runs and, when available, on
*prior actual runs* of the same algorithm on different datasets: "such
historical runs are typically available for analytical applications that are
executed repetitively over newly arriving data sets".  The history store keeps
those profiled runs, indexed by algorithm and dataset, and can produce a
training :class:`~repro.core.features.FeatureTable` that excludes the dataset
currently being predicted (the paper's leave-the-predicted-dataset-out
protocol for Figures 7b / 8b).

Concurrency and persistence
---------------------------
A store is safe to share between threads (every mutation and snapshot holds
an internal lock -- the prediction service records from its executor threads
while ``status`` reads concurrently).  With a ``path`` the store also
persists to a JSON file, safely across *processes*:

* every write is **atomic** -- the new content goes to a temp file in the
  same directory, then ``os.replace`` swaps it in, so a reader (or a crash)
  never observes a half-written file;
* every append is a **load-modify-write under an exclusive file lock**
  (``fcntl.flock`` on a sibling ``.lock`` file): concurrent writers -- two
  daemons, a daemon plus a CLI -- serialise, re-read the rows the other just
  wrote, and append to the merged list, so no recorded run is ever dropped.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.bsp.result import RunResult
from repro.core.features import FeatureTable
from repro.exceptions import HistoryError

try:  # POSIX-only; the file lock degrades to best-effort elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

#: On-disk format version (bumped on incompatible changes).
_FORMAT_VERSION = 1


@dataclass(frozen=True)
class HistoricalRun:
    """One archived run: identification plus its per-iteration observations."""

    algorithm: str
    dataset: str
    num_vertices: int
    num_edges: int
    num_iterations: int
    table: FeatureTable
    total_runtime: float

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (for the persistent store)."""
        return {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "num_iterations": self.num_iterations,
            "rows": [dict(row) for row in self.table.rows],
            "runtimes": [float(r) for r in self.table.runtimes],
            "total_runtime": float(self.total_runtime),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "HistoricalRun":
        """Rebuild a run from :meth:`to_dict` output."""
        try:
            return cls(
                algorithm=payload["algorithm"],
                dataset=payload["dataset"],
                num_vertices=int(payload["num_vertices"]),
                num_edges=int(payload["num_edges"]),
                num_iterations=int(payload["num_iterations"]),
                table=FeatureTable(
                    rows=[dict(row) for row in payload["rows"]],
                    runtimes=[float(r) for r in payload["runtimes"]],
                ),
                total_runtime=float(payload["total_runtime"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise HistoryError(f"malformed history record: {exc}") from exc


@dataclass
class HistoryStore:
    """Archive of profiled runs; in-memory, optionally persisted to a file."""

    _runs: List[HistoricalRun] = field(default_factory=list)
    path: Optional[str] = None

    def __post_init__(self) -> None:
        self._lock = threading.RLock()
        if self.path is not None and Path(self.path).exists():
            self._runs = self._read_file()

    # ------------------------------------------------------------ file layer
    @contextmanager
    def _file_lock(self) -> Iterator[None]:
        """Exclusive inter-process lock guarding load-modify-write cycles."""
        lock_path = Path(f"{self.path}.lock")
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        with open(lock_path, "a+b") as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def _read_file(self) -> List[HistoricalRun]:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return []
        except (OSError, json.JSONDecodeError) as exc:
            raise HistoryError(f"cannot read history file {self.path!r}: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
            raise HistoryError(
                f"history file {self.path!r} has unsupported format "
                f"{payload.get('version') if isinstance(payload, dict) else '?'}"
            )
        return [HistoricalRun.from_dict(item) for item in payload.get("runs", [])]

    def _write_file(self, runs: List[HistoricalRun]) -> None:
        """Atomically replace the history file with ``runs``."""
        payload = {
            "version": _FORMAT_VERSION,
            "runs": [run.to_dict() for run in runs],
        }
        directory = Path(self.path).parent
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=str(directory), prefix=Path(self.path).name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except FileNotFoundError:
                pass
            raise

    # ------------------------------------------------------------------- API
    def record(self, run: RunResult, dataset: Optional[str] = None, level: str = "critical") -> HistoricalRun:
        """Archive a finished run and return the stored record.

        With a persistent ``path``, the append is a load-modify-write under
        the file lock: rows recorded concurrently by other processes are
        re-read and kept, the new record is appended, and the merged list is
        written atomically.
        """
        if run.num_iterations == 0:
            raise HistoryError("cannot archive a run with no iterations")
        record = HistoricalRun(
            algorithm=run.algorithm,
            dataset=dataset or run.graph_name,
            num_vertices=run.num_vertices,
            num_edges=run.num_edges,
            num_iterations=run.num_iterations,
            table=FeatureTable.from_run(run, level=level),
            total_runtime=run.superstep_runtime,
        )
        with self._lock:
            if self.path is None:
                self._runs.append(record)
            else:
                with self._file_lock():
                    merged = self._read_file()
                    merged.append(record)
                    self._write_file(merged)
                    self._runs = merged
        return record

    def reload(self) -> None:
        """Refresh the in-memory view from the persistent file (if any)."""
        if self.path is None:
            return
        with self._lock, self._file_lock():
            self._runs = self._read_file()

    def runs(self, algorithm: Optional[str] = None) -> List[HistoricalRun]:
        """All archived runs, optionally filtered by algorithm name."""
        with self._lock:
            snapshot = list(self._runs)
        if algorithm is None:
            return snapshot
        return [run for run in snapshot if run.algorithm == algorithm]

    def datasets(self, algorithm: str) -> List[str]:
        """Datasets for which runs of ``algorithm`` are archived."""
        return sorted({run.dataset for run in self.runs(algorithm)})

    def training_table(
        self,
        algorithm: str,
        exclude_dataset: Optional[str] = None,
    ) -> FeatureTable:
        """Merge the archived observations of ``algorithm`` into one table.

        ``exclude_dataset`` removes the dataset currently being predicted, so
        that history never leaks the answer (the paper's protocol).
        """
        tables = [
            run.table
            for run in self.runs(algorithm)
            if exclude_dataset is None or run.dataset != exclude_dataset
        ]
        return FeatureTable.merge(tables)

    def __len__(self) -> int:
        with self._lock:
            return len(self._runs)

    def clear(self) -> None:
        """Drop every archived run (and empty the persistent file, if any)."""
        with self._lock:
            if self.path is not None:
                with self._file_lock():
                    self._write_file([])
            self._runs = []

    def summary(self) -> List[Dict[str, object]]:
        """One row per archived run (for reports)."""
        return [
            {
                "algorithm": run.algorithm,
                "dataset": run.dataset,
                "iterations": run.num_iterations,
                "runtime_s": round(run.total_runtime, 3),
            }
            for run in self.runs()
        ]
