"""Store of historical runs used to improve cost-model training.

The paper trains the cost model on the sample runs and, when available, on
*prior actual runs* of the same algorithm on different datasets: "such
historical runs are typically available for analytical applications that are
executed repetitively over newly arriving data sets".  The history store keeps
those profiled runs, indexed by algorithm and dataset, and can produce a
training :class:`~repro.core.features.FeatureTable` that excludes the dataset
currently being predicted (the paper's leave-the-predicted-dataset-out
protocol for Figures 7b / 8b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bsp.result import RunResult
from repro.core.features import FeatureTable
from repro.exceptions import HistoryError


@dataclass(frozen=True)
class HistoricalRun:
    """One archived run: identification plus its per-iteration observations."""

    algorithm: str
    dataset: str
    num_vertices: int
    num_edges: int
    num_iterations: int
    table: FeatureTable
    total_runtime: float


@dataclass
class HistoryStore:
    """In-memory archive of profiled runs."""

    _runs: List[HistoricalRun] = field(default_factory=list)

    def record(self, run: RunResult, dataset: Optional[str] = None, level: str = "critical") -> HistoricalRun:
        """Archive a finished run and return the stored record."""
        if run.num_iterations == 0:
            raise HistoryError("cannot archive a run with no iterations")
        record = HistoricalRun(
            algorithm=run.algorithm,
            dataset=dataset or run.graph_name,
            num_vertices=run.num_vertices,
            num_edges=run.num_edges,
            num_iterations=run.num_iterations,
            table=FeatureTable.from_run(run, level=level),
            total_runtime=run.superstep_runtime,
        )
        self._runs.append(record)
        return record

    def runs(self, algorithm: Optional[str] = None) -> List[HistoricalRun]:
        """All archived runs, optionally filtered by algorithm name."""
        if algorithm is None:
            return list(self._runs)
        return [run for run in self._runs if run.algorithm == algorithm]

    def datasets(self, algorithm: str) -> List[str]:
        """Datasets for which runs of ``algorithm`` are archived."""
        return sorted({run.dataset for run in self.runs(algorithm)})

    def training_table(
        self,
        algorithm: str,
        exclude_dataset: Optional[str] = None,
    ) -> FeatureTable:
        """Merge the archived observations of ``algorithm`` into one table.

        ``exclude_dataset`` removes the dataset currently being predicted, so
        that history never leaks the answer (the paper's protocol).
        """
        tables = [
            run.table
            for run in self.runs(algorithm)
            if exclude_dataset is None or run.dataset != exclude_dataset
        ]
        return FeatureTable.merge(tables)

    def __len__(self) -> int:
        return len(self._runs)

    def clear(self) -> None:
        """Drop every archived run."""
        self._runs.clear()

    def summary(self) -> List[Dict[str, object]]:
        """One row per archived run (for reports)."""
        return [
            {
                "algorithm": run.algorithm,
                "dataset": run.dataset,
                "iterations": run.num_iterations,
                "runtime_s": round(run.total_runtime, 3),
            }
            for run in self._runs
        ]
