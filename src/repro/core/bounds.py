"""Analytical upper bounds used as baselines.

The paper compares PREDIcT's iteration estimates against the analytical upper
bound of Langville & Meyer for the number of PageRank iterations:

``#iterations = log10(epsilon) / log10(d)``

where ``epsilon`` is the tolerance level and ``d`` the damping factor.  The
bound ignores the characteristics of the input graph and is shown to be loose
(2x - 3.5x over-prediction in the paper's measurements).  We also provide the
acyclic-graph bound (diameter + 1) discussed in §1.1 and a trivial bound for
connected components (the graph diameter), so that the upper-bound benchmark
can report baselines for more than one algorithm.
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError


def pagerank_iteration_upper_bound(epsilon: float, damping: float = 0.85) -> int:
    """Langville & Meyer's bound on PageRank iterations to reach tolerance ``epsilon``."""
    if not 0.0 < epsilon < 1.0:
        raise ConfigurationError("epsilon must be in (0, 1)")
    if not 0.0 < damping < 1.0:
        raise ConfigurationError("damping must be in (0, 1)")
    return int(math.ceil(math.log10(epsilon) / math.log10(damping)))


def pagerank_dag_bound(diameter: int) -> int:
    """For a DAG, PageRank converges to a zero delta in ``diameter + 1`` iterations."""
    if diameter < 0:
        raise ConfigurationError("diameter must be non-negative")
    return diameter + 1


def connected_components_upper_bound(diameter: int) -> int:
    """Min-label propagation needs at most ``diameter + 1`` supersteps."""
    if diameter < 0:
        raise ConfigurationError("diameter must be non-negative")
    return diameter + 1


def bound_misprediction_factor(bound: int, actual: int) -> float:
    """How loose a bound is: ``bound / actual`` (>= 1 for a valid upper bound)."""
    if actual <= 0:
        raise ConfigurationError("actual iteration count must be positive")
    return bound / actual
