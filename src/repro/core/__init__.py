"""PREDIcT core: sample runs, transform functions, extrapolation, cost models.

This package implements the paper's methodology (Figure 1):

1. :mod:`repro.core.transform` -- the transform function applied to the
   algorithm configuration for the sample run (e.g. scale PageRank's
   convergence threshold by ``1/sampling_ratio``).
2. :mod:`repro.core.sample_run` -- execute the algorithm on a sample graph and
   profile per-iteration key input features.
3. :mod:`repro.core.extrapolation` -- scale the profiled features to the size
   of the complete graph using vertex/edge scaling factors.
4. :mod:`repro.core.regression`, :mod:`repro.core.feature_selection`,
   :mod:`repro.core.cost_model` -- the multivariate linear cost model with
   sequential forward feature selection, trained on sample runs and
   (optionally) on historical runs (:mod:`repro.core.history`).
5. :mod:`repro.core.predictor` -- the end-to-end
   :class:`repro.core.predictor.Predictor` tying everything together.
6. :mod:`repro.core.bounds` -- the analytical upper-bound baselines the paper
   compares against.
"""

from repro.core.cost_model import CostModel
from repro.core.extrapolation import Extrapolator
from repro.core.features import KEY_INPUT_FEATURES, FeatureTable
from repro.core.history import HistoryStore
from repro.core.predictor import Prediction, Predictor
from repro.core.sample_run import SampleRunner, SampleRunProfile
from repro.core.transform import TransformFunction, default_transform

__all__ = [
    "KEY_INPUT_FEATURES",
    "FeatureTable",
    "TransformFunction",
    "default_transform",
    "SampleRunner",
    "SampleRunProfile",
    "Extrapolator",
    "CostModel",
    "HistoryStore",
    "Predictor",
    "Prediction",
]
