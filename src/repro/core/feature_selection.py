"""Sequential forward feature selection for the cost model.

Following the paper (§3.4), the actual features entering the cost model are
chosen from the candidate pool (Table 1) by *sequential forward selection*
(Hastie et al.): start from the empty set, repeatedly add the feature whose
inclusion most improves the selection criterion, and stop when no feature
improves it by more than a small margin.

Two criteria are provided:

* ``"r2"`` -- maximise the coefficient of determination on the training data
  (the paper's "best prediction accuracy on the training data");
* ``"cv"`` -- minimise k-fold cross-validated mean absolute error, which is
  more robust when the training set is small and collinear (sample runs only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.core.features import FeatureTable
from repro.core.regression import cross_validate, fit_linear_model
from repro.exceptions import ModelingError


@dataclass
class SelectionResult:
    """Outcome of a forward-selection run."""

    selected: List[str]
    criterion: str
    scores: List[float] = field(default_factory=list)
    history: List[List[str]] = field(default_factory=list)


def forward_select(
    table: FeatureTable,
    candidates: Sequence[str],
    criterion: str = "r2",
    min_improvement: float = 0.01,
    max_features: int | None = None,
    num_folds: int = 5,
) -> SelectionResult:
    """Select features from ``candidates`` by sequential forward selection.

    Parameters
    ----------
    table:
        Training observations (per-iteration features + runtimes).
    candidates:
        Candidate feature names (must be present in every row).
    criterion:
        ``"r2"`` (maximise training R²) or ``"cv"`` (minimise CV error).
    min_improvement:
        Minimum relative improvement required to keep adding features.
    max_features:
        Optional cap on the number of selected features.
    """
    if criterion not in {"r2", "cv"}:
        raise ModelingError(f"unknown selection criterion {criterion!r}")
    if len(table) == 0:
        raise ModelingError("cannot select features from an empty table")

    available = [name for name in candidates if _has_variance(table, name)]
    if not available:
        raise ModelingError("no candidate feature has variance in the training data")
    budget = max_features or len(available)

    selected: List[str] = []
    scores: List[float] = []
    history: List[List[str]] = []
    current_score = None

    while available and len(selected) < budget:
        best_feature = None
        best_score = None
        for feature in available:
            trial = selected + [feature]
            score = _score(table, trial, criterion, num_folds)
            if best_score is None or _is_better(score, best_score, criterion):
                best_score = score
                best_feature = feature
        if best_feature is None:
            break
        if current_score is not None and not _improves(
            best_score, current_score, criterion, min_improvement
        ):
            break
        selected.append(best_feature)
        available.remove(best_feature)
        current_score = best_score
        scores.append(best_score)
        history.append(list(selected))

    if not selected:
        # Degenerate data: fall back to the single best-scoring candidate.
        selected = [available[0]]
        scores = [_score(table, selected, criterion, num_folds)]
        history = [list(selected)]

    return SelectionResult(selected=selected, criterion=criterion, scores=scores, history=history)


# ------------------------------------------------------------------ internals
def _has_variance(table: FeatureTable, feature: str) -> bool:
    try:
        column = table.matrix([feature])[:, 0]
    except ModelingError:
        return False
    return bool(np.std(column) > 0)


def _score(table: FeatureTable, features: List[str], criterion: str, num_folds: int) -> float:
    matrix = table.matrix(features)
    response = table.response()
    if criterion == "r2":
        model = fit_linear_model(matrix, response, features)
        return model.r_squared
    result = cross_validate(matrix, response, features, num_folds=num_folds)
    return result.mean_absolute_error


def _is_better(score: float, reference: float, criterion: str) -> bool:
    if criterion == "r2":
        return score > reference
    return score < reference


def _improves(score: float, reference: float, criterion: str, min_improvement: float) -> bool:
    if criterion == "r2":
        return score >= reference + min_improvement * max(abs(reference), 1e-9)
    return score <= reference * (1.0 - min_improvement)
