"""Key input features (Table 1 of the paper) and feature tables.

The features the cost model may select from are:

=========== ============================================ =============
Name        Description                                  Extrapolation
=========== ============================================ =============
ActVert     Number of active vertices                    vertices
TotVert     Number of total vertices                     vertices
LocMsg      Number of local messages                     edges
RemMsg      Number of remote messages                    edges
LocMsgSize  Size of local messages (bytes)               edges
RemMsgSize  Size of remote messages (bytes)              edges
AvgMsgSize  Average message size                         none
NumIter     Number of iterations                         none
=========== ============================================ =============

``NumIter`` is never extrapolated: the transform function is designed to
*preserve* the number of iterations between the sample run and the actual run,
and the cost model uses it only implicitly (it is invoked once per iteration).

:class:`FeatureTable` is a thin convenience wrapper around "one dict of
features per iteration" that converts to the dense matrices the regression
needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.exceptions import ModelingError

#: Feature names, in the order used throughout the library.
ACT_VERT = "ActVert"
TOT_VERT = "TotVert"
LOC_MSG = "LocMsg"
REM_MSG = "RemMsg"
LOC_MSG_SIZE = "LocMsgSize"
REM_MSG_SIZE = "RemMsgSize"
AVG_MSG_SIZE = "AvgMsgSize"
NUM_ITER = "NumIter"

#: The candidate pool handed to feature selection (per-iteration features).
KEY_INPUT_FEATURES: List[str] = [
    ACT_VERT,
    TOT_VERT,
    LOC_MSG,
    REM_MSG,
    LOC_MSG_SIZE,
    REM_MSG_SIZE,
    AVG_MSG_SIZE,
]

#: Features extrapolated with the vertex scaling factor eV = |V_G| / |V_S|.
VERTEX_SCALED_FEATURES = frozenset({ACT_VERT, TOT_VERT})

#: Features extrapolated with the edge scaling factor eE = |E_G| / |E_S|.
EDGE_SCALED_FEATURES = frozenset({LOC_MSG, REM_MSG, LOC_MSG_SIZE, REM_MSG_SIZE})

#: Features that are never extrapolated (ratios / run-level properties).
NOT_EXTRAPOLATED_FEATURES = frozenset({AVG_MSG_SIZE, NUM_ITER})


FeatureRow = Dict[str, float]


@dataclass
class FeatureTable:
    """Per-iteration feature rows plus the response variable (runtime)."""

    rows: List[FeatureRow] = field(default_factory=list)
    runtimes: List[float] = field(default_factory=list)

    def append(self, row: FeatureRow, runtime: float) -> None:
        """Add one (features, runtime) observation."""
        self.rows.append(dict(row))
        self.runtimes.append(float(runtime))

    def extend(self, other: "FeatureTable") -> None:
        """Append all observations of ``other``."""
        self.rows.extend(dict(row) for row in other.rows)
        self.runtimes.extend(other.runtimes)

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def feature_names(self) -> List[str]:
        """Names present in every row (intersection, stable order)."""
        if not self.rows:
            return []
        common = set(self.rows[0])
        for row in self.rows[1:]:
            common &= set(row)
        return [name for name in KEY_INPUT_FEATURES if name in common] + sorted(
            name for name in common if name not in KEY_INPUT_FEATURES
        )

    def matrix(self, feature_names: Sequence[str]) -> np.ndarray:
        """Dense design matrix with one column per requested feature."""
        if not self.rows:
            raise ModelingError("feature table is empty")
        data = np.zeros((len(self.rows), len(feature_names)), dtype=float)
        for i, row in enumerate(self.rows):
            for j, name in enumerate(feature_names):
                if name not in row:
                    raise ModelingError(f"feature {name!r} missing from row {i}")
                data[i, j] = row[name]
        return data

    def response(self) -> np.ndarray:
        """The response vector (per-iteration runtimes)."""
        return np.asarray(self.runtimes, dtype=float)

    @classmethod
    def from_run(cls, run_result, level: str = "critical") -> "FeatureTable":
        """Build a table from a :class:`repro.bsp.result.RunResult`."""
        table = cls()
        rows = run_result.iteration_feature_rows(level=level)
        for row, runtime in zip(rows, run_result.iteration_runtimes()):
            table.append(row, runtime)
        return table

    @classmethod
    def merge(cls, tables: Iterable["FeatureTable"]) -> "FeatureTable":
        """Concatenate several tables into one."""
        merged = cls()
        for table in tables:
            merged.extend(table)
        return merged
