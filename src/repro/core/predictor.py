"""The end-to-end PREDIcT predictor.

:class:`Predictor` ties the whole methodology together (Figure 1 of the
paper):

1. run the algorithm on samples of the input graph at the *training ratios*
   (0.05, 0.1, 0.15 and 0.2 in the paper) plus the prediction ratio, applying
   the transform function to the configuration of every sample run;
2. build the training table from the per-iteration (critical-path worker
   features, iteration runtime) observations of those sample runs, adding the
   observations of historical runs on other datasets when a
   :class:`~repro.core.history.HistoryStore` is supplied;
3. fit the cost model (multivariate linear regression + forward selection);
4. extrapolate the per-iteration features of the prediction-ratio sample run
   to full-graph scale with ``eV`` / ``eE``;
5. evaluate the cost model on every extrapolated iteration and sum the
   predicted iteration runtimes.

The returned :class:`Prediction` carries the predicted number of iterations
(preserved from the sample run, not extrapolated), the per-iteration and total
runtime estimates, the extrapolated features (both critical-worker and
graph-level) and the fitted cost model's description, so that callers can
audit every step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bsp.engine import BSPEngine, EngineConfig
from repro.bsp.resilience import config_fingerprint
from repro.core.cost_model import CostModel
from repro.core.extrapolation import Extrapolator
from repro.core.features import FeatureRow, FeatureTable
from repro.core.history import HistoryStore
from repro.core.sample_run import DictProfileCache, SampleRunner, SampleRunProfile
from repro.core.transform import TransformFunction
from repro.exceptions import PredictionError
from repro.graph.digraph import DiGraph
from repro.obs.tracer import activate, current_tracer
from repro.sampling.base import VertexSampler
from repro.utils.canonical import config_token, graph_token

#: The paper's training sampling ratios (Figures 7 and 8).
DEFAULT_TRAINING_RATIOS = (0.05, 0.1, 0.15, 0.2)


@dataclass
class Prediction:
    """The outcome of one PREDIcT prediction."""

    algorithm: str
    dataset: str
    sampling_ratio: float
    predicted_iterations: int
    predicted_iteration_runtimes: List[float]
    predicted_superstep_runtime: float
    extrapolated_features: List[FeatureRow]
    extrapolated_graph_features: List[FeatureRow]
    cost_model: CostModel
    sample_profile: SampleRunProfile
    training_observations: int
    used_history: bool
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def vertex_scaling_factor(self) -> float:
        """The extrapolation factor on vertices used for this prediction."""
        return self.sample_profile.factors.vertex_factor

    @property
    def edge_scaling_factor(self) -> float:
        """The extrapolation factor on edges used for this prediction."""
        return self.sample_profile.factors.edge_factor

    def predicted_total_remote_bytes(self) -> float:
        """Extrapolated total remote message bytes (graph level)."""
        return float(
            sum(row.get("RemMsgSize", 0.0) for row in self.extrapolated_graph_features)
        )

    def summary(self) -> Dict[str, object]:
        """Compact summary used by the examples."""
        return {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "sampling_ratio": self.sampling_ratio,
            "predicted_iterations": self.predicted_iterations,
            "predicted_superstep_runtime_s": round(self.predicted_superstep_runtime, 2),
            "cost_model_r2": round(self.cost_model.r_squared, 4),
            "selected_features": self.cost_model.selected_features,
            "used_history": self.used_history,
        }


class Predictor:
    """End-to-end runtime predictor for iterative algorithms."""

    def __init__(
        self,
        engine: BSPEngine,
        algorithm,
        sampler: Optional[VertexSampler] = None,
        transform: Optional[TransformFunction] = None,
        history: Optional[HistoryStore] = None,
        training_ratios: Sequence[float] = DEFAULT_TRAINING_RATIOS,
        cost_model_factory=None,
        engine_config: Optional[EngineConfig] = None,
        feature_level: str = "critical",
        cache_sample_runs: bool = True,
        profile_cache=None,
        profile_key=None,
    ) -> None:
        self.engine = engine
        self.algorithm = algorithm
        self.history = history
        self.training_ratios = tuple(training_ratios)
        self.cost_model_factory = cost_model_factory or CostModel
        self.feature_level = feature_level
        self.cache_sample_runs = cache_sample_runs
        # Sample runs are deterministic given (graph, config, ratio), so they
        # can be reused when the same predictor is asked for several sampling
        # ratios on the same input (the Figure 7/8 sweeps).  The cache keys
        # are canonical content hashes (graph digest + config token + the
        # checkpoint-style engine fingerprint), never object ids -- two
        # equal-valued configs share their sample runs.  An external cache +
        # key function (the prediction service's canonical-keyed store) can
        # be plugged in to share profiles across predictors.
        if profile_cache is None and cache_sample_runs:
            profile_cache = DictProfileCache()
        if profile_cache is not None and profile_key is None:
            profile_key = self._local_profile_key
        self.runner = SampleRunner(
            engine,
            algorithm,
            sampler=sampler,
            transform=transform,
            engine_config=engine_config,
            profile_cache=profile_cache if cache_sample_runs else None,
            profile_key=profile_key if cache_sample_runs else None,
        )

    # ------------------------------------------------------------------ API
    def predict(
        self,
        graph: DiGraph,
        config=None,
        sampling_ratio: float = 0.1,
        dataset_name: Optional[str] = None,
    ) -> Prediction:
        """Predict the runtime of ``algorithm`` on ``graph``.

        ``dataset_name`` identifies the dataset in the history store so that
        historical runs of the *same* dataset are excluded from training.
        """
        config = config if config is not None else self.algorithm.default_config()
        dataset = dataset_name or graph.name

        # The engine tracer (when configured) becomes ambient for the whole
        # prediction, so the regression spans land in the same trace as the
        # sample runs' engine spans.
        tracer = self.runner.engine_config.trace
        tracer = tracer if tracer is not None else current_tracer()
        with activate(tracer), tracer.span("predict") as predict_span:
            if tracer.enabled:
                predict_span.set("algorithm", self.algorithm.name)
                predict_span.set("dataset", dataset)
                predict_span.set("sampling_ratio", sampling_ratio)

            profiles = self._run_training_samples(graph, config, sampling_ratio)
            prediction_profile = profiles[sampling_ratio]

            table, used_history = self._build_training_table(profiles, dataset)
            cost_model = self.cost_model_factory()
            cost_model.train(table)

            extrapolator = Extrapolator(prediction_profile.factors)
            critical_rows = extrapolator.extrapolate_rows(
                prediction_profile.feature_rows(level=self.feature_level)
            )
            graph_rows = extrapolator.extrapolate_rows(
                prediction_profile.feature_rows(level="graph")
            )
            iteration_runtimes = cost_model.predict_run(critical_rows)
            if tracer.enabled:
                predict_span.set("training_observations", len(table))
                predict_span.set(
                    "predicted_superstep_runtime_s", float(sum(iteration_runtimes))
                )

        return Prediction(
            algorithm=self.algorithm.name,
            dataset=dataset,
            sampling_ratio=sampling_ratio,
            predicted_iterations=prediction_profile.num_iterations,
            predicted_iteration_runtimes=iteration_runtimes,
            predicted_superstep_runtime=float(sum(iteration_runtimes)),
            extrapolated_features=critical_rows,
            extrapolated_graph_features=graph_rows,
            cost_model=cost_model,
            sample_profile=prediction_profile,
            training_observations=len(table),
            used_history=used_history,
            metadata={
                "training_ratios": list(self.training_ratios),
                "transform": self.runner.transform.name,
                "sampler": self.runner.sampler.name,
            },
        )

    def predict_iterations(
        self, graph: DiGraph, config=None, sampling_ratio: float = 0.1
    ) -> int:
        """Cheap variant: only run the prediction-ratio sample run and return
        its iteration count (used by the iteration-error benchmarks)."""
        config = config if config is not None else self.algorithm.default_config()
        profile = self.runner.run(graph, config, sampling_ratio)
        return profile.num_iterations

    # -------------------------------------------------------------- internals
    def _local_profile_key(self, graph: DiGraph, config, ratio: float) -> tuple:
        """Canonical in-process cache key of one sample run.

        Combines the graph's content digest, the checkpoint-style engine
        fingerprint (PR 9 discipline: trajectory-shaping knobs only, never
        execution mechanics), the config's content token and the sampling
        pipeline identity.  ``graph_token`` falls back to ``id()`` for
        mutable graphs, so the key is process-local -- exactly the scope of
        this memoisation.
        """
        engine_config = self.runner.engine_config
        return (
            graph_token(graph),
            config_fingerprint(
                engine_config,
                self.algorithm.name,
                getattr(graph, "name", ""),
                engine_config.num_workers or self.engine.cluster.num_workers,
            ),
            config_token(config),
            self.runner.sampler.name,
            repr(self.runner.sampler.seed),
            self.runner.transform.name,
            int(engine_config.max_supersteps),
            float(ratio),
        )

    def _run_training_samples(
        self, graph: DiGraph, config, sampling_ratio: float
    ) -> Dict[float, SampleRunProfile]:
        ratios = sorted(set(self.training_ratios) | {sampling_ratio})
        # The runner memoises (graph, config, ratio) repeats through its
        # profile cache, so a sweep over several prediction ratios re-runs
        # only the ratios it has not seen.
        return {ratio: self.runner.run(graph, config, ratio) for ratio in ratios}

    def _build_training_table(
        self, profiles: Dict[float, SampleRunProfile], dataset: str
    ):
        table = FeatureTable.merge(
            profile.training_table(level=self.feature_level) for profile in profiles.values()
        )
        used_history = False
        if self.history is not None:
            history_table = self.history.training_table(
                self.algorithm.name, exclude_dataset=dataset
            )
            if len(history_table):
                table.extend(history_table)
                used_history = True
        if len(table) < 2:
            raise PredictionError(
                "not enough training observations; the sample runs converged "
                "in fewer than two iterations"
            )
        return table, used_history
