"""Transform functions: adapting the algorithm configuration to the sample run.

A transform function ``T = (Conf_S => Conf_G, Conv_S => Conv_G)`` maps the
configuration and convergence parameters of the *actual* run into the values
to use for the *sample* run, so that the sample run preserves the number of
iterations (and, proportionally, the other key input features).

The paper's default rules (§3.2.2):

* if the convergence threshold is tuned to the size of the input dataset
  (PageRank's ``tau = epsilon / N`` is an absolute aggregate), scale it by the
  inverse sampling ratio: ``tau_S = tau_G * 1 / sr``;
* if the convergence threshold is a ratio (semi-clustering's update ratio,
  top-k's active-vertex ratio), keep it unchanged: ``tau_S = tau_G``;
* configuration parameters (damping factor, ``Vmax``, ``Cmax``, ``Smax``,
  ``fB``, ``k``) are kept identical (identity over the configuration space).

Users with domain knowledge can plug in their own transform by constructing a
:class:`TransformFunction` with a custom callable.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Optional

from repro.algorithms.base import IterativeAlgorithm
from repro.exceptions import ConfigurationError

#: Signature of a transform: (algorithm, actual_config, sampling_ratio) -> sample_config.
TransformCallable = Callable[[IterativeAlgorithm, object, float], object]


@dataclass(frozen=True)
class TransformFunction:
    """A named transform applied to the configuration before the sample run."""

    name: str
    apply: TransformCallable
    description: str = ""

    def __call__(self, algorithm: IterativeAlgorithm, config, sampling_ratio: float):
        """Return the configuration to use for the sample run."""
        if not 0.0 < sampling_ratio <= 1.0:
            raise ConfigurationError(
                f"sampling_ratio must be in (0, 1], got {sampling_ratio}"
            )
        return self.apply(algorithm, config, sampling_ratio)


def _identity(algorithm: IterativeAlgorithm, config, sampling_ratio: float):
    return config


def _scale_threshold(algorithm: IterativeAlgorithm, config, sampling_ratio: float):
    threshold = algorithm.convergence_threshold(config)
    if threshold is None:
        return config
    return algorithm.with_convergence_threshold(config, threshold / sampling_ratio)


#: Identity transform: same configuration and convergence parameters.
IDENTITY_TRANSFORM = TransformFunction(
    name="identity",
    apply=_identity,
    description="Conf_S = Conf_G, tau_S = tau_G",
)

#: Threshold-scaling transform: tau_S = tau_G / sampling_ratio.
THRESHOLD_SCALING_TRANSFORM = TransformFunction(
    name="threshold-scaling",
    apply=_scale_threshold,
    description="Conf_S = Conf_G, tau_S = tau_G * (1 / sampling_ratio)",
)


def default_transform(algorithm: IterativeAlgorithm) -> TransformFunction:
    """Return the paper's default transform for ``algorithm``.

    Algorithms whose convergence threshold is tuned to the input size get the
    threshold-scaling transform; all others get the identity transform.
    """
    if algorithm.convergence_tuned_to_input_size:
        return THRESHOLD_SCALING_TRANSFORM
    return IDENTITY_TRANSFORM


def custom_transform(
    name: str,
    threshold_scaler: Optional[Callable[[float, float], float]] = None,
    config_overrides: Optional[dict] = None,
    description: str = "",
) -> TransformFunction:
    """Build a transform from simple ingredients.

    Parameters
    ----------
    threshold_scaler:
        ``f(tau_G, sampling_ratio) -> tau_S``; None keeps the threshold.
    config_overrides:
        Field values to replace on the sample-run configuration (for
        algorithm-specific domain knowledge, e.g. reducing ``Vmax``).
    """

    def apply(algorithm: IterativeAlgorithm, config, sampling_ratio: float):
        new_config = config
        if threshold_scaler is not None and algorithm.convergence_attribute is not None:
            threshold = algorithm.convergence_threshold(config)
            new_config = algorithm.with_convergence_threshold(
                new_config, threshold_scaler(threshold, sampling_ratio)
            )
        if config_overrides:
            if not dataclasses.is_dataclass(new_config):
                raise ConfigurationError("config_overrides requires a dataclass config")
            new_config = dataclasses.replace(new_config, **config_overrides)
        return new_config

    return TransformFunction(name=name, apply=apply, description=description)
