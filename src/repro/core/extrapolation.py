"""Extrapolating sample-run features to the scale of the complete graph.

The extrapolator (§3.4) scales the per-iteration features profiled during the
sample run with two factors:

* ``eV = |V_G| / |V_S|`` for features that depend primarily on the number of
  vertices (active and total vertex counts);
* ``eE = |E_G| / |E_S|`` for features that depend on the number of edges
  (message counts and byte counts -- a vertex sends one message per outbound
  edge for the algorithms considered);
* features that are ratios (average message size) and the number of
  iterations are not extrapolated at all.

Extrapolation is applied *per iteration*: iteration ``i`` of the sample run
predicts iteration ``i`` of the actual run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.features import (
    EDGE_SCALED_FEATURES,
    FeatureRow,
    NOT_EXTRAPOLATED_FEATURES,
    VERTEX_SCALED_FEATURES,
)
from repro.exceptions import ModelingError
from repro.graph.digraph import DiGraph
from repro.sampling.base import SampleResult


@dataclass(frozen=True)
class ScalingFactors:
    """The vertex and edge scaling factors of one sample."""

    vertex_factor: float
    edge_factor: float

    @classmethod
    def from_sample(cls, original: DiGraph, sample: SampleResult) -> "ScalingFactors":
        """Compute ``eV`` and ``eE`` from the original graph and its sample."""
        return cls(
            vertex_factor=sample.vertex_scaling_factor(original),
            edge_factor=sample.edge_scaling_factor(original),
        )

    @classmethod
    def from_counts(
        cls,
        original_vertices: int,
        original_edges: int,
        sample_vertices: int,
        sample_edges: int,
    ) -> "ScalingFactors":
        """Compute the factors from raw counts."""
        if sample_vertices <= 0 or sample_edges <= 0:
            raise ModelingError("sample must contain at least one vertex and one edge")
        return cls(
            vertex_factor=original_vertices / sample_vertices,
            edge_factor=original_edges / sample_edges,
        )


class Extrapolator:
    """Scales per-iteration feature rows from sample size to full size."""

    def __init__(self, factors: ScalingFactors) -> None:
        self.factors = factors

    def extrapolate_row(self, row: FeatureRow) -> FeatureRow:
        """Extrapolate one iteration's feature dictionary."""
        scaled: Dict[str, float] = {}
        for name, value in row.items():
            scaled[name] = value * self._factor_for(name)
        return scaled

    def extrapolate_rows(self, rows: Sequence[FeatureRow]) -> List[FeatureRow]:
        """Extrapolate every iteration of a sample run."""
        return [self.extrapolate_row(row) for row in rows]

    def _factor_for(self, feature: str) -> float:
        if feature in VERTEX_SCALED_FEATURES:
            return self.factors.vertex_factor
        if feature in EDGE_SCALED_FEATURES:
            return self.factors.edge_factor
        if feature in NOT_EXTRAPOLATED_FEATURES:
            return 1.0
        # Unknown features are treated as edge-proportional by default, which
        # is the conservative choice for message-derived counters users add.
        return self.factors.edge_factor
