"""The customizable cost model: features -> per-iteration runtime.

The cost model is a multivariate linear regression over the key input
features selected by sequential forward selection.  It is trained at the
granularity of iterations: every observation is one iteration of a profiled
run (a sample run, or a historical actual run), described by the features of
the worker on the critical path and labelled with the simulated runtime of
that iteration.

Once fitted, the model predicts the runtime of one iteration from an
(extrapolated) feature row; the end-to-end prediction sums the model over the
iterations of the sample run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.feature_selection import SelectionResult, forward_select
from repro.core.features import KEY_INPUT_FEATURES, FeatureRow, FeatureTable
from repro.core.regression import LinearModel, fit_linear_model
from repro.exceptions import ModelingError


@dataclass
class CostModel:
    """A trainable per-iteration runtime model.

    Parameters
    ----------
    candidate_features:
        The feature pool handed to forward selection (defaults to Table 1).
    selection_criterion:
        ``"r2"`` or ``"cv"`` (see :mod:`repro.core.feature_selection`).
    use_feature_selection:
        When False all candidate features are used (ablation baseline).
    non_negative:
        When True the fitted coefficients are constrained to be >= 0.
    """

    candidate_features: Sequence[str] = field(default_factory=lambda: list(KEY_INPUT_FEATURES))
    selection_criterion: str = "r2"
    use_feature_selection: bool = True
    non_negative: bool = False
    min_improvement: float = 0.01

    _model: Optional[LinearModel] = field(init=False, default=None)
    _selection: Optional[SelectionResult] = field(init=False, default=None)

    # ---------------------------------------------------------------- train
    def train(self, table: FeatureTable) -> "CostModel":
        """Fit the model on a feature table; returns self for chaining."""
        if len(table) == 0:
            raise ModelingError("cannot train a cost model without observations")
        if len(table) < 2:
            raise ModelingError("training a cost model requires at least two iterations")

        if self.use_feature_selection:
            self._selection = forward_select(
                table,
                self.candidate_features,
                criterion=self.selection_criterion,
                min_improvement=self.min_improvement,
            )
            selected = self._selection.selected
        else:
            selected = [name for name in self.candidate_features if name in table.feature_names]
            self._selection = SelectionResult(selected=list(selected), criterion="none")

        matrix = table.matrix(selected)
        self._model = fit_linear_model(
            matrix, table.response(), selected, non_negative=self.non_negative
        )
        return self

    # -------------------------------------------------------------- predict
    def predict_iteration(self, features: FeatureRow) -> float:
        """Predict the runtime of one iteration (clamped at zero)."""
        model = self._require_model()
        return max(0.0, model.predict_row(features))

    def predict_run(self, feature_rows: Sequence[FeatureRow]) -> List[float]:
        """Predict the runtime of every iteration of a run."""
        return [self.predict_iteration(row) for row in feature_rows]

    def predict_total(self, feature_rows: Sequence[FeatureRow]) -> float:
        """Predict the total superstep-phase runtime of a run."""
        return float(sum(self.predict_run(feature_rows)))

    # ------------------------------------------------------------ inspection
    @property
    def is_trained(self) -> bool:
        """True once :meth:`train` has completed."""
        return self._model is not None

    @property
    def r_squared(self) -> float:
        """Coefficient of determination of the fit on the training data."""
        return self._require_model().r_squared

    @property
    def selected_features(self) -> List[str]:
        """Features chosen by forward selection."""
        self._require_model()
        return list(self._selection.selected) if self._selection else []

    def coefficients(self) -> Dict[str, float]:
        """Per-feature cost values plus the residual (intercept)."""
        model = self._require_model()
        values = model.coefficient_dict()
        values["residual"] = model.intercept
        return values

    def describe(self) -> Dict[str, object]:
        """Summary of the fitted model (used by reports and examples)."""
        model = self._require_model()
        return {
            "selected_features": self.selected_features,
            "coefficients": model.coefficient_dict(),
            "residual": model.intercept,
            "r_squared": round(model.r_squared, 4),
            "observations": model.num_observations,
        }

    # -------------------------------------------------------------- internal
    def _require_model(self) -> LinearModel:
        if self._model is None:
            raise ModelingError("cost model has not been trained yet")
        return self._model
