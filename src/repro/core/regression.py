"""Multivariate linear regression implemented from scratch on numpy.

The cost model has the fixed functional form the paper chooses:

``f(X_1, ..., X_k) = c_1 X_1 + c_2 X_2 + ... + c_k X_k + r``

where the coefficients ``c_i`` can be interpreted as the per-unit cost of each
key input feature and ``r`` is the residual (intercept).  A fixed functional
form is used deliberately: the model must extrapolate to feature ranges far
outside the training data (train on sample runs, predict the full run), which
rules out non-parametric models.

The fit minimises least squares via :func:`numpy.linalg.lstsq`.  Optionally
the coefficients can be constrained to be non-negative (a per-message cost
cannot be negative) using a simple projected iterative refinement; the paper
does not describe its solver, so the unconstrained fit is the default and the
non-negative variant is exposed for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.exceptions import ModelingError
from repro.obs.tracer import current_tracer
from repro.utils.stats import coefficient_of_determination


@dataclass
class LinearModel:
    """A fitted multivariate linear model ``y = X @ coefficients + intercept``."""

    feature_names: List[str]
    coefficients: np.ndarray
    intercept: float
    r_squared: float
    num_observations: int

    def predict_row(self, features: Dict[str, float]) -> float:
        """Predict the response for a single feature dictionary."""
        total = self.intercept
        for name, coefficient in zip(self.feature_names, self.coefficients):
            if name not in features:
                raise ModelingError(f"feature {name!r} missing from prediction input")
            total += coefficient * features[name]
        return float(total)

    def predict_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Predict responses for a dense design matrix."""
        if matrix.shape[1] != len(self.feature_names):
            raise ModelingError(
                f"expected {len(self.feature_names)} columns, got {matrix.shape[1]}"
            )
        return matrix @ self.coefficients + self.intercept

    def coefficient_dict(self) -> Dict[str, float]:
        """Per-feature cost values (the interpretation the paper gives them)."""
        return {name: float(c) for name, c in zip(self.feature_names, self.coefficients)}


def fit_linear_model(
    matrix: np.ndarray,
    response: Sequence[float],
    feature_names: Sequence[str],
    non_negative: bool = False,
) -> LinearModel:
    """Fit a linear model with intercept by (optionally constrained) least squares."""
    y = np.asarray(response, dtype=float)
    if matrix.ndim != 2:
        raise ModelingError("design matrix must be two-dimensional")
    if matrix.shape[0] != y.shape[0]:
        raise ModelingError("design matrix and response length mismatch")
    if matrix.shape[0] == 0:
        raise ModelingError("cannot fit a model without observations")
    if matrix.shape[1] != len(feature_names):
        raise ModelingError("feature_names length must match matrix columns")

    tracer = current_tracer()
    with tracer.span("regression.fit") as fit_span:
        design = np.hstack([matrix, np.ones((matrix.shape[0], 1))])
        solution, _, _, _ = np.linalg.lstsq(design, y, rcond=None)
        coefficients = solution[:-1]
        intercept = float(solution[-1])

        if non_negative and coefficients.size and np.any(coefficients < 0):
            coefficients, intercept = _non_negative_refit(matrix, y, coefficients)

        predictions = matrix @ coefficients + intercept
        r_squared = coefficient_of_determination(y, predictions)
        if tracer.enabled:
            fit_span.merge({
                "features": list(feature_names),
                "observations": int(matrix.shape[0]),
                "r_squared": r_squared,
                "non_negative": non_negative,
            })
    return LinearModel(
        feature_names=list(feature_names),
        coefficients=coefficients,
        intercept=intercept,
        r_squared=r_squared,
        num_observations=int(matrix.shape[0]),
    )


def _non_negative_refit(matrix: np.ndarray, y: np.ndarray, coefficients: np.ndarray):
    """Clip-and-refit heuristic for non-negative coefficients.

    Features whose unconstrained coefficient is negative are dropped one by
    one (most negative first) and the model is refitted on the remainder until
    all surviving coefficients are non-negative.
    """
    active = list(range(matrix.shape[1]))
    coefs = coefficients.copy()
    intercept = 0.0
    for _ in range(matrix.shape[1]):
        sub = matrix[:, active]
        design = np.hstack([sub, np.ones((sub.shape[0], 1))])
        solution, _, _, _ = np.linalg.lstsq(design, y, rcond=None)
        sub_coefs, intercept = solution[:-1], float(solution[-1])
        if not np.any(sub_coefs < 0) or len(active) == 1:
            coefs = np.zeros(matrix.shape[1])
            for idx, col in enumerate(active):
                coefs[col] = max(0.0, sub_coefs[idx])
            return coefs, intercept
        worst = int(np.argmin(sub_coefs))
        del active[worst]
    return np.maximum(coefs, 0.0), intercept


@dataclass
class CrossValidationResult:
    """Mean absolute error measured by k-fold cross validation."""

    mean_absolute_error: float
    fold_errors: List[float] = field(default_factory=list)


def cross_validate(
    matrix: np.ndarray,
    response: Sequence[float],
    feature_names: Sequence[str],
    num_folds: int = 5,
) -> CrossValidationResult:
    """k-fold cross-validation of the linear model (used by feature selection)."""
    y = np.asarray(response, dtype=float)
    n = matrix.shape[0]
    if n < 2:
        raise ModelingError("cross validation needs at least two observations")
    tracer = current_tracer()
    with tracer.span("regression.cross_validate") as cv_span:
        folds = min(num_folds, n)
        indices = np.arange(n)
        fold_errors: List[float] = []
        for fold in range(folds):
            test_mask = indices % folds == fold
            train_mask = ~test_mask
            if not np.any(train_mask) or not np.any(test_mask):
                continue
            model = fit_linear_model(matrix[train_mask], y[train_mask], feature_names)
            predictions = model.predict_matrix(matrix[test_mask])
            fold_errors.append(float(np.mean(np.abs(predictions - y[test_mask]))))
        if not fold_errors:
            raise ModelingError("cross validation produced no folds")
        if tracer.enabled:
            cv_span.merge({
                "features": list(feature_names),
                "observations": int(n),
                "folds": len(fold_errors),
            })
    return CrossValidationResult(
        mean_absolute_error=float(np.mean(fold_errors)),
        fold_errors=fold_errors,
    )
