"""Prediction-vs-actual evaluation records.

The paper reports *signed relative errors* for the number of iterations, for
key input features (in particular remote message bytes) and for the end-to-end
runtime.  :class:`PredictionEvaluation` packages those comparisons so the
benchmarks and the experiment harness all report errors the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.bsp.result import RunResult
from repro.utils.stats import signed_relative_error


@dataclass(frozen=True)
class PredictionEvaluation:
    """Signed relative errors of one prediction against the actual run."""

    algorithm: str
    dataset: str
    sampling_ratio: float
    predicted_iterations: int
    actual_iterations: int
    predicted_runtime: float
    actual_runtime: float
    predicted_remote_bytes: Optional[float] = None
    actual_remote_bytes: Optional[float] = None

    @property
    def iterations_error(self) -> float:
        """Signed relative error of the iteration count."""
        return signed_relative_error(self.predicted_iterations, self.actual_iterations)

    @property
    def runtime_error(self) -> float:
        """Signed relative error of the superstep-phase runtime."""
        return signed_relative_error(self.predicted_runtime, self.actual_runtime)

    @property
    def remote_bytes_error(self) -> Optional[float]:
        """Signed relative error of the total remote message bytes (if tracked)."""
        if self.predicted_remote_bytes is None or self.actual_remote_bytes is None:
            return None
        return signed_relative_error(self.predicted_remote_bytes, self.actual_remote_bytes)

    def as_dict(self) -> Dict[str, object]:
        """Flatten the evaluation for tabular reporting."""
        row = {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "ratio": self.sampling_ratio,
            "iters_pred": self.predicted_iterations,
            "iters_actual": self.actual_iterations,
            "iters_err": round(self.iterations_error, 3),
            "runtime_pred_s": round(self.predicted_runtime, 2),
            "runtime_actual_s": round(self.actual_runtime, 2),
            "runtime_err": round(self.runtime_error, 3),
        }
        if self.remote_bytes_error is not None:
            row["rem_bytes_err"] = round(self.remote_bytes_error, 3)
        return row


def evaluate_prediction(prediction, actual: RunResult, dataset: str) -> PredictionEvaluation:
    """Build a :class:`PredictionEvaluation` from a prediction and the actual run."""
    predicted_remote = sum(row.get("RemMsgSize", 0.0) for row in prediction.extrapolated_graph_features)
    return PredictionEvaluation(
        algorithm=prediction.algorithm,
        dataset=dataset,
        sampling_ratio=prediction.sampling_ratio,
        predicted_iterations=prediction.predicted_iterations,
        actual_iterations=actual.num_iterations,
        predicted_runtime=prediction.predicted_superstep_runtime,
        actual_runtime=actual.superstep_runtime,
        predicted_remote_bytes=predicted_remote,
        actual_remote_bytes=float(actual.total_remote_message_bytes()),
    )
