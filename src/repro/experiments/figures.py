"""One entry point per table / figure of the paper's evaluation (§5).

Every function takes an :class:`~repro.experiments.harness.ExperimentContext`
plus the sweep parameters (datasets, sampling ratios, tolerance levels) and
returns a structured result whose ``render()`` produces the same rows/series
the paper reports.  The benchmarks under ``benchmarks/`` are thin wrappers
that call these functions and print the result.

Absolute runtimes come from the simulated cluster, so they differ from the
paper's testbed; the quantities compared are the *relative errors*, the R²
values and the qualitative orderings, which is what EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.algorithms.connected_components import ConnectedComponents, ConnectedComponentsConfig
from repro.algorithms.neighborhood import NeighborhoodConfig, NeighborhoodEstimation
from repro.algorithms.pagerank import PageRank, PageRankConfig
from repro.algorithms.semi_clustering import SemiClustering, SemiClusteringConfig
from repro.algorithms.topk_ranking import TopKRanking
from repro.core.bounds import bound_misprediction_factor, pagerank_iteration_upper_bound
from repro.core.cost_model import CostModel
from repro.core.transform import IDENTITY_TRANSFORM, THRESHOLD_SCALING_TRANSFORM
from repro.experiments.harness import (
    ExperimentContext,
    PAPER_SAMPLING_RATIOS,
    build_history,
    iterations_for_threshold,
)
from repro.experiments.reporting import render_series, render_table
from repro.graph.datasets import dataset_spec
from repro.graph.properties import analyze
from repro.utils.stats import signed_relative_error

#: Dataset name -> short prefix used in the paper's figures (LJ, Wiki, TW, UK).
DATASET_PREFIXES = {
    "livejournal": "LJ",
    "wikipedia": "Wiki",
    "twitter": "TW",
    "uk-2002": "UK",
}

#: The datasets the paper can run each algorithm on (Twitter OOMs for the
#: message-heavy algorithms, so those figures exclude it, as in the paper).
ALL_DATASETS = ("livejournal", "wikipedia", "uk-2002", "twitter")
NO_TWITTER_DATASETS = ("livejournal", "wikipedia", "uk-2002")


# --------------------------------------------------------------------- results
@dataclass
class ErrorSweep:
    """A family of error-vs-sampling-ratio series (one per dataset/technique)."""

    title: str
    x_label: str
    sweep: Dict[str, List[Tuple[float, float]]]
    extras: Dict[str, object] = field(default_factory=dict)

    def series(self) -> Tuple[List[float], Dict[str, List[float]]]:
        """Convert to (x values, {name: y values})."""
        ratios = sorted({ratio for pts in self.sweep.values() for ratio, _ in pts})
        series = {}
        for name, pts in self.sweep.items():
            lookup = dict(pts)
            series[name] = [round(lookup.get(r, float("nan")), 4) for r in ratios]
        return ratios, series

    def max_abs_error(self, at_ratio: Optional[float] = None) -> float:
        """Largest absolute error, optionally restricted to one sampling ratio."""
        errors = [
            abs(err)
            for pts in self.sweep.values()
            for ratio, err in pts
            if at_ratio is None or abs(ratio - at_ratio) < 1e-9
        ]
        return max(errors) if errors else float("nan")

    def render(self) -> str:
        """Plain-text rendering in the paper's series layout."""
        ratios, series = self.series()
        text = render_series(self.x_label, ratios, series, title=self.title)
        if self.extras:
            extra_lines = [f"{key}: {value}" for key, value in self.extras.items()]
            text = text + "\n" + "\n".join(extra_lines)
        return text


@dataclass
class TableResult:
    """A plain table (Table 2 / Table 3 style)."""

    title: str
    headers: List[str]
    rows: List[List[object]]

    def render(self) -> str:
        """Plain-text rendering."""
        return render_table(self.headers, self.rows, title=self.title)


# ------------------------------------------------------------------- Table 2
def table2_datasets(ctx: ExperimentContext, datasets: Sequence[str] = ALL_DATASETS) -> TableResult:
    """Table 2: characteristics of the (stand-in) datasets."""
    headers = [
        "dataset", "prefix", "paper_nodes", "paper_edges",
        "standin_nodes", "standin_edges", "avg_out_degree",
        "effective_diameter", "power_law_generator", "measured_scale_free",
    ]
    rows: List[List[object]] = []
    for name in datasets:
        spec = dataset_spec(name)
        graph = ctx.load(name)
        props = analyze(graph, seed=ctx.seed)
        rows.append([
            spec.name,
            spec.prefix,
            spec.paper_vertices,
            spec.paper_edges,
            props.num_vertices,
            props.num_edges,
            round(props.average_out_degree, 2),
            round(props.effective_diameter, 2),
            spec.scale_free,
            props.scale_free,
        ])
    return TableResult(title="Table 2: graph datasets (paper vs stand-in)", headers=headers, rows=rows)


# ------------------------------------------------------------------- Figure 4
def fig4_pagerank_iterations(
    ctx: ExperimentContext,
    datasets: Sequence[str] = ALL_DATASETS,
    ratios: Sequence[float] = PAPER_SAMPLING_RATIOS,
    epsilons: Sequence[float] = (0.01, 0.001),
    sampler_name: str = "BRJ",
) -> Dict[float, ErrorSweep]:
    """Figure 4: relative error of predicted PageRank iterations.

    Returns one :class:`ErrorSweep` per tolerance level ``epsilon``; each sweep
    has one series per dataset.  A single actual run and a single sample run
    per ratio (executed at the tightest epsilon) provide the iteration counts
    for every tolerance level via the convergence history.
    """
    tightest = min(epsilons)
    results: Dict[float, ErrorSweep] = {
        eps: ErrorSweep(
            title=f"Figure 4: PageRank iteration error (epsilon={eps})",
            x_label="sampling_ratio",
            sweep={},
        )
        for eps in epsilons
    }
    algorithm = PageRank()
    for dataset in datasets:
        graph = ctx.load(dataset)
        config = PageRankConfig.for_tolerance_level(tightest, graph.num_vertices)
        actual = ctx.actual_run(dataset, algorithm, config)
        actual_iters = {
            eps: iterations_for_threshold(actual, eps / graph.num_vertices) for eps in epsilons
        }
        runner = ctx.sample_runner(algorithm, sampler_name=sampler_name)
        prefix = DATASET_PREFIXES.get(dataset, dataset)
        for eps in epsilons:
            results[eps].sweep[prefix] = []
        for ratio in ratios:
            profile = runner.run(graph, config, ratio)
            for eps in epsilons:
                # The sample run applies the transform tau_S = tau_G / ratio,
                # so the equivalent sample threshold for tolerance eps is
                # (eps / N_G) / ratio.
                sample_threshold = (eps / graph.num_vertices) / ratio
                sample_iters = iterations_for_threshold(profile.run, sample_threshold)
                error = signed_relative_error(sample_iters, actual_iters[eps])
                results[eps].sweep[prefix].append((ratio, error))
    return results


# ------------------------------------------------------------------- Figure 5
def fig5_semiclustering_iterations(
    ctx: ExperimentContext,
    datasets: Sequence[str] = NO_TWITTER_DATASETS,
    ratios: Sequence[float] = PAPER_SAMPLING_RATIOS,
    tolerances: Sequence[float] = (0.01, 0.001),
    sampler_name: str = "BRJ",
    base_config: Optional[SemiClusteringConfig] = None,
) -> Dict[float, ErrorSweep]:
    """Figure 5: relative error of predicted semi-clustering iterations."""
    tightest = min(tolerances)
    base = base_config or SemiClusteringConfig(tolerance=tightest)
    base = SemiClusteringConfig(
        c_max=base.c_max, s_max=base.s_max, v_max=base.v_max,
        boundary_factor=base.boundary_factor, tolerance=tightest,
        max_iterations=base.max_iterations,
    )
    results: Dict[float, ErrorSweep] = {
        tol: ErrorSweep(
            title=f"Figure 5: semi-clustering iteration error (tau={tol})",
            x_label="sampling_ratio",
            sweep={},
        )
        for tol in tolerances
    }
    algorithm = SemiClustering()
    for dataset in datasets:
        graph = ctx.load(dataset)
        actual = ctx.actual_run(dataset, algorithm, base)
        actual_iters = {tol: iterations_for_threshold(actual, tol) for tol in tolerances}
        runner = ctx.sample_runner(algorithm, sampler_name=sampler_name)
        prefix = DATASET_PREFIXES.get(dataset, dataset)
        for tol in tolerances:
            results[tol].sweep[prefix] = []
        for ratio in ratios:
            profile = runner.run(graph, base, ratio)
            for tol in tolerances:
                sample_iters = iterations_for_threshold(profile.run, tol)
                error = signed_relative_error(sample_iters, actual_iters[tol])
                results[tol].sweep[prefix].append((ratio, error))
    return results


# ------------------------------------------------------------------- Figure 6
def fig6_topk_features(
    ctx: ExperimentContext,
    datasets: Sequence[str] = NO_TWITTER_DATASETS,
    ratios: Sequence[float] = PAPER_SAMPLING_RATIOS,
    tolerance: float = 0.001,
    k: int = 5,
    sampler_name: str = "BRJ",
) -> Dict[str, ErrorSweep]:
    """Figure 6: top-k ranking key-feature errors.

    Returns two sweeps: ``"iterations"`` (top plot) and ``"remote_bytes"``
    (bottom plot, total remote message bytes extrapolated with ``eE``).
    """
    iteration_sweep = ErrorSweep(
        title=f"Figure 6 (top): top-k iteration error (tau={tolerance})",
        x_label="sampling_ratio",
        sweep={},
    )
    bytes_sweep = ErrorSweep(
        title="Figure 6 (bottom): top-k remote message byte error",
        x_label="sampling_ratio",
        sweep={},
    )
    algorithm = TopKRanking()
    for dataset in datasets:
        graph = ctx.load(dataset)
        config = ctx.topk_config(dataset, k=k, tolerance=tolerance)
        actual = ctx.actual_run(dataset, algorithm, config)
        actual_bytes = float(actual.total_remote_message_bytes())
        runner = ctx.sample_runner(algorithm, sampler_name=sampler_name)
        prefix = DATASET_PREFIXES.get(dataset, dataset)
        iteration_sweep.sweep[prefix] = []
        bytes_sweep.sweep[prefix] = []
        for ratio in ratios:
            profile = runner.run(graph, config, ratio)
            iteration_error = signed_relative_error(profile.num_iterations, actual.num_iterations)
            iteration_sweep.sweep[prefix].append((ratio, iteration_error))
            predicted_bytes = profile.factors.edge_factor * sum(
                row["RemMsgSize"] for row in profile.feature_rows(level="graph")
            )
            bytes_error = signed_relative_error(predicted_bytes, actual_bytes)
            bytes_sweep.sweep[prefix].append((ratio, bytes_error))
    return {"iterations": iteration_sweep, "remote_bytes": bytes_sweep}


# --------------------------------------------------------------- Figures 7 & 8
def runtime_prediction_errors(
    ctx: ExperimentContext,
    algorithm_factory: Callable[[], object],
    config_builder: Callable[[ExperimentContext, str, object], object],
    datasets: Sequence[str],
    ratios: Sequence[float],
    use_history: bool,
    sampler_name: str = "BRJ",
    title: str = "runtime prediction error",
) -> ErrorSweep:
    """Shared implementation of Figures 7 and 8.

    For every dataset the actual run provides the ground-truth runtime; the
    predictor is trained on sample runs (plus, when ``use_history`` is True,
    on the actual runs of the *other* datasets) and evaluated at every
    sampling ratio.  The per-dataset cost-model R² values are reported in the
    sweep's extras, mirroring the R² values quoted in §5.2.
    """
    sweep = ErrorSweep(title=title, x_label="sampling_ratio", sweep={}, extras={})
    history = (
        build_history(ctx, algorithm_factory, config_builder, datasets) if use_history else None
    )
    r_squared: Dict[str, float] = {}
    for dataset in datasets:
        graph = ctx.load(dataset)
        config = config_builder(ctx, dataset, graph)
        actual = ctx.actual_run(dataset, algorithm_factory(), config)
        predictor = ctx.predictor(
            algorithm_factory(), sampler_name=sampler_name, history=history
        )
        prefix = DATASET_PREFIXES.get(dataset, dataset)
        sweep.sweep[prefix] = []
        for ratio in ratios:
            prediction = predictor.predict(
                graph, config, sampling_ratio=ratio, dataset_name=dataset
            )
            error = signed_relative_error(
                prediction.predicted_superstep_runtime, actual.superstep_runtime
            )
            sweep.sweep[prefix].append((ratio, error))
            r_squared[prefix] = prediction.cost_model.r_squared
    sweep.extras["r_squared"] = {name: round(value, 3) for name, value in r_squared.items()}
    sweep.extras["used_history"] = use_history
    return sweep


def fig7_semiclustering_runtime(
    ctx: ExperimentContext,
    datasets: Sequence[str] = NO_TWITTER_DATASETS,
    ratios: Sequence[float] = PAPER_SAMPLING_RATIOS,
    use_history: bool = False,
    tolerance: float = 0.001,
) -> ErrorSweep:
    """Figure 7: semi-clustering runtime prediction error."""
    config = SemiClusteringConfig(tolerance=tolerance)

    def build_config(_ctx, _dataset, _graph):
        return config

    variant = "b) sample runs + actual runs" if use_history else "a) sample runs only"
    return runtime_prediction_errors(
        ctx,
        SemiClustering,
        build_config,
        datasets,
        ratios,
        use_history,
        title=f"Figure 7 {variant}: semi-clustering runtime error",
    )


def fig8_topk_runtime(
    ctx: ExperimentContext,
    datasets: Sequence[str] = NO_TWITTER_DATASETS,
    ratios: Sequence[float] = PAPER_SAMPLING_RATIOS,
    use_history: bool = False,
    tolerance: float = 0.001,
    k: int = 5,
) -> ErrorSweep:
    """Figure 8: top-k ranking runtime prediction error."""

    def build_config(context, dataset, _graph):
        return context.topk_config(dataset, k=k, tolerance=tolerance)

    variant = "b) sample runs + actual runs" if use_history else "a) sample runs only"
    return runtime_prediction_errors(
        ctx,
        TopKRanking,
        build_config,
        datasets,
        ratios,
        use_history,
        title=f"Figure 8 {variant}: top-k ranking runtime error",
    )


# ------------------------------------------------------------------- Figure 9
def fig9_sampling_sensitivity(
    ctx: ExperimentContext,
    dataset: str = "uk-2002",
    ratios: Sequence[float] = PAPER_SAMPLING_RATIOS,
    samplers: Sequence[str] = ("BRJ", "RJ", "MHRW"),
    tolerance: float = 0.001,
    k: int = 5,
) -> Dict[str, ErrorSweep]:
    """Figure 9: iteration-error sensitivity to the sampling technique.

    Returns two sweeps (semi-clustering and top-k ranking) on ``dataset``,
    each with one series per sampling technique.
    """
    graph = ctx.load(dataset)
    results: Dict[str, ErrorSweep] = {}

    sc_config = SemiClusteringConfig(tolerance=tolerance)
    sc_actual = ctx.actual_run(dataset, SemiClustering(), sc_config)
    sc_sweep = ErrorSweep(
        title=f"Figure 9 (top): semi-clustering iteration error on {dataset}",
        x_label="sampling_ratio",
        sweep={},
    )
    for sampler_name in samplers:
        runner = ctx.sample_runner(SemiClustering(), sampler_name=sampler_name)
        points = []
        for ratio in ratios:
            profile = runner.run(graph, sc_config, ratio)
            points.append(
                (ratio, signed_relative_error(profile.num_iterations, sc_actual.num_iterations))
            )
        sc_sweep.sweep[sampler_name] = points
    results["semi-clustering"] = sc_sweep

    topk_config = ctx.topk_config(dataset, k=k, tolerance=tolerance)
    topk_actual = ctx.actual_run(dataset, TopKRanking(), topk_config)
    topk_sweep = ErrorSweep(
        title=f"Figure 9 (bottom): top-k iteration error on {dataset}",
        x_label="sampling_ratio",
        sweep={},
    )
    for sampler_name in samplers:
        runner = ctx.sample_runner(TopKRanking(), sampler_name=sampler_name)
        points = []
        for ratio in ratios:
            profile = runner.run(graph, topk_config, ratio)
            points.append(
                (ratio, signed_relative_error(profile.num_iterations, topk_actual.num_iterations))
            )
        topk_sweep.sweep[sampler_name] = points
    results["topk-ranking"] = topk_sweep
    return results


# ----------------------------------------------------------- §5.1 upper bounds
def upper_bound_comparison(
    ctx: ExperimentContext,
    datasets: Sequence[str] = ALL_DATASETS,
    epsilons: Sequence[float] = (0.1, 0.01, 0.001),
    damping: float = 0.85,
) -> TableResult:
    """§5.1 "Upper Bound Estimates": analytical bound vs actual PageRank iterations."""
    headers = ["epsilon", "analytical_bound"] + [
        f"actual_{DATASET_PREFIXES.get(d, d)}" for d in datasets
    ] + [f"factor_{DATASET_PREFIXES.get(d, d)}" for d in datasets]
    tightest = min(epsilons)
    algorithm = PageRank()
    actual_runs = {}
    for dataset in datasets:
        graph = ctx.load(dataset)
        config = PageRankConfig.for_tolerance_level(tightest, graph.num_vertices, damping=damping)
        actual_runs[dataset] = (graph, ctx.actual_run(dataset, algorithm, config))
    rows = []
    for eps in epsilons:
        bound = pagerank_iteration_upper_bound(eps, damping)
        actuals = []
        factors = []
        for dataset in datasets:
            graph, run = actual_runs[dataset]
            iters = iterations_for_threshold(run, eps / graph.num_vertices)
            actuals.append(iters)
            factors.append(round(bound_misprediction_factor(bound, iters), 2))
        rows.append([eps, bound] + actuals + factors)
    return TableResult(
        title="Upper bound estimates: Langville & Meyer bound vs actual iterations",
        headers=headers,
        rows=rows,
    )


# ------------------------------------------------------------------- Table 3
def table3_overhead(
    ctx: ExperimentContext,
    ratios: Sequence[float] = (0.01, 0.1, 0.2, 1.0),
    columns: Sequence[Tuple[str, str]] = (
        ("pagerank", "uk-2002"),
        ("pagerank", "twitter"),
        ("semi-clustering", "uk-2002"),
        ("connected-components", "twitter"),
        ("topk-ranking", "uk-2002"),
        ("neighborhood-estimation", "uk-2002"),
    ),
) -> TableResult:
    """Table 3: runtime of sample runs vs actual runs (simulated seconds)."""
    from repro.algorithms.registry import algorithm_by_name

    headers = ["SR"] + [
        f"{algorithm_by_name(alg).prefix}({DATASET_PREFIXES.get(ds, ds)})" for alg, ds in columns
    ]
    column_runtimes: List[Dict[float, float]] = []
    for algorithm_name, dataset in columns:
        algorithm = algorithm_by_name(algorithm_name)
        graph = ctx.load(dataset)
        config = _default_config_for(ctx, algorithm_name, dataset, graph)
        runtimes: Dict[float, float] = {}
        runner = ctx.sample_runner(algorithm)
        for ratio in ratios:
            if ratio >= 1.0:
                result = ctx.actual_run(dataset, algorithm, config)
                runtimes[ratio] = result.total_runtime
            else:
                profile = runner.run(graph, config, ratio)
                runtimes[ratio] = profile.runtime
        column_runtimes.append(runtimes)
    rows = []
    for ratio in ratios:
        rows.append([ratio] + [round(col[ratio], 1) for col in column_runtimes])
    return TableResult(
        title="Table 3: runtime of sample runs and actual runs (simulated seconds)",
        headers=headers,
        rows=rows,
    )


def _default_config_for(ctx: ExperimentContext, algorithm_name: str, dataset: str, graph):
    """Paper-default configuration for ``algorithm_name`` on ``dataset``."""
    if algorithm_name == "pagerank":
        return PageRankConfig.for_tolerance_level(0.001, graph.num_vertices)
    if algorithm_name == "semi-clustering":
        return SemiClusteringConfig(tolerance=0.001)
    if algorithm_name == "topk-ranking":
        return ctx.topk_config(dataset)
    if algorithm_name == "connected-components":
        return ConnectedComponentsConfig()
    if algorithm_name == "neighborhood-estimation":
        return NeighborhoodConfig()
    raise ValueError(f"no default configuration for {algorithm_name!r}")


# ------------------------------------------------------------------- ablations
def ablation_transform_function(
    ctx: ExperimentContext,
    datasets: Sequence[str] = ("wikipedia", "uk-2002"),
    ratios: Sequence[float] = (0.05, 0.1, 0.2),
    epsilon: float = 0.001,
) -> Dict[str, ErrorSweep]:
    """Ablation: PageRank iteration error with vs without threshold scaling.

    Without the transform (identity), the sample run converges too early (its
    absolute average delta is ~1/sr larger per vertex), so iterations are
    systematically mispredicted -- this is the paper's core argument for the
    transform function.
    """
    results: Dict[str, ErrorSweep] = {}
    algorithm = PageRank()
    for transform, label in ((THRESHOLD_SCALING_TRANSFORM, "with-transform"),
                             (IDENTITY_TRANSFORM, "without-transform")):
        sweep = ErrorSweep(
            title=f"Ablation: PageRank iteration error {label}",
            x_label="sampling_ratio",
            sweep={},
        )
        for dataset in datasets:
            graph = ctx.load(dataset)
            config = PageRankConfig.for_tolerance_level(epsilon, graph.num_vertices)
            actual = ctx.actual_run(dataset, algorithm, config)
            runner = ctx.sample_runner(algorithm, transform=transform)
            prefix = DATASET_PREFIXES.get(dataset, dataset)
            points = []
            for ratio in ratios:
                profile = runner.run(graph, config, ratio)
                points.append(
                    (ratio, signed_relative_error(profile.num_iterations, actual.num_iterations))
                )
            sweep.sweep[prefix] = points
        results[label] = sweep
    return results


def ablation_feature_selection(
    ctx: ExperimentContext,
    dataset: str = "uk-2002",
    ratios: Sequence[float] = (0.05, 0.1, 0.15, 0.2),
    prediction_ratio: float = 0.1,
    tolerance: float = 0.001,
) -> TableResult:
    """Ablation: forward feature selection vs using all candidate features."""
    graph = ctx.load(dataset)
    config = SemiClusteringConfig(tolerance=tolerance)
    algorithm = SemiClustering()
    actual = ctx.actual_run(dataset, algorithm, config)

    rows = []
    for label, use_selection in (("forward-selection", True), ("all-features", False)):
        predictor = ctx.predictor(
            SemiClustering(),
            training_ratios=ratios,
        )
        predictor.cost_model_factory = lambda use=use_selection: CostModel(use_feature_selection=use)
        prediction = predictor.predict(
            graph, config, sampling_ratio=prediction_ratio, dataset_name=dataset
        )
        error = signed_relative_error(
            prediction.predicted_superstep_runtime, actual.superstep_runtime
        )
        rows.append([
            label,
            len(prediction.cost_model.selected_features),
            round(prediction.cost_model.r_squared, 4),
            round(error, 4),
        ])
    return TableResult(
        title=f"Ablation: cost-model feature selection (semi-clustering on {dataset})",
        headers=["variant", "num_features", "r_squared", "runtime_error"],
        rows=rows,
    )
