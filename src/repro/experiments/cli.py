"""Command-line entry point for regenerating the paper's experiments.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments fig4 --scale 0.4 --workers 8
    python -m repro.experiments table3 upper-bounds

Each experiment prints the same rows/series the corresponding paper artefact
reports.  The pytest-benchmark suite under ``benchmarks/`` wraps the same
entry points; this CLI exists so users can regenerate a single figure without
pytest.
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict

from repro.cluster.cost_profile import DEFAULT_PROFILE
from repro.experiments import figures
from repro.experiments.harness import ExperimentContext
from repro.graph.partition import PARTITIONERS


def _render_fig4(ctx: ExperimentContext) -> str:
    result = figures.fig4_pagerank_iterations(ctx)
    return "\n\n".join(result[eps].render() for eps in sorted(result, reverse=True))


def _render_fig5(ctx: ExperimentContext) -> str:
    result = figures.fig5_semiclustering_iterations(ctx)
    return "\n\n".join(result[tau].render() for tau in sorted(result, reverse=True))


def _render_fig6(ctx: ExperimentContext) -> str:
    result = figures.fig6_topk_features(ctx)
    return result["iterations"].render() + "\n\n" + result["remote_bytes"].render()


def _render_fig7(ctx: ExperimentContext) -> str:
    parts = [
        figures.fig7_semiclustering_runtime(ctx, use_history=False).render(),
        figures.fig7_semiclustering_runtime(ctx, use_history=True).render(),
    ]
    return "\n\n".join(parts)


def _render_fig8(ctx: ExperimentContext) -> str:
    parts = [
        figures.fig8_topk_runtime(ctx, use_history=False).render(),
        figures.fig8_topk_runtime(ctx, use_history=True).render(),
    ]
    return "\n\n".join(parts)


def _render_fig9(ctx: ExperimentContext) -> str:
    result = figures.fig9_sampling_sensitivity(ctx)
    return result["semi-clustering"].render() + "\n\n" + result["topk-ranking"].render()


EXPERIMENTS: Dict[str, Callable[[ExperimentContext], str]] = {
    "table2": lambda ctx: figures.table2_datasets(ctx).render(),
    "fig4": _render_fig4,
    "fig5": _render_fig5,
    "fig6": _render_fig6,
    "fig7": _render_fig7,
    "fig8": _render_fig8,
    "fig9": _render_fig9,
    "upper-bounds": lambda ctx: figures.upper_bound_comparison(ctx).render(),
    "table3": lambda ctx: figures.table3_overhead(ctx).render(),
    "ablation-transform": lambda ctx: "\n\n".join(
        sweep.render() for sweep in figures.ablation_transform_function(ctx).values()
    ),
    "ablation-feature-selection": lambda ctx: figures.ablation_feature_selection(ctx).render(),
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the PREDIcT paper's tables and figures on the stand-in datasets.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"experiments to run (choices: {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument("--scale", type=float, default=0.4, help="stand-in dataset scale (default 0.4)")
    parser.add_argument("--workers", type=int, default=8, help="simulated BSP workers (default 8)")
    parser.add_argument("--seed", type=int, default=42, help="master seed (default 42)")
    parser.add_argument(
        "--no-freeze",
        action="store_true",
        help=(
            "do not freeze datasets to CSR: forces the scalar per-vertex "
            "engine path (debugging aid; results are identical, just slower)"
        ),
    )
    parser.add_argument(
        "--partitioner",
        choices=sorted(PARTITIONERS),
        default="hash",
        help="vertex-to-worker partitioning strategy (default: hash, as in Giraph)",
    )
    parser.add_argument(
        "--no-partition-native",
        action="store_true",
        help=(
            "keep the legacy gather-based batch layout instead of executing "
            "on the partition-contiguous relabelling (debugging aid; results "
            "are identical, just slower)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=("inline", "process"),
        default="inline",
        help=(
            "execution backend: 'inline' runs supersteps in this process, "
            "'process' on the shared-memory multiprocess backend "
            "(bit-identical results, true parallelism)"
        ),
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help=(
            "worker processes of the 'process' backend "
            "(default: min(workers, available cpus))"
        ),
    )
    parser.add_argument(
        "--kernel-tier",
        choices=("numpy", "numba", "auto"),
        default=None,
        help=(
            "hot-kernel implementation tier: 'numpy' (pure-NumPy reference), "
            "'numba' (compiled nogil twins; falls back to numpy when numba "
            "is not installed -- install with `pip install .[numba]`) or "
            "'auto' (compiled when available); default: the "
            "REPRO_KERNEL_TIER environment variable, then 'auto'.  Results "
            "are bit-identical across tiers (see docs/KERNELS.md)"
        ),
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=None,
        help=(
            "threads per process for the compiled tier's nogil fold kernels "
            "(default 1; ignored on the numpy tier)"
        ),
    )
    parser.add_argument(
        "--edge-list",
        default=None,
        metavar="PATH",
        help=(
            "run every experiment on this edge-list file (SNAP format, "
            "optionally gzipped) instead of the stand-in datasets; ingested "
            "out-of-core into an on-disk CSR cache and memmapped, so the "
            "graph may be larger than RAM"
        ),
    )
    parser.add_argument(
        "--csr-cache",
        default=None,
        metavar="DIR",
        help=(
            "on-disk CSR cache directory: holds the ingested --edge-list "
            "cache (default: <edge-list>.csr-cache), or -- without "
            "--edge-list -- persists the generated stand-ins so they are "
            "served memmap-backed across sessions"
        ),
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help=(
            "checkpoint the engine state every N supersteps (0 disables); "
            "with --backend process a worker crash rewinds to the last "
            "checkpoint and replays bit-identically (see docs/RESILIENCE.md)"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help=(
            "persist checkpoints to DIR (atomic write + manifest); without "
            "it checkpoints live in memory for the duration of the run"
        ),
    )
    parser.add_argument(
        "--barrier-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "barrier deadline of the process backend: a worker that misses "
            "it is classified as crashed (dead pid) or straggling (alive but "
            "late) and the run recovers from the last checkpoint"
        ),
    )
    parser.add_argument(
        "--inject-fault",
        action="append",
        default=None,
        metavar="KIND:PROC:SUPERSTEP[:SECONDS]",
        help=(
            "inject a deterministic fault into the process backend (may be "
            "repeated): KIND is kill|stop|stall|poison|corrupt, PROC a "
            "process index (or '?' for one drawn from REPRO_FAULT_SEED), "
            "SUPERSTEP the superstep it fires at, SECONDS the stall delay; "
            "e.g. --inject-fault kill:1:2 SIGKILLs worker process 1 at "
            "superstep 2"
        ),
    )
    parser.add_argument(
        "--service",
        default=None,
        metavar="SOCKET",
        help=(
            "run prediction sweeps (fig4/fig7/fig8 sample runs and "
            "predictions) as a client of the prediction daemon listening on "
            "SOCKET (start one with `repro-predict serve`); the daemon must "
            "share --scale/--workers/--seed for results to match the "
            "in-process path bit for bit.  Actual runs stay local -- they "
            "are the ground truth the sweeps compare against"
        ),
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "record a runtime trace of every run (phases, supersteps with "
            "measured wall + modeled time and message counters, per-worker "
            "spans) and write it to PATH: '.jsonl' writes JSON lines, "
            "anything else a Chrome trace_event file that loads in "
            "https://ui.perfetto.dev; a text summary is printed at exit "
            "(see docs/OBSERVABILITY.md)"
        ),
    )
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        for name in EXPERIMENTS:
            print(name)
        return 0

    unknown = [name for name in args.experiments if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    tracer = None
    if args.trace is not None:
        from repro.obs import Tracer

        tracer = Tracer()

    fault_plan = None
    if args.inject_fault:
        from repro.bsp.resilience import FaultPlan

        fault_plan = FaultPlan.parse(args.inject_fault)

    with ExperimentContext(
        cost_profile=DEFAULT_PROFILE,
        dataset_scale=args.scale,
        num_workers=args.workers,
        seed=args.seed,
        freeze_datasets=not args.no_freeze,
        partitioner_name=args.partitioner,
        partition_native=not args.no_partition_native,
        backend=args.backend,
        processes=args.processes,
        kernel_tier=args.kernel_tier,
        threads=args.threads,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
        barrier_timeout_s=args.barrier_timeout,
        fault_plan=fault_plan,
        edge_list=args.edge_list,
        csr_cache=args.csr_cache,
        tracer=tracer,
        service=args.service,
    ) as ctx:
        # The tracer is also made ambient so cold layers that instrument
        # through current_tracer() (regression, ingest) land in the trace.
        from repro.obs import activate

        with activate(tracer):
            for name in args.experiments:
                print(EXPERIMENTS[name](ctx))
                print()

    if tracer is not None:
        from repro.obs import summary_table, write_chrome_trace, write_jsonl

        if args.trace.endswith(".jsonl"):
            write_jsonl(tracer, args.trace)
        else:
            write_chrome_trace(tracer, args.trace)
        print(summary_table(tracer))
        print(f"\ntrace written to {args.trace}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
