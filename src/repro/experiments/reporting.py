"""Plain-text rendering of experiment results.

Thin wrappers over :mod:`repro.utils.tables` that know about the experiment
result structures (per-dataset error series, table rows), so that every bench
prints in the same layout: one row per x value (sampling ratio), one column
per dataset or technique -- exactly the series the paper's figures plot.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.utils.tables import format_series, format_table


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None) -> str:
    """Render a plain table (Table 2 / Table 3 style)."""
    return format_table(headers, rows, title=title)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
    title: str | None = None,
) -> str:
    """Render one or more named series against a shared x axis (figure style)."""
    return format_series(x_label, x_values, series, title=title)


def render_error_sweep(result, title: str) -> str:
    """Render a sweep result that maps dataset -> [(ratio, error), ...]."""
    ratios: List[float] = sorted({ratio for points in result.values() for ratio, _ in points})
    series: Dict[str, List[object]] = {}
    for name, points in result.items():
        lookup = {ratio: error for ratio, error in points}
        series[name] = [round(lookup[r], 4) if r in lookup else "" for r in ratios]
    return render_series("sampling_ratio", ratios, series, title=title)
