"""Shared machinery for regenerating the paper's experiments.

:class:`ExperimentContext` bundles everything an experiment needs -- the
simulated cluster, the dataset scale, the number of BSP workers, seeds -- and
caches the expensive *actual runs* so that several figures can reuse them
(e.g. the PageRank actual run feeds Figure 4, the upper-bound comparison and
the top-k experiments).

The helpers at the bottom implement the measurement conventions of §5:

* signed relative errors (negative = under-prediction);
* deriving the iteration count for a *looser* convergence threshold from the
  convergence history of a run executed with a tighter threshold (this halves
  the number of actual runs needed for the two tolerance levels of Figures 4
  and 5);
* assembling history stores for the "training with sample runs and actual
  runs" variants of Figures 7 and 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms.pagerank import PageRank, PageRankConfig
from repro.algorithms.topk_ranking import TopKRanking, TopKRankingConfig, config_with_ranks
from repro.bsp.engine import BSPEngine, EngineConfig
from repro.bsp.result import RunResult
from repro.cluster.cost_profile import DEFAULT_PROFILE, CostProfile
from repro.cluster.spec import ClusterSpec
from repro.core.history import HistoryStore
from repro.core.predictor import Predictor
from repro.core.sample_run import SampleRunner
from repro.core.transform import TransformFunction
from repro.exceptions import ConfigurationError
from repro.graph.csr import CSRGraph
from repro.graph.datasets import load_dataset
from repro.graph.partition import partitioner_by_name
from repro.sampling.registry import sampler_by_name
from repro.utils.rng import derive_seed
from repro.utils.stats import signed_relative_error

#: The sampling ratios swept by the paper's figures.
PAPER_SAMPLING_RATIOS = (0.05, 0.1, 0.15, 0.2, 0.25)

#: The training ratios used when no history exists (Figures 7a / 8a).
PAPER_TRAINING_RATIOS = (0.05, 0.1, 0.15, 0.2)


@dataclass
class ExperimentContext:
    """Execution environment shared by all experiments.

    Attributes
    ----------
    dataset_scale:
        Multiplier on the stand-in dataset sizes.  The full benchmarks use
        1.0; unit tests use much smaller values.
    num_workers:
        BSP workers used for every run (the paper uses 29; smaller values
        keep the pure-Python simulation fast without changing the shapes).
    seed:
        Master seed; per-component seeds are derived from it.
    freeze_datasets:
        When True (default) every loaded dataset is frozen to CSR so runs
        and sampler walks ride the array fast paths.  ``--no-freeze`` on the
        CLI sets this to False, forcing the scalar per-vertex path -- a
        debugging aid; results are identical either way.
    partitioner_name:
        Vertex-to-worker partitioning strategy for every run (``"hash"`` --
        Giraph's default -- ``"range"`` or ``"chunk"``).  The partitioning
        shapes the per-worker local/remote message split and therefore the
        critical-path features PREDIcT extrapolates.
    partition_native:
        When True (default) batch-plane runs execute on the
        partition-contiguous relabelled layout; ``--no-partition-native``
        keeps the legacy gather-based layout (results identical, slower).
    backend:
        Execution backend for every run: ``"inline"`` (default,
        single-process) or ``"process"`` (the shared-memory multiprocess
        backend; results are bit-identical, supersteps run in parallel).
        ``--backend`` on the CLI.
    processes:
        Worker processes of the ``"process"`` backend (``--processes``);
        None picks ``min(num_workers, available cpus)``.  The pool is
        persistent: every run of the context reuses it.
    edge_list:
        Path of a real edge-list file (``--edge-list``).  When set, every
        dataset name resolves to this graph, ingested out-of-core into an
        on-disk CSR cache (:mod:`repro.graph.ingest`) and memmap-backed --
        the path for running experiments on the paper's actual inputs.
    csr_cache:
        Directory of the on-disk CSR cache (``--csr-cache``).  With
        ``edge_list`` it holds the ingested cache (default: a sibling
        ``<edge_list>.csr-cache`` directory); without it, stand-in datasets
        are generated once, persisted there, and served memmap-backed.
    tracer:
        A :class:`repro.obs.Tracer` recording every run of the context
        (``--trace`` on the CLI).  Threaded into every
        :meth:`engine_config` and into edge-list ingestion; None (default)
        leaves tracing off at zero cost.
    kernel_tier:
        Hot-kernel implementation tier for every run (``--kernel-tier``):
        ``"numpy"``, ``"numba"`` or ``"auto"``.  None defers to the
        ``REPRO_KERNEL_TIER`` environment variable, then ``"auto"``.
        Results are bit-identical across tiers (see ``docs/KERNELS.md``).
    threads:
        Threads per process for the compiled tier's nogil fold kernels
        (``--threads``); None means 1.  Ignored on the numpy tier.
    checkpoint_every:
        Superstep checkpoint interval for every run (``--checkpoint-every``);
        0 (default) disables checkpointing.  See ``docs/RESILIENCE.md``.
    checkpoint_dir:
        Directory persisting checkpoints to disk (``--checkpoint-dir``);
        None keeps them in memory only.
    barrier_timeout_s:
        Barrier deadline in seconds for the process backend
        (``--barrier-timeout``); None waits forever.
    fault_plan:
        A :class:`repro.bsp.resilience.FaultPlan` injecting deterministic
        faults into process-backend runs (``--inject-fault``); None (default)
        injects nothing.
    shared_pools:
        A process-pool map shared with other engines (the prediction service
        passes one map to every context it owns).  The context's engine then
        *borrows* the map -- ``close()`` leaves it alone; the map's owner
        shuts it down via :meth:`BSPEngine.release_pools`.
    service:
        Unix-socket path of a running prediction daemon (``--service`` on
        the CLI).  When set, :meth:`predictor` and :meth:`sample_runner`
        return service-backed adapters instead of in-process objects, so
        the prediction sweeps (Figures 4/7/8) execute as daemon clients --
        bit-identically, when daemon and context share scale/seed/worker
        settings.  Actual runs stay local (they are the ground truth the
        sweeps compare against).
    """

    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    cost_profile: CostProfile = field(default_factory=lambda: DEFAULT_PROFILE)
    dataset_scale: float = 1.0
    num_workers: int = 8
    seed: int = 42
    max_supersteps: int = 200
    freeze_datasets: bool = True
    partitioner_name: str = "hash"
    partition_native: bool = True
    backend: str = "inline"
    processes: Optional[int] = None
    edge_list: Optional[str] = None
    csr_cache: Optional[str] = None
    tracer: Optional[object] = None
    kernel_tier: Optional[str] = None
    threads: Optional[int] = None
    checkpoint_every: int = 0
    checkpoint_dir: Optional[str] = None
    barrier_timeout_s: Optional[float] = None
    fault_plan: Optional[object] = None
    shared_pools: Optional[Dict] = None
    service: Optional[str] = None

    _engine: BSPEngine = field(init=False, repr=False, default=None)
    _service_client: Optional[object] = field(init=False, repr=False, default=None)
    _actual_runs: Dict[Tuple[str, str, str], RunResult] = field(
        init=False, repr=False, default_factory=dict
    )
    _pagerank_outputs: Dict[str, Dict] = field(init=False, repr=False, default_factory=dict)
    _frozen_graphs: Dict[Tuple[str, float, int], CSRGraph] = field(
        init=False, repr=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        self._engine = BSPEngine(
            cluster=self.cluster,
            cost_profile=self.cost_profile,
            shared_pools=self.shared_pools,
        )

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release held resources (process pools, the service connection)."""
        if self._service_client is not None:
            self._service_client.close()
            self._service_client = None
        self._engine.close_pools()

    def __enter__(self) -> "ExperimentContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ---------------------------------------------------------------- pieces
    @property
    def engine(self) -> BSPEngine:
        """The shared BSP engine."""
        return self._engine

    def engine_config(self, collect_values: bool = False) -> EngineConfig:
        """An engine configuration consistent across all experiment runs."""
        return EngineConfig(
            num_workers=self.num_workers,
            max_supersteps=self.max_supersteps,
            collect_vertex_values=collect_values,
            runtime_seed=derive_seed(self.seed, "runtime"),
            partitioner=partitioner_by_name(self.partitioner_name),
            partition_native=self.partition_native,
            backend=self.backend,
            processes=self.processes,
            trace=self.tracer,
            kernel_tier=self.kernel_tier,
            threads=self.threads,
            checkpoint_every=self.checkpoint_every,
            checkpoint_dir=self.checkpoint_dir,
            barrier_timeout_s=self.barrier_timeout_s,
            fault_plan=self.fault_plan,
        )

    def load(self, dataset: str) -> CSRGraph:
        """Load (and cache) a stand-in dataset at the context's scale.

        The graph is frozen (``DiGraph.freeze()`` -> CSR arrays) before any
        run touches it, so every experiment -- actual runs, sample runs,
        sampler walks -- rides the engine's vectorized superstep fast path
        whenever the algorithm supports it.  Freezing preserves vertex and
        edge order, so results are identical to the unfrozen path; with
        ``freeze_datasets=False`` the mutable ``DiGraph`` is returned and
        everything executes on the scalar per-vertex path instead.
        """
        if self.edge_list is not None:
            key = ("__edge_list__", str(self.edge_list))
            if key not in self._frozen_graphs:
                from repro.graph.ingest import ingest_or_load

                cache_dir = (
                    Path(self.csr_cache)
                    if self.csr_cache
                    else Path(f"{self.edge_list}.csr-cache")
                )
                self._frozen_graphs[key] = ingest_or_load(
                    self.edge_list, cache_dir, tracer=self.tracer
                )
            return self._frozen_graphs[key]
        key = (dataset, self.dataset_scale, self.seed)
        if key not in self._frozen_graphs:
            graph = load_dataset(
                dataset, scale=self.dataset_scale, seed=self.seed,
                csr_cache_dir=self.csr_cache,
            )
            self._frozen_graphs[key] = graph.freeze() if self.freeze_datasets else graph
        return self._frozen_graphs[key]

    def sampler(self, name: str = "BRJ"):
        """Instantiate a sampler with a context-derived seed."""
        return sampler_by_name(name, seed=derive_seed(self.seed, f"sampler-{name}"))

    def service_client(self):
        """The lazily-opened client of the configured prediction daemon."""
        if self.service is None:
            raise ConfigurationError("this context has no service socket configured")
        if self._service_client is None:
            from repro.service.client import PredictionClient

            self._service_client = PredictionClient(self.service)
        return self._service_client

    def sample_runner(
        self,
        algorithm,
        sampler_name: str = "BRJ",
        transform: Optional[TransformFunction] = None,
        profile_cache=None,
        profile_key=None,
    ):
        """A :class:`SampleRunner` wired to the context's engine and seeds.

        With :attr:`service` set, returns a
        :class:`~repro.service.client.ServiceSampleRunner` executing on the
        daemon instead (``transform`` and cache plumbing are daemon-side
        concerns there and must be left at their defaults).
        """
        if self.service is not None:
            from repro.service.client import ServiceSampleRunner

            if transform is not None or profile_cache is not None:
                raise ConfigurationError(
                    "transform/profile_cache are daemon-side settings when "
                    "running against a prediction service"
                )
            return ServiceSampleRunner(
                self.service_client(), algorithm, sampler_name=sampler_name
            )
        return SampleRunner(
            self.engine,
            algorithm,
            sampler=self.sampler(sampler_name),
            transform=transform,
            engine_config=self.engine_config(),
            profile_cache=profile_cache,
            profile_key=profile_key,
        )

    def predictor(
        self,
        algorithm,
        sampler_name: str = "BRJ",
        history: Optional[HistoryStore] = None,
        training_ratios: Sequence[float] = PAPER_TRAINING_RATIOS,
        transform: Optional[TransformFunction] = None,
        profile_cache=None,
        profile_key=None,
    ):
        """A :class:`Predictor` wired to the context's engine and seeds.

        With :attr:`service` set, returns a
        :class:`~repro.service.client.ServicePredictor` asking the daemon
        instead.  A supplied ``history`` store travels as its *dataset
        names*: the daemon rebuilds the actual runs itself (deterministic,
        so the training tables match the local ones bit for bit).
        """
        if self.service is not None:
            from repro.service.client import ServicePredictor

            if transform is not None or profile_cache is not None:
                raise ConfigurationError(
                    "transform/profile_cache are daemon-side settings when "
                    "running against a prediction service"
                )
            history_datasets = (
                history.datasets(algorithm.name) if history is not None else ()
            )
            return ServicePredictor(
                self.service_client(),
                algorithm,
                sampler_name=sampler_name,
                history_datasets=history_datasets,
                training_ratios=training_ratios,
            )
        return Predictor(
            self.engine,
            algorithm,
            sampler=self.sampler(sampler_name),
            transform=transform,
            history=history,
            training_ratios=training_ratios,
            engine_config=self.engine_config(),
            profile_cache=profile_cache,
            profile_key=profile_key,
        )

    # ----------------------------------------------------------- actual runs
    def actual_run(
        self, dataset: str, algorithm, config, collect_values: bool = False
    ) -> RunResult:
        """Execute (or fetch from cache) the actual run of an algorithm."""
        key = (dataset, algorithm.name, _config_key(algorithm, config))
        if key not in self._actual_runs or (
            collect_values and self._actual_runs[key].vertex_values is None
        ):
            graph = self.load(dataset)
            result = self.engine.run(
                graph,
                algorithm,
                config=config,
                engine_config=self.engine_config(collect_values=collect_values),
            )
            self._actual_runs[key] = result
        return self._actual_runs[key]

    def pagerank_output(self, dataset: str, epsilon: float = 0.001) -> Dict:
        """PageRank ranks of ``dataset`` (cached), used as top-k ranking input."""
        if dataset not in self._pagerank_outputs:
            graph = self.load(dataset)
            config = PageRankConfig.for_tolerance_level(epsilon, graph.num_vertices)
            result = self.actual_run(dataset, PageRank(), config, collect_values=True)
            self._pagerank_outputs[dataset] = dict(result.vertex_values)
        return self._pagerank_outputs[dataset]

    def topk_config(self, dataset: str, k: int = 5, tolerance: float = 0.001) -> TopKRankingConfig:
        """A top-k configuration carrying the dataset's PageRank output."""
        ranks = self.pagerank_output(dataset)
        return config_with_ranks(TopKRankingConfig(k=k, tolerance=tolerance), ranks)

    def clear_caches(self) -> None:
        """Drop all cached actual runs, PageRank outputs and frozen graphs."""
        self._actual_runs.clear()
        self._pagerank_outputs.clear()
        self._frozen_graphs.clear()


# --------------------------------------------------------------------- helpers
def iterations_for_threshold(run: RunResult, threshold: float) -> int:
    """Iteration count a run *would* have had under a looser threshold.

    Requires the run to have been executed with a threshold at least as tight
    as ``threshold`` and a convergence metric that decreases below the
    threshold exactly once (PageRank's average delta, the update ratios of
    semi-clustering and top-k).  The first superstep never evaluates the
    metric (index 0 of the history corresponds to superstep 1), matching the
    engine's convergence protocol.
    """
    if not run.convergence_history:
        raise ConfigurationError("run has no convergence history")
    for index, metric in enumerate(run.convergence_history):
        if metric < threshold:
            return index + 2  # superstep index (index + 1) plus one for superstep 0
    return run.num_iterations


def iteration_error(
    sample_iterations: int, actual_iterations: int
) -> float:
    """Signed relative error of a predicted iteration count."""
    return signed_relative_error(sample_iterations, actual_iterations)


def build_history(
    ctx: ExperimentContext,
    algorithm_factory,
    config_builder,
    datasets: Sequence[str],
) -> HistoryStore:
    """History store containing the actual runs of ``datasets``.

    ``algorithm_factory()`` builds a fresh algorithm instance and
    ``config_builder(ctx, dataset, graph)`` its per-dataset configuration.
    The caller excludes the predicted dataset at training time via
    :meth:`HistoryStore.training_table`'s ``exclude_dataset``.
    """
    history = HistoryStore()
    for dataset in datasets:
        graph = ctx.load(dataset)
        algorithm = algorithm_factory()
        config = config_builder(ctx, dataset, graph)
        run = ctx.actual_run(dataset, algorithm, config)
        history.record(run, dataset=dataset)
    return history


def sweep_to_series(
    sweep: Dict[str, List[Tuple[float, float]]]
) -> Tuple[List[float], Dict[str, List[float]]]:
    """Convert ``{name: [(ratio, value)]}`` into (ratios, {name: values})."""
    ratios = sorted({ratio for points in sweep.values() for ratio, _ in points})
    series: Dict[str, List[float]] = {}
    for name, points in sweep.items():
        lookup = dict(points)
        series[name] = [lookup.get(ratio, float("nan")) for ratio in ratios]
    return ratios, series


def _config_key(algorithm, config) -> str:
    """A cache key for a configuration (scalar fields only)."""
    return repr(sorted(algorithm.config_dict(config).items()))
