"""Experiment harness regenerating the paper's tables and figures.

* :mod:`repro.experiments.harness` -- the shared machinery: an
  :class:`~repro.experiments.harness.ExperimentContext` bundling the simulated
  cluster, dataset scale and seeds, cached actual runs, and sweep helpers
  (iteration errors, feature errors, runtime errors, overhead measurements).
* :mod:`repro.experiments.figures` -- one entry point per paper artefact
  (Figure 4 ... Figure 9, Table 2, Table 3, the §5.1 upper-bound comparison
  and the ablations called out in DESIGN.md), each returning a structured
  result object that the benchmarks print.
* :mod:`repro.experiments.reporting` -- plain-text rendering of those results
  in the same rows/series layout as the paper.
"""

from repro.experiments.harness import ExperimentContext
from repro.experiments.reporting import render_series, render_table

__all__ = ["ExperimentContext", "render_table", "render_series"]
