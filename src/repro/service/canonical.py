"""Canonical request identity: the config hashes behind the service cache.

The prediction service promises "identical question, identical answer, paid
for once".  That promise rests on a *canonical* request representation:

* **Deterministic.**  The canonical payload is a JSON object serialised with
  sorted keys, so insertion order of the request fields never changes the
  hash, and the hash is stable across interpreter restarts (``sha256`` over
  bytes -- never ``hash()``, which is salted per process).
* **Trajectory-complete.**  Everything that can change a prediction is in the
  payload: the algorithm and its configuration, the dataset identity (name,
  scale, generator seed -- or the content digest of an ingested graph), the
  sampling technique and ratios, the transform, the simulated cluster, the
  worker count, the runtime-noise seed and the superstep budget.
* **Mechanics-free.**  Following the checkpoint-fingerprint discipline of
  :func:`repro.bsp.resilience.config_fingerprint`, pure *execution strategy*
  -- backend, process count, kernel tier, threads, tracing, checkpointing --
  is deliberately excluded: those knobs are bit-identical by construction
  (the differential suites enforce it), so a prediction computed inline may
  be served from cache to a process-backend client and vice versa.

Two key granularities exist:

``prediction_key``
    One whole :class:`~repro.core.predictor.Prediction` (training sweep +
    regression + extrapolation).  Cache unit of the ``predict`` verb.
``profile_key``
    One sample-run profile at one sampling ratio.  Requests that *overlap*
    (e.g. two sweeps sharing training ratios) miss the prediction cache but
    reuse every per-ratio profile they have in common, so only the missing
    cells execute.  ``profile_key`` drops the fields that only affect
    training-table assembly (training ratios, history, feature level):
    they cannot change what a single sample run observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.utils.canonical import canonical_hash, config_token, graph_token, jsonable

__all__ = [
    "PredictRequest",
    "canonical_hash",
    "config_token",
    "graph_token",
    "prediction_key",
    "profile_key",
    "sample_key",
]

# The hashing primitives (canonical_hash / graph_token / config_token) live
# in repro.utils.canonical so the in-process predictor can key its own
# memoisation identically without importing the service layer; this module
# re-exports them and adds the wire-level request vocabulary on top.
_jsonable = jsonable


@dataclass(frozen=True)
class PredictRequest:
    """One canonicalised ``predict`` question.

    This is the wire vocabulary of the service: everything is a name, a
    number or a plain dict -- never a live object -- so a request serialises
    to JSON, hashes deterministically and can be resolved by a daemon that
    shares nothing with the client but the codebase.

    Attributes
    ----------
    dataset:
        Stand-in dataset name (resolved by the daemon's experiment context).
    algorithm:
        Canonical algorithm name or alias (``repro.algorithms.registry``).
    sampling_ratio:
        The prediction ratio.
    training_ratios:
        Ratios of the training sweep (the paper's defaults when omitted).
    config:
        ``{"values": {scalar config fields}, "needs_ranks": bool}`` --
        ``needs_ranks`` asks the daemon to attach its own PageRank output
        (top-k ranking's input) before running.  None means the algorithm
        default.
    sampler:
        Sampler name (``"BRJ"``/``"RJ"``/``"MHRW"``; registry names).
    history:
        Dataset names whose *actual runs* augment the training table
        (Figures 7b/8b).  The daemon executes/caches those runs itself.
    feature_level:
        Feature extraction level (``"critical"`` or ``"graph"``).
    budget:
        Superstep budget for every run of this request (None: the daemon's
        default).  Part of the hash -- a tighter budget can truncate
        convergence and change the answer.
    cluster:
        Overrides of the simulated :class:`~repro.cluster.spec.ClusterSpec`
        (``num_nodes``, ``workers_per_node``, ``worker_memory_bytes``,
        ``network_bandwidth_bytes_per_s``, ``local_bandwidth_bytes_per_s``).
    """

    dataset: str
    algorithm: str
    sampling_ratio: float = 0.1
    training_ratios: Optional[Tuple[float, ...]] = None
    config: Optional[Dict[str, Any]] = None
    sampler: str = "BRJ"
    history: Tuple[str, ...] = ()
    feature_level: str = "critical"
    budget: Optional[int] = None
    cluster: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.training_ratios is not None:
            object.__setattr__(
                self, "training_ratios", tuple(float(r) for r in self.training_ratios)
            )
        object.__setattr__(self, "history", tuple(self.history))
        object.__setattr__(self, "cluster", dict(self.cluster or {}))

    # ------------------------------------------------------------------ wire
    def to_wire(self) -> Dict[str, Any]:
        """Plain-dict form for the JSON frame."""
        wire: Dict[str, Any] = {
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "sampling_ratio": float(self.sampling_ratio),
            "sampler": self.sampler,
            "feature_level": self.feature_level,
        }
        if self.training_ratios is not None:
            wire["training_ratios"] = list(self.training_ratios)
        if self.config is not None:
            wire["config"] = _jsonable(self.config)
        if self.history:
            wire["history"] = list(self.history)
        if self.budget is not None:
            wire["budget"] = int(self.budget)
        if self.cluster:
            wire["cluster"] = _jsonable(self.cluster)
        return wire

    @classmethod
    def from_wire(cls, params: Dict[str, Any]) -> "PredictRequest":
        """Rebuild a request from a JSON frame's parameter dict."""
        known = {
            "dataset", "algorithm", "sampling_ratio", "training_ratios",
            "config", "sampler", "history", "feature_level", "budget",
            "cluster",
        }
        unknown = set(params) - known
        if unknown:
            raise ValueError(f"unknown predict parameter(s): {', '.join(sorted(unknown))}")
        if "dataset" not in params or "algorithm" not in params:
            raise ValueError("predict requires 'dataset' and 'algorithm'")
        kwargs = dict(params)
        if "training_ratios" in kwargs and kwargs["training_ratios"] is not None:
            kwargs["training_ratios"] = tuple(kwargs["training_ratios"])
        if "history" in kwargs:
            kwargs["history"] = tuple(kwargs["history"] or ())
        return cls(**kwargs)


def _context_payload(context_params: Dict[str, Any]) -> Dict[str, Any]:
    """The context-level fields every key granularity shares.

    ``context_params`` comes from the serving side
    (:meth:`PredictionService.canonical_context`): dataset scale, master
    seed, worker count, transform name, cluster spec, runtime seed and the
    engine's trajectory-shaping flags.  Execution mechanics never appear
    here -- see the module docstring.
    """
    return {str(k): _jsonable(v) for k, v in context_params.items()}


def prediction_key(request: PredictRequest, context_params: Dict[str, Any]) -> str:
    """Cache key of one whole prediction."""
    payload = _context_payload(context_params)
    payload.update(
        kind="prediction",
        dataset=request.dataset,
        algorithm=request.algorithm,
        sampling_ratio=float(request.sampling_ratio),
        training_ratios=(
            list(request.training_ratios) if request.training_ratios is not None else None
        ),
        config=_jsonable(request.config),
        sampler=request.sampler,
        history=list(request.history),
        feature_level=request.feature_level,
        budget=request.budget,
        cluster=_jsonable(request.cluster),
    )
    return "prediction:" + canonical_hash(payload)


def profile_key(
    request: PredictRequest, context_params: Dict[str, Any], ratio: float
) -> str:
    """Cache key of one sample-run profile at ``ratio``.

    Drops everything that only affects training-table assembly
    (``training_ratios``, ``history``, ``feature_level``, the prediction
    ratio): two sweeps that overlap at ``ratio`` share this key and
    therefore share the sample run.
    """
    payload = _context_payload(context_params)
    payload.update(
        kind="profile",
        dataset=request.dataset,
        algorithm=request.algorithm,
        config=_jsonable(request.config),
        sampler=request.sampler,
        budget=request.budget,
        cluster=_jsonable(request.cluster),
        ratio=float(ratio),
    )
    return "profile:" + canonical_hash(payload)


def sample_key(request: PredictRequest, context_params: Dict[str, Any]) -> str:
    """Cache key of the ``sample_run`` verb (profile summary at one ratio)."""
    return "sample:" + profile_key(request, context_params, request.sampling_ratio)
