"""``repro-predict``: command-line front end of the prediction service.

Subcommands::

    repro-predict serve   start the daemon on a unix socket
    repro-predict ask     request one prediction (human or JSON output)
    repro-predict sample  request one sample-run profile summary
    repro-predict status  daemon liveness/configuration
    repro-predict stats   counters + cache accounting
    repro-predict clear-cache
    repro-predict ping
    repro-predict shutdown

Run as ``python -m repro.service`` or via the ``repro-predict`` console
script.  ``docs/SERVICE.md`` documents the wire protocol and deployment.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.service.cache import cache_by_name
from repro.service.canonical import PredictRequest
from repro.service.client import PredictionClient, RemoteError
from repro.service.daemon import DEFAULT_SOCKET, PredictionDaemon, PredictionService

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-predict",
        description="PREDIcT prediction service: runtime estimates before you run.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="start the prediction daemon")
    serve.add_argument("--socket", default=DEFAULT_SOCKET, help="unix socket path")
    serve.add_argument("--scale", type=float, default=1.0, help="dataset scale")
    serve.add_argument("--workers", type=int, default=8, help="BSP workers per run")
    serve.add_argument("--seed", type=int, default=42, help="master seed")
    serve.add_argument(
        "--max-supersteps", type=int, default=200, help="default superstep budget"
    )
    serve.add_argument(
        "--backend", choices=("inline", "process"), default="inline",
        help="execution backend for sample and actual runs",
    )
    serve.add_argument(
        "--processes", type=int, default=None,
        help="worker processes of the process backend",
    )
    serve.add_argument("--partitioner", default="hash", help="partitioning strategy")
    serve.add_argument(
        "--cache", default="memory",
        help="prediction cache backend: memory[:N], sqlite:PATH or none",
    )
    serve.add_argument(
        "--profile-cache", default="memory:512",
        help="per-ratio sample-run profile cache backend (same spec syntax)",
    )
    serve.add_argument(
        "--csr-cache", default=None, help="directory of the on-disk CSR dataset cache"
    )
    serve.add_argument(
        "--rpc-workers", type=int, default=2,
        help="daemon threads executing predict/sample_run requests",
    )
    serve.add_argument(
        "--trace", action="store_true",
        help="record tracer spans/counters; print the summary on shutdown",
    )

    def add_client_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--socket", default=DEFAULT_SOCKET, help="unix socket path")
        p.add_argument("--timeout", type=float, default=None, help="socket timeout (s)")
        p.add_argument(
            "--wait", type=float, default=None, metavar="SECONDS",
            help="wait up to SECONDS for the daemon socket to come up",
        )

    def add_request_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("dataset", help="dataset name (e.g. livejournal)")
        p.add_argument("algorithm", help="algorithm name or alias (e.g. pagerank, sc)")
        p.add_argument("--ratio", type=float, default=0.1, help="sampling ratio")
        p.add_argument(
            "--training-ratios", type=float, nargs="+", default=None,
            help="training sweep ratios (default: the paper's)",
        )
        p.add_argument("--sampler", default="BRJ", help="sampling technique")
        p.add_argument(
            "--history", nargs="+", default=(),
            help="datasets whose actual runs augment the training table",
        )
        p.add_argument(
            "--budget", type=int, default=None, help="superstep budget override"
        )
        p.add_argument(
            "--set", dest="config_values", action="append", default=[],
            metavar="FIELD=VALUE", help="algorithm config override (repeatable)",
        )
        p.add_argument(
            "--needs-ranks", action="store_true",
            help="attach the daemon's PageRank output to the config (top-k)",
        )
        p.add_argument(
            "--cluster-nodes", type=int, default=None,
            help="override the simulated cluster's node count",
        )
        p.add_argument(
            "--workers-per-node", type=int, default=None,
            help="override the simulated cluster's workers per node",
        )
        p.add_argument("--json", action="store_true", help="print raw JSON")

    ask = sub.add_parser("ask", help="request one prediction")
    add_client_args(ask)
    add_request_args(ask)

    sample = sub.add_parser("sample", help="request one sample-run summary")
    add_client_args(sample)
    add_request_args(sample)

    for name, help_text in (
        ("status", "daemon liveness and configuration"),
        ("stats", "service counters and cache accounting"),
        ("clear-cache", "drop the daemon's caches"),
        ("ping", "liveness check"),
        ("shutdown", "stop the daemon cleanly"),
    ):
        p = sub.add_parser(name, help=help_text)
        add_client_args(p)

    return parser


def _parse_value(text: str):
    """Best-effort typed parse of a --set FIELD=VALUE override."""
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _request_from_args(args: argparse.Namespace) -> PredictRequest:
    values = {}
    for item in args.config_values:
        field, _, value = item.partition("=")
        if not _ or not field:
            raise SystemExit(f"--set expects FIELD=VALUE, got {item!r}")
        values[field] = _parse_value(value)
    config = None
    if values or args.needs_ranks:
        config = {"values": values, "needs_ranks": args.needs_ranks}
    cluster = {}
    if args.cluster_nodes is not None:
        cluster["num_nodes"] = args.cluster_nodes
    if args.workers_per_node is not None:
        cluster["workers_per_node"] = args.workers_per_node
    return PredictRequest(
        dataset=args.dataset,
        algorithm=args.algorithm,
        sampling_ratio=args.ratio,
        training_ratios=args.training_ratios,
        config=config,
        sampler=args.sampler,
        history=tuple(args.history),
        budget=args.budget,
        cluster=cluster,
    )


def _serve(args: argparse.Namespace) -> int:
    tracer = None
    if args.trace:
        from repro.obs.tracer import Tracer

        tracer = Tracer()
    service = PredictionService(
        dataset_scale=args.scale,
        num_workers=args.workers,
        seed=args.seed,
        max_supersteps=args.max_supersteps,
        partitioner_name=args.partitioner,
        backend=args.backend,
        processes=args.processes,
        prediction_cache=cache_by_name(args.cache),
        profile_cache=cache_by_name(args.profile_cache, default_capacity=512),
        tracer=tracer,
        csr_cache=args.csr_cache,
    )
    daemon = PredictionDaemon(service, args.socket, max_workers=args.rpc_workers)
    print(f"repro-predict: serving on {args.socket} "
          f"(backend={args.backend}, scale={args.scale}, seed={args.seed})")
    sys.stdout.flush()
    daemon.serve_forever()
    if tracer is not None:
        from repro.obs.export import summary_table

        print(summary_table(tracer))
    print("repro-predict: daemon stopped")
    return 0


def _print_prediction(result: dict) -> None:
    print(f"{result['algorithm']} on {result['dataset']} "
          f"(ratio {result['sampling_ratio']}, cache {result.get('cache', '?')})")
    print(f"  predicted iterations : {result['predicted_iterations']}")
    print(f"  predicted runtime    : {result['predicted_superstep_runtime']:.2f} s "
          f"(superstep phase, simulated)")
    print(f"  scaling factors      : eV={result['vertex_scaling_factor']:.3f} "
          f"eE={result['edge_scaling_factor']:.3f}")
    print(f"  cost model           : R^2={result['r_squared']:.4f} "
          f"features={result['selected_features']}")
    print(f"  training observations: {result['training_observations']} "
          f"(history: {result['used_history']})")
    print(f"  config hash          : {result['config_hash']}")


def _print_sample(result: dict) -> None:
    print(f"sample run: {result['algorithm']} on {result['dataset']} "
          f"(ratio {result['sampling_ratio']}, cache {result.get('cache', '?')})")
    print(f"  iterations      : {result['num_iterations']}")
    print(f"  sample size     : {result['sample_vertices']} vertices / "
          f"{result['sample_edges']} edges")
    print(f"  runtime         : {result['total_runtime']:.2f} s (simulated)")
    print(f"  scaling factors : eV={result['vertex_scaling_factor']:.3f} "
          f"eE={result['edge_scaling_factor']:.3f}")
    print(f"  config hash     : {result['config_hash']}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        return _serve(args)

    client = PredictionClient(args.socket, timeout=args.timeout)
    try:
        if args.wait is not None:
            client.wait_until_ready(timeout=args.wait)
        with client:
            if args.command == "ask":
                result = client.predict(_request_from_args(args))
                if args.json:
                    print(json.dumps(result, indent=2, sort_keys=True))
                else:
                    _print_prediction(result)
            elif args.command == "sample":
                result = client.sample_run(_request_from_args(args))
                if args.json:
                    print(json.dumps(result, indent=2, sort_keys=True))
                else:
                    _print_sample(result)
            elif args.command == "status":
                print(json.dumps(client.status(), indent=2, sort_keys=True))
            elif args.command == "stats":
                print(json.dumps(client.stats(), indent=2, sort_keys=True))
            elif args.command == "clear-cache":
                print(json.dumps(client.clear_cache(), sort_keys=True))
            elif args.command == "ping":
                print(client.ping())
            elif args.command == "shutdown":
                print(client.shutdown())
    except TimeoutError as exc:
        print(f"repro-predict: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError:
        print(f"repro-predict: no daemon at {args.socket} "
              "(start one with: repro-predict serve)", file=sys.stderr)
        return 1
    except ConnectionRefusedError:
        print(f"repro-predict: stale socket at {args.socket}, daemon not running",
              file=sys.stderr)
        return 1
    except RemoteError as exc:
        print(f"repro-predict: daemon error [{exc.kind}]: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
