"""``python -m repro.service`` runs the ``repro-predict`` CLI."""

from repro.service.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
