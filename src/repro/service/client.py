"""Synchronous client of the prediction daemon, plus harness adapters.

:class:`PredictionClient` is the thin wire client: one unix-socket
connection, blocking length-prefixed JSON frames, one method per daemon
verb.  Server-side failures surface as :class:`RemoteError` carrying the
original exception class name.

:class:`ServicePredictor` and :class:`ServiceSampleRunner` adapt the wire
client to the in-process interfaces the experiments code consumes
(:class:`~repro.core.predictor.Predictor` / :class:`~repro.core.sample_run.SampleRunner`),
so the Figure 4/7/8 sweeps run unchanged against a daemon -- the
``--service`` flag of the experiments CLI swaps them in via
:class:`~repro.experiments.harness.ExperimentContext`.  The adapters send
*names* over the wire (dataset, algorithm, sampler, config field values);
the daemon resolves them against its own datasets and PageRank outputs,
which is what makes the answers bit-identical to the in-process path when
client and daemon share scale/seed/worker settings.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ReproError
from repro.service.canonical import PredictRequest
from repro.service.protocol import ProtocolError, read_frame, write_frame

__all__ = [
    "PredictionClient",
    "RemoteError",
    "ServicePrediction",
    "ServicePredictor",
    "ServiceSampleRunner",
]


class RemoteError(ReproError):
    """An error reported by the daemon (original class name in ``kind``)."""

    def __init__(self, message: str, kind: str = "Exception") -> None:
        super().__init__(message)
        self.kind = kind


class PredictionClient:
    """Blocking unix-socket client of a :class:`PredictionDaemon`.

    A client keeps one persistent connection (thread-safe behind a lock --
    frames are request/response, so serialising calls is correct) and
    reconnects lazily after the daemon restarts.
    """

    def __init__(self, socket_path: str, timeout: Optional[float] = None) -> None:
        import threading

        self.socket_path = str(socket_path)
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------ connection
    def connect(self) -> "PredictionClient":
        """Open the connection (idempotent)."""
        with self._lock:
            self._ensure_connected()
        return self

    def _ensure_connected(self) -> socket.socket:
        if self._sock is None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            if self.timeout is not None:
                sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
            self._sock = sock
        return self._sock

    def close(self) -> None:
        """Close the connection (idempotent)."""
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                finally:
                    self._sock = None

    def __enter__(self) -> "PredictionClient":
        # Lazy: the first call connects.  Eager connects would race a daemon
        # that has not bound its socket yet (use ``wait_until_ready``).
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def wait_until_ready(self, timeout: float = 10.0, interval: float = 0.05) -> None:
        """Block until the daemon answers ``ping`` (daemon start-up races)."""
        deadline = time.monotonic() + timeout
        last_error: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                self.ping()
                return
            except (OSError, ProtocolError, RemoteError) as exc:
                last_error = exc
                self.close()
                time.sleep(interval)
        raise TimeoutError(
            f"daemon at {self.socket_path} not ready after {timeout}s: {last_error}"
        )

    # ------------------------------------------------------------------ wire
    def call(self, verb: str, params: Optional[Dict[str, Any]] = None) -> Any:
        """Send one request frame and return the daemon's ``result``."""
        with self._lock:
            sock = self._ensure_connected()
            try:
                write_frame(sock, {"verb": verb, "params": params or {}})
                response = read_frame(sock)
            except (OSError, ProtocolError):
                # Drop the broken connection so the next call reconnects.
                self.close_unlocked()
                raise
        if response is None:
            self.close()
            raise ProtocolError("daemon closed the connection without responding")
        if not isinstance(response, dict) or "ok" not in response:
            raise ProtocolError(f"malformed response frame: {response!r}")
        if not response["ok"]:
            raise RemoteError(
                response.get("error", "unknown daemon error"),
                kind=response.get("error_kind", "Exception"),
            )
        return response.get("result")

    def close_unlocked(self) -> None:
        """Close without taking the lock (only from within locked sections)."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    # ----------------------------------------------------------------- verbs
    def ping(self) -> str:
        """Liveness check."""
        return self.call("ping")

    def predict(
        self, request: Optional[PredictRequest] = None, **params: Any
    ) -> Dict[str, Any]:
        """One prediction (wire-shaped dict; ``result["cache"]`` says how).

        Accepts a :class:`PredictRequest` or the request fields as keyword
        arguments (``client.predict(dataset="livejournal", algorithm="pagerank")``).
        """
        if request is None:
            request = PredictRequest.from_wire(params)
        return self.call("predict", request.to_wire())

    def sample_run(
        self, request: Optional[PredictRequest] = None, **params: Any
    ) -> Dict[str, Any]:
        """One sample-run profile summary at ``request.sampling_ratio``."""
        if request is None:
            request = PredictRequest.from_wire(params)
        return self.call("sample_run", request.to_wire())

    def status(self) -> Dict[str, Any]:
        """Daemon liveness/configuration summary."""
        return self.call("status")

    def stats(self) -> Dict[str, Any]:
        """Service counters and cache accounting."""
        return self.call("stats")

    def clear_cache(self) -> Dict[str, int]:
        """Drop the daemon's prediction and profile caches."""
        return self.call("clear_cache")

    def shutdown(self) -> str:
        """Ask the daemon to shut down cleanly."""
        result = self.call("shutdown")
        self.close()
        return result


# --------------------------------------------------------------------- adapters
class _RemoteCostModel:
    """Read-only stand-in for a fitted :class:`~repro.core.cost_model.CostModel`."""

    def __init__(self, r_squared: float, selected_features: List[str], description: Dict[str, Any]) -> None:
        self.r_squared = r_squared
        self.selected_features = list(selected_features)
        self._description = dict(description)

    def describe(self) -> Dict[str, Any]:
        return dict(self._description)


class _RemoteRun:
    """Convergence view of a remote sample run (duck-types ``RunResult``
    where the figure helpers need it: ``convergence_history``,
    ``num_iterations``, the runtime totals)."""

    def __init__(self, wire: Dict[str, Any]) -> None:
        self.convergence_history = list(wire["convergence_history"])
        self.num_iterations = int(wire["num_iterations"])
        self.superstep_runtime = float(wire["superstep_runtime"])
        self.total_runtime = float(wire["total_runtime"])


class _RemoteFactors:
    """``ScalingFactors`` stand-in (``vertex_factor`` / ``edge_factor``)."""

    def __init__(self, vertex_factor: float, edge_factor: float) -> None:
        self.vertex_factor = vertex_factor
        self.edge_factor = edge_factor


class ServiceSampleProfile:
    """Remote counterpart of :class:`~repro.core.sample_run.SampleRunProfile`."""

    def __init__(self, wire: Dict[str, Any]) -> None:
        self.wire = dict(wire)
        self.algorithm = wire["algorithm"]
        self.sampling_ratio = float(wire["sampling_ratio"])
        self.run = _RemoteRun(wire)
        self.factors = _RemoteFactors(
            float(wire["vertex_scaling_factor"]), float(wire["edge_scaling_factor"])
        )
        self.sample_vertices = int(wire["sample_vertices"])
        self.sample_edges = int(wire["sample_edges"])

    @property
    def num_iterations(self) -> int:
        return self.run.num_iterations

    @property
    def runtime(self) -> float:
        return self.run.total_runtime


class ServicePrediction:
    """Remote counterpart of :class:`~repro.core.predictor.Prediction`.

    Exposes the fields the experiments and examples consume; every numeric
    value is exactly the daemon's (floats cross the wire bit for bit).
    """

    def __init__(self, wire: Dict[str, Any]) -> None:
        self.wire = dict(wire)
        self.algorithm = wire["algorithm"]
        self.dataset = wire["dataset"]
        self.sampling_ratio = float(wire["sampling_ratio"])
        self.predicted_iterations = int(wire["predicted_iterations"])
        self.predicted_iteration_runtimes = [
            float(v) for v in wire["predicted_iteration_runtimes"]
        ]
        self.predicted_superstep_runtime = float(wire["predicted_superstep_runtime"])
        self.vertex_scaling_factor = float(wire["vertex_scaling_factor"])
        self.edge_scaling_factor = float(wire["edge_scaling_factor"])
        self.training_observations = int(wire["training_observations"])
        self.used_history = bool(wire["used_history"])
        self.metadata = dict(wire.get("metadata", {}))
        self.cost_model = _RemoteCostModel(
            float(wire["r_squared"]), wire["selected_features"], wire["cost_model"]
        )
        self.config_hash = wire["config_hash"]
        self.cache = wire.get("cache", "miss")

    def summary(self) -> Dict[str, Any]:
        """Compact summary mirroring :meth:`Prediction.summary`."""
        return {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "sampling_ratio": self.sampling_ratio,
            "predicted_iterations": self.predicted_iterations,
            "predicted_superstep_runtime_s": round(self.predicted_superstep_runtime, 2),
            "cost_model_r2": round(self.cost_model.r_squared, 4),
            "selected_features": self.cost_model.selected_features,
            "used_history": self.used_history,
            "cache": self.cache,
        }


def _config_to_wire(algorithm, config) -> Optional[Dict[str, Any]]:
    """Serialise a live config object into the wire config spec."""
    if config is None:
        return None
    return {
        "values": algorithm.config_dict(config),
        # A populated ranks dict cannot cross the wire (it is derived data);
        # the daemon re-derives it from its own PageRank run instead.
        "needs_ranks": bool(getattr(config, "ranks", None)),
    }


class ServicePredictor:
    """Drop-in for :class:`~repro.core.predictor.Predictor` over the wire.

    ``predict`` takes the same arguments; the graph parameter only supplies
    the dataset name (the daemon loads its own copy -- requests carry names,
    not data).
    """

    def __init__(
        self,
        client: PredictionClient,
        algorithm,
        sampler_name: str = "BRJ",
        history_datasets: Sequence[str] = (),
        training_ratios: Optional[Sequence[float]] = None,
        feature_level: str = "critical",
        budget: Optional[int] = None,
        cluster: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.client = client
        self.algorithm = algorithm
        self.sampler_name = sampler_name
        self.history_datasets = tuple(history_datasets)
        self.training_ratios = (
            tuple(training_ratios) if training_ratios is not None else None
        )
        self.feature_level = feature_level
        self.budget = budget
        self.cluster = dict(cluster or {})

    def _request(self, dataset: str, config, sampling_ratio: float) -> PredictRequest:
        return PredictRequest(
            dataset=dataset,
            algorithm=self.algorithm.name,
            sampling_ratio=float(sampling_ratio),
            training_ratios=self.training_ratios,
            config=_config_to_wire(self.algorithm, config),
            sampler=self.sampler_name,
            history=self.history_datasets,
            feature_level=self.feature_level,
            budget=self.budget,
            cluster=self.cluster,
        )

    def predict(
        self,
        graph,
        config=None,
        sampling_ratio: float = 0.1,
        dataset_name: Optional[str] = None,
    ) -> ServicePrediction:
        """Predict via the daemon; mirrors :meth:`Predictor.predict`."""
        dataset = dataset_name or getattr(graph, "name", None)
        if not dataset:
            raise ValueError(
                "service-backed prediction needs a dataset name "
                "(pass dataset_name= or a named graph)"
            )
        request = self._request(dataset, config, sampling_ratio)
        return ServicePrediction(self.client.predict(request))

    def predict_iterations(
        self, graph, config=None, sampling_ratio: float = 0.1
    ) -> int:
        """Iteration count of the prediction-ratio sample run (remote)."""
        dataset = getattr(graph, "name", None)
        if not dataset:
            raise ValueError("service-backed prediction needs a named graph")
        request = self._request(dataset, config, sampling_ratio)
        return int(self.client.sample_run(request)["num_iterations"])


class ServiceSampleRunner:
    """Drop-in for :class:`~repro.core.sample_run.SampleRunner` over the wire."""

    def __init__(
        self,
        client: PredictionClient,
        algorithm,
        sampler_name: str = "BRJ",
        budget: Optional[int] = None,
        cluster: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.client = client
        self.algorithm = algorithm
        self.sampler_name = sampler_name
        self.budget = budget
        self.cluster = dict(cluster or {})

    def run(self, graph, config, sampling_ratio: float) -> ServiceSampleProfile:
        """Execute one sample run via the daemon; mirrors ``SampleRunner.run``."""
        dataset = getattr(graph, "name", None)
        if not dataset:
            raise ValueError("service-backed sample runs need a named graph")
        request = PredictRequest(
            dataset=dataset,
            algorithm=self.algorithm.name,
            sampling_ratio=float(sampling_ratio),
            config=_config_to_wire(self.algorithm, config),
            sampler=self.sampler_name,
            budget=self.budget,
            cluster=self.cluster,
        )
        return ServiceSampleProfile(self.client.sample_run(request))

    def run_many(
        self, graph, config, sampling_ratios
    ) -> List[ServiceSampleProfile]:
        """Sample runs at several ratios (training sweeps)."""
        return [self.run(graph, config, ratio) for ratio in sampling_ratios]
