"""The prediction daemon: PREDIcT as a long-lived service.

Two layers live here:

:class:`PredictionService`
    The synchronous compute-and-cache core.  It owns one or more
    :class:`~repro.experiments.harness.ExperimentContext` instances (one per
    distinct cluster-spec/budget combination, all sharing one process-pool
    map), the prediction/profile caches and the hit/miss counters.  It is
    thread-safe and usable without any socket -- the differential tests and
    the benchmark drive it in-process.

:class:`PredictionDaemon`
    The ``asyncio`` unix-socket server wrapping a service: length-prefixed
    JSON frames (:mod:`repro.service.protocol`), verbs ``ping`` /
    ``predict`` / ``sample_run`` / ``status`` / ``stats`` / ``clear_cache``
    / ``shutdown``.  Predictions execute on a small thread pool so the event
    loop stays responsive to ``status`` while the engine crunches.  SIGTERM
    and SIGINT trigger the same ordered shutdown as the ``shutdown`` verb:
    stop accepting, drain in-flight requests, close the process pools
    (sweeping their ``/dev/shm`` arenas), remove the socket file.

Single-flight
-------------
Concurrent identical requests compute once.  A request that misses the
cache queues on the service's compute lock; when it acquires the lock it
re-checks the cache, and if the answer landed while it waited (a duplicate
got there first) it returns that answer and counts
``service.singleflight.coalesced`` instead of re-running the sample sweep.
The engine is a serial resource (one process pool), so the lock also keeps
distinct requests from interleaving pool traffic.

Partial overlap
---------------
A request that misses the *prediction* cache still reuses every per-ratio
sample-run profile it shares with earlier requests: the service threads a
profile cache plus a canonical key function into the predictor's
:class:`~repro.core.sample_run.SampleRunner`, so only the missing ratio
cells execute (``service.profile.hit`` / ``.miss`` count the split).
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.algorithms.registry import algorithm_by_name
from repro.bsp.engine import BSPEngine
from repro.cluster.cost_profile import DEFAULT_PROFILE, CostProfile
from repro.cluster.spec import ClusterSpec
from repro.core.history import HistoryStore
from repro.core.predictor import DEFAULT_TRAINING_RATIOS, Prediction
from repro.exceptions import ConfigurationError, PredictionError
from repro.obs.tracer import NULL_TRACER, activate
from repro.service import canonical
from repro.service.cache import CacheBackend, InMemoryLRUCache, cache_by_name
from repro.service.canonical import PredictRequest
from repro.service.protocol import ProtocolError, async_read_frame, async_write_frame

__all__ = [
    "PredictionDaemon",
    "PredictionService",
    "prediction_to_wire",
    "DEFAULT_SOCKET",
]

#: Default socket path of the daemon (CLI and examples).
DEFAULT_SOCKET = "./repro-predict.sock"

#: Cluster-spec fields a request may override.
_CLUSTER_FIELDS = (
    "num_nodes",
    "workers_per_node",
    "worker_memory_bytes",
    "network_bandwidth_bytes_per_s",
    "local_bandwidth_bytes_per_s",
)


def prediction_to_wire(prediction: Prediction, config_hash: str) -> Dict[str, Any]:
    """Flatten a :class:`Prediction` into the JSON wire shape.

    Floats serialise with shortest-round-trip ``repr``, so every numeric
    field survives the socket bit for bit -- the differential suite compares
    these dicts against in-process predictions with ``==``.
    """
    model = prediction.cost_model
    return {
        "algorithm": prediction.algorithm,
        "dataset": prediction.dataset,
        "sampling_ratio": float(prediction.sampling_ratio),
        "predicted_iterations": int(prediction.predicted_iterations),
        "predicted_iteration_runtimes": [
            float(value) for value in prediction.predicted_iteration_runtimes
        ],
        "predicted_superstep_runtime": float(prediction.predicted_superstep_runtime),
        "vertex_scaling_factor": float(prediction.vertex_scaling_factor),
        "edge_scaling_factor": float(prediction.edge_scaling_factor),
        "predicted_total_remote_bytes": float(prediction.predicted_total_remote_bytes()),
        "training_observations": int(prediction.training_observations),
        "used_history": bool(prediction.used_history),
        "r_squared": float(model.r_squared),
        "selected_features": list(model.selected_features),
        "cost_model": canonical._jsonable(model.describe()),
        "metadata": canonical._jsonable(prediction.metadata),
        "config_hash": config_hash,
    }


class PredictionService:
    """Compute-and-cache core shared by the daemon and in-process callers.

    Parameters mirror :class:`~repro.experiments.harness.ExperimentContext`
    (the daemon is, deliberately, a long-lived experiment context behind a
    socket): ``dataset_scale`` / ``num_workers`` / ``seed`` pin the stand-in
    datasets and sampler seeds, ``backend``/``processes`` pick the execution
    strategy (excluded from every cache key), ``cluster`` is the *default*
    simulated cluster which requests may override per call.
    """

    def __init__(
        self,
        dataset_scale: float = 1.0,
        num_workers: int = 8,
        seed: int = 42,
        max_supersteps: int = 200,
        partitioner_name: str = "hash",
        backend: str = "inline",
        processes: Optional[int] = None,
        cluster: Optional[ClusterSpec] = None,
        cost_profile: Optional[CostProfile] = None,
        prediction_cache: Optional[CacheBackend] = None,
        profile_cache: Optional[CacheBackend] = None,
        tracer=None,
        history: Optional[HistoryStore] = None,
        csr_cache: Optional[str] = None,
    ) -> None:
        self.dataset_scale = float(dataset_scale)
        self.num_workers = int(num_workers)
        self.seed = int(seed)
        self.max_supersteps = int(max_supersteps)
        self.partitioner_name = partitioner_name
        self.backend = backend
        self.processes = processes
        self.cluster = cluster or ClusterSpec()
        self.cost_profile = cost_profile or DEFAULT_PROFILE
        # ``is None`` checks, never truthiness: backends define ``__len__``,
        # so a freshly opened (empty) sqlite cache is falsy.
        if prediction_cache is None:
            prediction_cache = InMemoryLRUCache(256)
        if profile_cache is None:
            profile_cache = InMemoryLRUCache(512)
        self.prediction_cache = prediction_cache
        self.profile_cache = profile_cache
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.history = history
        self.csr_cache = csr_cache

        # One process-pool map shared by every context's engine: a request
        # that overrides the cluster spec gets its own simulated cluster but
        # reuses the same worker processes (pool sharing; the service owns
        # the map and closes it exactly once, in close()).
        self._shared_pools: Dict[tuple, Any] = {}
        self._contexts: Dict[tuple, Any] = {}
        self._contexts_lock = threading.Lock()
        self._compute_lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._counters_lock = threading.Lock()
        self._started_at = time.time()
        self._closed = False

    # -------------------------------------------------------------- counters
    def _count(self, name: str, value: int = 1) -> None:
        with self._counters_lock:
            self._counters[name] = self._counters.get(name, 0) + value
        self.tracer.counter(name, value)

    def counters(self) -> Dict[str, int]:
        """Snapshot of the service counters."""
        with self._counters_lock:
            return dict(self._counters)

    # ----------------------------------------------------------- normalising
    def _normalise(self, request: PredictRequest) -> PredictRequest:
        """Resolve every defaultable field so equivalent spellings hash equal.

        Aliases become canonical algorithm names, a missing config becomes
        the algorithm's default scalar dict, a missing budget becomes the
        service default, cluster overrides become a full field dict -- after
        this, ``budget=None`` and ``budget=<the default>`` are the same
        request, and so on.
        """
        algorithm = algorithm_by_name(request.algorithm)
        config = request.config
        if config is None:
            config = {"values": {}, "needs_ranks": False}
        values = dict(config.get("values") or {})
        needs_ranks = bool(config.get("needs_ranks", False))
        unknown = set(config) - {"values", "needs_ranks"}
        if unknown:
            raise ConfigurationError(
                f"unknown config key(s): {', '.join(sorted(unknown))}"
            )
        defaults = algorithm.config_dict(algorithm.default_config())
        bad = set(values) - set(defaults)
        if bad:
            raise ConfigurationError(
                f"unknown {algorithm.name} config field(s): {', '.join(sorted(bad))}"
            )
        full_values = {**defaults, **values}
        cluster_overrides = dict(request.cluster)
        bad = set(cluster_overrides) - set(_CLUSTER_FIELDS)
        if bad:
            raise ConfigurationError(
                f"unknown cluster field(s): {', '.join(sorted(bad))}"
            )
        cluster = dataclasses.replace(self.cluster, **cluster_overrides)
        return dataclasses.replace(
            request,
            algorithm=algorithm.name,
            config={"values": full_values, "needs_ranks": needs_ranks},
            training_ratios=(
                request.training_ratios
                if request.training_ratios is not None
                else tuple(DEFAULT_TRAINING_RATIOS)
            ),
            history=tuple(sorted(request.history)),
            budget=int(request.budget) if request.budget is not None else self.max_supersteps,
            cluster={f: getattr(cluster, f) for f in _CLUSTER_FIELDS},
        )

    def canonical_context(self) -> Dict[str, Any]:
        """Context-level canonical fields shared by every cache key.

        Excludes execution mechanics (backend, processes, kernel tier,
        threads, tracing) -- the checkpoint-fingerprint discipline; see
        :mod:`repro.service.canonical`.
        """
        return {
            "dataset_scale": self.dataset_scale,
            "seed": self.seed,
            "num_workers": self.num_workers,
            "partitioner": self.partitioner_name,
            "transform": "default",
            "cost_profile": repr(self.cost_profile),
        }

    # --------------------------------------------------------------- contexts
    def _context_for(self, request: PredictRequest):
        """The experiment context serving ``request`` (cluster + budget)."""
        from repro.experiments.harness import ExperimentContext

        key = (tuple(sorted(request.cluster.items())), request.budget)
        with self._contexts_lock:
            ctx = self._contexts.get(key)
            if ctx is None:
                ctx = ExperimentContext(
                    cluster=ClusterSpec(**request.cluster),
                    cost_profile=self.cost_profile,
                    dataset_scale=self.dataset_scale,
                    num_workers=self.num_workers,
                    seed=self.seed,
                    max_supersteps=request.budget,
                    partitioner_name=self.partitioner_name,
                    backend=self.backend,
                    processes=self.processes,
                    tracer=self.tracer if self.tracer.enabled else None,
                    csr_cache=self.csr_cache,
                    shared_pools=self._shared_pools,
                )
                self._contexts[key] = ctx
            return ctx

    # ------------------------------------------------------------------ verbs
    def predict(self, request: PredictRequest) -> Dict[str, Any]:
        """Serve one prediction, from cache when warm (wire-shaped dict)."""
        self._count("service.requests")
        request = self._normalise(request)
        key = canonical.prediction_key(request, self.canonical_context())
        cached = self.prediction_cache.get(key)
        if cached is not None:
            self._count("service.cache.hit")
            return {**cached, "cache": "hit"}
        self._count("service.cache.miss")
        with self._compute_lock:
            # Single-flight re-check: a concurrent duplicate may have
            # computed the answer while this request waited for the lock.
            cached = self.prediction_cache.get(key)
            if cached is not None:
                self._count("service.singleflight.coalesced")
                return {**cached, "cache": "coalesced"}
            with self.tracer.span("service.predict.compute") as span:
                if self.tracer.enabled:
                    span.set("key", key)
                    span.set("algorithm", request.algorithm)
                    span.set("dataset", request.dataset)
                result = self._compute_prediction(request, key)
            self._count("service.predict.computed")
            self.prediction_cache.put(key, result)
        return {**result, "cache": "miss"}

    def sample_run(self, request: PredictRequest) -> Dict[str, Any]:
        """Serve one sample-run profile summary (the Figure 4 verb)."""
        self._count("service.requests")
        request = self._normalise(request)
        key = canonical.sample_key(request, self.canonical_context())
        cached = self.prediction_cache.get(key)
        if cached is not None:
            self._count("service.cache.hit")
            return {**cached, "cache": "hit"}
        self._count("service.cache.miss")
        with self._compute_lock:
            cached = self.prediction_cache.get(key)
            if cached is not None:
                self._count("service.singleflight.coalesced")
                return {**cached, "cache": "coalesced"}
            with self.tracer.span("service.sample_run.compute"):
                result = self._compute_sample_run(request, key)
            self._count("service.predict.computed")
            self.prediction_cache.put(key, result)
        return {**result, "cache": "miss"}

    # ---------------------------------------------------------------- compute
    def _resolve_config(self, ctx, request: PredictRequest, algorithm):
        """Build the algorithm config object a normalised request describes."""
        spec = request.config or {"values": {}, "needs_ranks": False}
        values = dict(spec.get("values") or {})
        config_cls = type(algorithm.default_config())
        names = {f.name for f in dataclasses.fields(config_cls)}
        config = config_cls(**{k: v for k, v in values.items() if k in names})
        if spec.get("needs_ranks"):
            from repro.algorithms.topk_ranking import config_with_ranks

            ranks = ctx.pagerank_output(request.dataset)
            config = config_with_ranks(config, ranks)
        return config

    def _profile_cache_binding(
        self, request: PredictRequest
    ) -> Tuple[CacheBackend, Callable]:
        """(cache, key_fn) pair threaded into the sample runner."""
        context_params = self.canonical_context()

        def key_fn(graph, config, ratio: float) -> str:
            return canonical.profile_key(request, context_params, ratio)

        return self.profile_cache, key_fn

    def _compute_prediction(self, request: PredictRequest, key: str) -> Dict[str, Any]:
        ctx = self._context_for(request)
        with activate(self.tracer):
            graph = ctx.load(request.dataset)
            algorithm = algorithm_by_name(request.algorithm)
            config = self._resolve_config(ctx, request, algorithm)
            history = None
            if request.history:
                history = self._build_history(ctx, request)
            elif self.history is not None:
                history = self.history
            profile_cache, key_fn = self._profile_cache_binding(request)
            predictor = ctx.predictor(
                algorithm,
                sampler_name=request.sampler,
                history=history,
                training_ratios=request.training_ratios,
                profile_cache=profile_cache,
                profile_key=key_fn,
            )
            predictor.feature_level = request.feature_level
            prediction = predictor.predict(
                graph,
                config,
                sampling_ratio=request.sampling_ratio,
                dataset_name=request.dataset,
            )
        return prediction_to_wire(prediction, key)

    def _compute_sample_run(self, request: PredictRequest, key: str) -> Dict[str, Any]:
        ctx = self._context_for(request)
        with activate(self.tracer):
            graph = ctx.load(request.dataset)
            algorithm = algorithm_by_name(request.algorithm)
            config = self._resolve_config(ctx, request, algorithm)
            profile_cache, key_fn = self._profile_cache_binding(request)
            runner = ctx.sample_runner(
                algorithm,
                sampler_name=request.sampler,
                profile_cache=profile_cache,
                profile_key=key_fn,
            )
            profile = runner.run(graph, config, request.sampling_ratio)
        run = profile.run
        return {
            "algorithm": profile.algorithm,
            "dataset": request.dataset,
            "sampling_ratio": float(profile.sampling_ratio),
            "num_iterations": int(profile.num_iterations),
            "convergence_history": [float(v) for v in run.convergence_history],
            "superstep_runtime": float(run.superstep_runtime),
            "total_runtime": float(run.total_runtime),
            "sample_vertices": int(profile.sample.graph.num_vertices),
            "sample_edges": int(profile.sample.graph.num_edges),
            "vertex_scaling_factor": float(profile.factors.vertex_factor),
            "edge_scaling_factor": float(profile.factors.edge_factor),
            "config_hash": key,
        }

    def _build_history(self, ctx, request: PredictRequest) -> HistoryStore:
        """Actual runs of the named datasets, server-side (Figures 7b/8b)."""
        from repro.experiments.harness import build_history

        algorithm = algorithm_by_name(request.algorithm)

        def factory():
            return algorithm_by_name(request.algorithm)

        def build_config(context, dataset, _graph):
            per_dataset = dataclasses.replace(request, dataset=dataset)
            return self._resolve_config(context, per_dataset, algorithm)

        return build_history(ctx, factory, build_config, list(request.history))

    # ------------------------------------------------------------ status/stats
    def status(self) -> Dict[str, Any]:
        """Liveness and configuration summary (the ``status`` verb)."""
        with self._contexts_lock:
            contexts = [
                {"cluster": dict(key[0]), "budget": key[1]}
                for key in self._contexts
            ]
        return {
            "uptime_s": time.time() - self._started_at,
            "pid": os.getpid(),
            "dataset_scale": self.dataset_scale,
            "num_workers": self.num_workers,
            "seed": self.seed,
            "max_supersteps": self.max_supersteps,
            "backend": self.backend,
            "processes": self.processes,
            "partitioner": self.partitioner_name,
            "contexts": contexts,
            "pools": BSPEngine.describe_pools(self._shared_pools),
            "prediction_cache_entries": len(self.prediction_cache),
            "profile_cache_entries": len(self.profile_cache),
        }

    def stats(self) -> Dict[str, Any]:
        """Counters plus per-cache accounting (the ``stats`` verb)."""
        return {
            "counters": self.counters(),
            "caches": {
                "prediction": self.prediction_cache.stats(),
                "profile": self.profile_cache.stats(),
            },
        }

    def clear_caches(self) -> Dict[str, int]:
        """Drop every cached prediction and profile (``clear_cache`` verb)."""
        dropped = {
            "predictions": len(self.prediction_cache),
            "profiles": len(self.profile_cache),
        }
        self.prediction_cache.clear()
        self.profile_cache.clear()
        return dropped

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Ordered teardown: contexts, then the shared pools, then caches."""
        if self._closed:
            return
        self._closed = True
        with self._contexts_lock:
            contexts = list(self._contexts.values())
            self._contexts.clear()
        for ctx in contexts:
            ctx.close()  # borrowed pools: a no-op for the shared map
        BSPEngine.release_pools(self._shared_pools)
        # Fold the backends' own accounting into the trace so the shutdown
        # summary shows hit/miss totals next to the service counters.
        for label, cache in (
            ("prediction", self.prediction_cache),
            ("profile", self.profile_cache),
        ):
            numeric = {
                name: value
                for name, value in cache.stats().items()
                if isinstance(value, (int, float)) and not isinstance(value, bool)
            }
            self.tracer.merge_counters(numeric, prefix=f"service.cache.{label}.")
        self.prediction_cache.close()
        self.profile_cache.close()

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class PredictionDaemon:
    """Asyncio unix-socket front end of a :class:`PredictionService`."""

    def __init__(
        self,
        service: PredictionService,
        socket_path: str = DEFAULT_SOCKET,
        max_workers: int = 2,
    ) -> None:
        self.service = service
        self.socket_path = Path(socket_path)
        self.max_workers = int(max_workers)
        self._executor: Optional[ThreadPoolExecutor] = None
        self._shutdown_event: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._in_flight = 0
        self._writers: set = set()
        self._client_tasks: set = set()
        self.requests_served = 0

    # ----------------------------------------------------------------- serve
    def serve_forever(self) -> None:
        """Run the daemon until ``shutdown`` / SIGTERM / SIGINT."""
        asyncio.run(self.serve())

    async def serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-predict"
        )
        if self.socket_path.exists():
            # A stale socket file from a crashed daemon blocks bind();
            # nothing else legitimately occupies the configured path.
            self.socket_path.unlink()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        server = await asyncio.start_unix_server(
            self._handle_client, path=str(self.socket_path)
        )
        self._install_signal_handlers()
        try:
            await self._shutdown_event.wait()
            # Ordered drain: stop accepting, let in-flight requests finish,
            # then release the engine (pools sweep their /dev/shm arenas).
            server.close()
            await server.wait_closed()
            while self._in_flight:
                await asyncio.sleep(0.01)
            # Closing the transports feeds EOF to every handler's read loop,
            # so the client tasks exit normally; await them (instead of
            # letting asyncio.run cancel them mid-``wait_closed``).
            for writer in list(self._writers):
                writer.close()
            if self._client_tasks:
                await asyncio.wait(self._client_tasks, timeout=5.0)
            for task in list(self._client_tasks):
                task.cancel()
        finally:
            self._executor.shutdown(wait=True)
            self.service.close()
            try:
                self.socket_path.unlink()
            except FileNotFoundError:
                pass

    def _install_signal_handlers(self) -> None:
        import signal

        assert self._loop is not None
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self.request_shutdown)
            except (NotImplementedError, RuntimeError, ValueError):
                # Not the main thread (in-process tests) -- the shutdown
                # verb and request_shutdown() remain available.
                break

    def request_shutdown(self) -> None:
        """Trigger the ordered shutdown (thread-safe and signal-safe)."""
        if self._loop is None or self._shutdown_event is None:
            return
        self._loop.call_soon_threadsafe(self._shutdown_event.set)

    # --------------------------------------------------------------- clients
    async def _handle_client(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
        self._writers.add(writer)
        try:
            while True:
                try:
                    frame = await async_read_frame(reader)
                except ProtocolError as exc:
                    await async_write_frame(
                        writer,
                        {"ok": False, "error": str(exc), "error_kind": "ProtocolError"},
                    )
                    break
                if frame is None:
                    break
                response = await self._dispatch(frame)
                try:
                    await async_write_frame(writer, response)
                except ConnectionError:
                    break
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._client_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _dispatch(self, frame: Any) -> Dict[str, Any]:
        if not isinstance(frame, dict) or "verb" not in frame:
            return {
                "ok": False,
                "error": "frame must be an object with a 'verb'",
                "error_kind": "ProtocolError",
            }
        verb = frame["verb"]
        params = frame.get("params") or {}
        self.requests_served += 1
        try:
            if verb == "ping":
                return {"ok": True, "result": "pong"}
            if verb == "predict":
                return {"ok": True, "result": await self._offload(
                    self.service.predict, PredictRequest.from_wire(params)
                )}
            if verb == "sample_run":
                return {"ok": True, "result": await self._offload(
                    self.service.sample_run, PredictRequest.from_wire(params)
                )}
            if verb == "status":
                status = self.service.status()
                status.update(
                    socket=str(self.socket_path),
                    in_flight=self._in_flight,
                    requests_served=self.requests_served,
                )
                return {"ok": True, "result": status}
            if verb == "stats":
                return {"ok": True, "result": self.service.stats()}
            if verb == "clear_cache":
                return {"ok": True, "result": self.service.clear_caches()}
            if verb == "shutdown":
                self.request_shutdown()
                return {"ok": True, "result": "shutting down"}
            return {
                "ok": False,
                "error": f"unknown verb {verb!r}",
                "error_kind": "ProtocolError",
            }
        except (ValueError, ConfigurationError, PredictionError) as exc:
            return {"ok": False, "error": str(exc), "error_kind": type(exc).__name__}
        except Exception as exc:  # unexpected: report, keep serving
            return {"ok": False, "error": str(exc), "error_kind": type(exc).__name__}

    async def _offload(self, fn, request: PredictRequest) -> Any:
        """Run a compute verb on the executor, tracking in-flight count."""
        assert self._loop is not None and self._executor is not None
        self._in_flight += 1
        try:
            return await self._loop.run_in_executor(self._executor, fn, request)
        finally:
            self._in_flight -= 1
