"""Pluggable result caches for the prediction service.

Two granularities of value land here (see :mod:`repro.service.canonical`):
whole wire-format predictions (JSON-safe dicts) and per-ratio sample-run
profiles (arbitrary picklable objects).  The backends therefore speak
*Python objects*; the sqlite backend pickles transparently.

Backends
--------
``InMemoryLRUCache``
    Bounded ``OrderedDict`` with least-recently-used eviction.  The default:
    zero configuration, per-daemon lifetime.
``SqliteCache``
    One-file persistent cache (stdlib ``sqlite3``): a daemon restart keeps
    its warm predictions.  Keys are text, values pickled blobs, upserts
    atomic (``INSERT OR REPLACE`` inside sqlite's own journal).

Both are thread-safe: the daemon executes predictions on a thread pool, and
the in-process differential tests hammer the caches from several threads.

``cache_by_name`` parses the CLI/server spec strings::

    memory            in-memory LRU, default capacity
    memory:512        in-memory LRU, capacity 512
    sqlite:/path.db   sqlite backend at /path.db
    none              disabled (NullCache)
"""

from __future__ import annotations

import pickle
import sqlite3
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.exceptions import ConfigurationError

__all__ = [
    "CacheBackend",
    "InMemoryLRUCache",
    "NullCache",
    "SqliteCache",
    "cache_by_name",
]

#: Sentinel distinguishing "missing" from a cached ``None`` (never stored,
#: but the API should not be a trap).
_MISS = object()


class CacheBackend:
    """Interface shared by every cache backend.

    Subclasses implement ``_get``/``_put``/``_delete``/``_keys``/``_len``;
    the base class provides locking and hit/miss accounting so the service's
    ``stats`` verb reports uniformly across backends.
    """

    #: Human-readable backend kind (``status`` verb).
    kind = "abstract"

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0

    # ------------------------------------------------------------------- API
    def get(self, key: str, default: Any = None) -> Any:
        """The cached value for ``key``, or ``default``."""
        with self._lock:
            value = self._get(key)
            if value is _MISS:
                self.misses += 1
                return default
            self.hits += 1
            return value

    def contains(self, key: str) -> bool:
        """True when ``key`` is cached (does not count as a hit/miss)."""
        with self._lock:
            return self._get(key) is not _MISS

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (last write wins)."""
        with self._lock:
            self.puts += 1
            self._put(key, value)

    def delete(self, key: str) -> None:
        """Drop ``key`` if present."""
        with self._lock:
            self._delete(key)

    def clear(self) -> None:
        """Drop every entry (accounting is kept)."""
        with self._lock:
            for key in list(self._keys()):
                self._delete(key)

    def keys(self) -> List[str]:
        """All cached keys (snapshot)."""
        with self._lock:
            return list(self._keys())

    def stats(self) -> Dict[str, Any]:
        """Hit/miss/size accounting for the ``stats`` verb."""
        with self._lock:
            return {
                "kind": self.kind,
                "entries": self._len(),
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "evictions": self.evictions,
            }

    def close(self) -> None:
        """Release backend resources (connections); idempotent."""

    def __len__(self) -> int:
        with self._lock:
            return self._len()

    # ------------------------------------------------------------- backend
    def _get(self, key: str) -> Any:
        raise NotImplementedError

    def _put(self, key: str, value: Any) -> None:
        raise NotImplementedError

    def _delete(self, key: str) -> None:
        raise NotImplementedError

    def _keys(self) -> Iterator[str]:
        raise NotImplementedError

    def _len(self) -> int:
        raise NotImplementedError


class NullCache(CacheBackend):
    """Caching disabled: every get misses, every put is dropped."""

    kind = "none"

    def _get(self, key: str) -> Any:
        return _MISS

    def _put(self, key: str, value: Any) -> None:
        return None

    def _delete(self, key: str) -> None:
        return None

    def _keys(self) -> Iterator[str]:
        return iter(())

    def _len(self) -> int:
        return 0


class InMemoryLRUCache(CacheBackend):
    """Bounded in-memory cache with least-recently-used eviction."""

    kind = "memory"

    def __init__(self, capacity: int = 256) -> None:
        super().__init__()
        if capacity <= 0:
            raise ConfigurationError("cache capacity must be positive")
        self.capacity = int(capacity)
        self._data: "OrderedDict[str, Any]" = OrderedDict()

    def _get(self, key: str) -> Any:
        if key not in self._data:
            return _MISS
        self._data.move_to_end(key)
        return self._data[key]

    def _put(self, key: str, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def _delete(self, key: str) -> None:
        self._data.pop(key, None)

    def _keys(self) -> Iterator[str]:
        return iter(list(self._data))

    def _len(self) -> int:
        return len(self._data)


class SqliteCache(CacheBackend):
    """Persistent cache over one sqlite file; values are pickled blobs.

    A single connection (``check_same_thread=False``) is shared under the
    base-class lock -- the daemon's executor threads serialise through it.
    Writes commit immediately, so a SIGKILLed daemon loses at most the
    in-flight upsert (sqlite's journal keeps the file consistent).
    """

    kind = "sqlite"

    def __init__(self, path: str, table: str = "repro_cache") -> None:
        super().__init__()
        if not table.replace("_", "").isalnum():
            raise ConfigurationError(f"invalid cache table name {table!r}")
        self.path = str(path)
        self.table = table
        self._conn: Optional[sqlite3.Connection] = sqlite3.connect(
            self.path, check_same_thread=False
        )
        self._conn.execute(
            f"CREATE TABLE IF NOT EXISTS {self.table} ("
            "key TEXT PRIMARY KEY, value BLOB NOT NULL, created REAL NOT NULL)"
        )
        self._conn.commit()

    # ------------------------------------------------------------- backend
    def _cursor(self) -> sqlite3.Connection:
        if self._conn is None:
            raise ConfigurationError(f"sqlite cache {self.path!r} is closed")
        return self._conn

    def _get(self, key: str) -> Any:
        row = self._cursor().execute(
            f"SELECT value FROM {self.table} WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return _MISS
        return pickle.loads(row[0])

    def _put(self, key: str, value: Any) -> None:
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        conn = self._cursor()
        conn.execute(
            f"INSERT OR REPLACE INTO {self.table} (key, value, created) VALUES (?, ?, ?)",
            (key, sqlite3.Binary(blob), time.time()),
        )
        conn.commit()

    def _delete(self, key: str) -> None:
        conn = self._cursor()
        conn.execute(f"DELETE FROM {self.table} WHERE key = ?", (key,))
        conn.commit()

    def _keys(self) -> Iterator[str]:
        rows = self._cursor().execute(f"SELECT key FROM {self.table}").fetchall()
        return iter([row[0] for row in rows])

    def _len(self) -> int:
        row = self._cursor().execute(f"SELECT COUNT(*) FROM {self.table}").fetchone()
        return int(row[0])

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None


def cache_by_name(spec: Optional[str], default_capacity: int = 256) -> CacheBackend:
    """Build a cache backend from a CLI spec string (see module docstring)."""
    if spec is None or spec == "" or spec == "memory":
        return InMemoryLRUCache(default_capacity)
    if spec == "none":
        return NullCache()
    name, _, arg = spec.partition(":")
    if name == "memory":
        try:
            capacity = int(arg)
        except ValueError:
            raise ConfigurationError(
                f"invalid memory cache capacity {arg!r} (expected an integer)"
            ) from None
        return InMemoryLRUCache(capacity)
    if name == "sqlite":
        if not arg:
            raise ConfigurationError("sqlite cache spec needs a path: sqlite:/path.db")
        return SqliteCache(arg)
    raise ConfigurationError(
        f"unknown cache backend {spec!r}; expected memory[:N], sqlite:PATH or none"
    )
