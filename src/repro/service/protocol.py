"""Length-prefixed JSON framing shared by the daemon and the client.

One frame = a 4-byte big-endian unsigned length followed by that many bytes
of UTF-8 JSON.  Requests are objects ``{"verb": str, "params": dict}``;
responses are ``{"ok": true, "result": ...}`` or ``{"ok": false, "error":
str, "error_kind": str}``.  JSON keeps the wire inspectable (``socat`` +
``python -m json.tool`` debugging) and -- because Python serialises floats
with shortest-round-trip ``repr`` -- *exact*: a float survives the wire bit
for bit, which the service's bit-identity contract depends on.

Both a blocking (``socket``) and an ``asyncio`` flavour of the read/write
pair live here so the synchronous client and the async daemon cannot drift.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Optional

from repro.exceptions import BSPError

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "encode_frame",
    "read_frame",
    "write_frame",
    "async_read_frame",
    "async_write_frame",
]

#: Upper bound on one frame; a length prefix beyond this indicates a corrupt
#: or foreign stream, not a legitimate payload.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(BSPError):
    """Raised on malformed frames (bad length, truncated body, bad JSON)."""


def encode_frame(payload: Any) -> bytes:
    """Serialise ``payload`` into one length-prefixed JSON frame."""
    try:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"payload is not JSON-serialisable: {exc}") from exc
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(body)) + body


def _decode_body(body: bytes) -> Any:
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed JSON frame: {exc}") from exc


def _checked_length(prefix: bytes) -> int:
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    return length


# ------------------------------------------------------------ blocking flavour
def _recv_exactly(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes, or None on a clean EOF at a frame edge."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> Any:
    """Read one frame from a blocking socket; None on clean EOF."""
    prefix = _recv_exactly(sock, _LENGTH.size)
    if prefix is None:
        return None
    body = _recv_exactly(sock, _checked_length(prefix))
    if body is None:
        raise ProtocolError("connection closed between length and body")
    return _decode_body(body)


def write_frame(sock: socket.socket, payload: Any) -> None:
    """Write one frame to a blocking socket."""
    sock.sendall(encode_frame(payload))


# ------------------------------------------------------------- asyncio flavour
async def async_read_frame(reader) -> Any:
    """Read one frame from an ``asyncio.StreamReader``; None on clean EOF."""
    import asyncio

    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-length") from exc
    try:
        body = await reader.readexactly(_checked_length(prefix))
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    return _decode_body(body)


async def async_write_frame(writer, payload: Any) -> None:
    """Write one frame to an ``asyncio.StreamWriter`` and drain."""
    writer.write(encode_frame(payload))
    await writer.drain()
