"""Prediction-as-a-service: the long-lived predictor daemon and its client.

See ``docs/SERVICE.md``.  Submodules:

- :mod:`repro.service.canonical` -- request vocabulary and config hashing
- :mod:`repro.service.cache` -- pluggable result caches (LRU / sqlite)
- :mod:`repro.service.protocol` -- length-prefixed JSON framing
- :mod:`repro.service.daemon` -- :class:`PredictionService` + asyncio daemon
- :mod:`repro.service.client` -- synchronous client + harness adapters
- :mod:`repro.service.cli` -- the ``repro-predict`` command

Heavyweight submodules (daemon pulls in the whole experiment stack) load
lazily: ``from repro.service import PredictionClient`` does not import the
engine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

__all__ = [
    "PredictRequest",
    "PredictionClient",
    "PredictionDaemon",
    "PredictionService",
    "RemoteError",
    "ServicePredictor",
    "ServiceSampleRunner",
    "cache_by_name",
]

_LAZY = {
    "PredictRequest": ("repro.service.canonical", "PredictRequest"),
    "cache_by_name": ("repro.service.cache", "cache_by_name"),
    "PredictionClient": ("repro.service.client", "PredictionClient"),
    "RemoteError": ("repro.service.client", "RemoteError"),
    "ServicePredictor": ("repro.service.client", "ServicePredictor"),
    "ServiceSampleRunner": ("repro.service.client", "ServiceSampleRunner"),
    "PredictionDaemon": ("repro.service.daemon", "PredictionDaemon"),
    "PredictionService": ("repro.service.daemon", "PredictionService"),
}

if TYPE_CHECKING:  # pragma: no cover - typing aid only
    from repro.service.cache import cache_by_name
    from repro.service.canonical import PredictRequest
    from repro.service.client import (
        PredictionClient,
        RemoteError,
        ServicePredictor,
        ServiceSampleRunner,
    )
    from repro.service.daemon import PredictionDaemon, PredictionService


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
