"""Deterministic random number generator helpers.

Every stochastic component of the library (graph generators, sampling
techniques, the cluster noise model) accepts either an integer seed or a
:class:`numpy.random.Generator`.  Centralising the coercion here keeps the
experiments reproducible: the same seed always produces the same graph, the
same sample and therefore the same prediction errors.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be ``None`` (fresh entropy), an integer, or an existing
    generator (returned unchanged so that callers can thread a single stream
    through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    The child is seeded from the parent's bit generator state combined with
    ``stream`` so that components (e.g. each worker of the BSP engine) get
    decorrelated but reproducible randomness.
    """
    seed = int(rng.integers(0, 2**63 - 1)) ^ (stream * 0x9E3779B97F4A7C15 & (2**63 - 1))
    return np.random.default_rng(seed)


def derive_seed(seed: Optional[int], salt: str) -> int:
    """Derive a deterministic integer seed from ``seed`` and a string salt."""
    base = 0 if seed is None else int(seed)
    acc = base & 0xFFFFFFFF
    for ch in salt:
        acc = (acc * 1000003 + ord(ch)) & 0xFFFFFFFF
    return acc
