"""Canonical hashing primitives shared by the predictor and the service.

These helpers live below :mod:`repro.core` and :mod:`repro.service` so both
layers can key caches the same way without importing each other: the
predictor's in-process sample-run memoisation and the service's cross-request
cache must agree that *identical configuration* means *identical key*.

Every digest here is ``sha256`` over canonically serialised bytes -- never
the built-in ``hash()``, which is salted per interpreter (PYTHONHASHSEED)
and would silently defeat any persistent cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict

__all__ = ["canonical_hash", "config_token", "graph_token", "jsonable"]

#: Attribute memoising a frozen graph's content digest (CSR arrays are
#: immutable, so the digest is computed at most once per graph object).
_DIGEST_ATTR = "_repro_content_digest"


def canonical_hash(payload: Dict[str, Any], length: int = 16) -> str:
    """sha256 hex digest of ``payload`` serialised canonically.

    ``sort_keys=True`` makes the digest independent of dict insertion order;
    JSON float serialisation (``repr``-based shortest round-trip) makes it
    exact -- two floats hash equal iff they are bit-equal.
    """
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:length]


def graph_token(graph) -> str:
    """A stable identity token for ``graph``.

    Frozen (CSR) graphs are immutable, so the token is a content digest over
    the CSR arrays (memoised on the graph object; ~milliseconds for the
    stand-in datasets, amortised over every sample run on the graph).  For a
    mutable :class:`~repro.graph.digraph.DiGraph` no content token can stay
    valid, so the token falls back to the object identity -- correct for
    cache reuse within one process, never shared across processes (the
    service always freezes its datasets).
    """
    if not getattr(graph, "is_frozen", False):
        return f"obj:{id(graph)}"
    cached = getattr(graph, _DIGEST_ATTR, None)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    digest.update(str(graph.num_vertices).encode())
    digest.update(graph.indptr.tobytes())
    digest.update(graph.targets.tobytes())
    digest.update(graph.weights.tobytes())
    ids = graph.ids
    if not (isinstance(ids, range) and ids == range(graph.num_vertices)):
        digest.update(repr(list(ids)).encode())
    token = "csr:" + digest.hexdigest()[:16]
    try:
        object.__setattr__(graph, _DIGEST_ATTR, token)
    except (AttributeError, TypeError):  # pragma: no cover - exotic graph types
        pass
    return token


def config_token(config) -> str:
    """A content token for an algorithm configuration object.

    Scalar fields participate directly; dict-valued fields (top-k ranking's
    ``ranks``) participate through a digest of their sorted items, so two
    configs with equal scalars but different attached ranks get different
    tokens.  Non-dataclass configs fall back to ``repr``.
    """
    if not dataclasses.is_dataclass(config):
        return "repr:" + canonical_hash({"repr": repr(config)})
    parts: Dict[str, Any] = {}
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        if isinstance(value, dict):
            digest = hashlib.sha256(repr(sorted(value.items())).encode("utf-8"))
            parts[f.name] = "dict:" + digest.hexdigest()[:16]
        elif isinstance(value, (str, int, float, bool)) or value is None:
            parts[f.name] = value
        else:
            parts[f.name] = repr(value)
    return canonical_hash({"type": type(config).__name__, "fields": parts})


def jsonable(value: Any) -> Any:
    """Coerce ``value`` (possibly holding numpy scalars) into JSON-stable form."""
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, int):
        return int(value)
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    return repr(value)
