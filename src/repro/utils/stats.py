"""Statistical helpers used throughout the evaluation.

The paper reports *signed relative errors* (negative = under-prediction,
positive = over-prediction), the coefficient of determination R² of the fitted
cost models, and uses the Kolmogorov-Smirnov D-statistic (following Leskovec &
Faloutsos, KDD 2006) to measure how well a sample preserves a distributional
property of the original graph.  All of those metrics live here.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np


def signed_relative_error(predicted: float, actual: float) -> float:
    """Return ``(predicted - actual) / actual``.

    Negative values are under-predictions, positive values over-predictions,
    matching the sign convention of the paper's figures.  ``actual`` must be
    non-zero; a zero actual with a zero prediction counts as a perfect
    prediction (0.0 error).
    """
    if actual == 0:
        return 0.0 if predicted == 0 else float("inf")
    return (float(predicted) - float(actual)) / float(actual)


def relative_error(predicted: float, actual: float) -> float:
    """Return the absolute relative error ``|predicted - actual| / actual``."""
    return abs(signed_relative_error(predicted, actual))


def mean_absolute_relative_error(
    predicted: Sequence[float], actual: Sequence[float]
) -> float:
    """Mean of absolute relative errors over paired sequences."""
    pred = np.asarray(predicted, dtype=float)
    act = np.asarray(actual, dtype=float)
    if pred.shape != act.shape:
        raise ValueError("predicted and actual must have the same length")
    if pred.size == 0:
        raise ValueError("cannot compute error of empty sequences")
    errors = [relative_error(p, a) for p, a in zip(pred, act)]
    return float(np.mean(errors))


def coefficient_of_determination(
    actual: Sequence[float], predicted: Sequence[float]
) -> float:
    """Return R², the coefficient of determination of ``predicted`` vs ``actual``.

    R² = 1 - SS_res / SS_tot.  When the actual values are constant the total
    sum of squares is zero; we then return 1.0 for a perfect fit and 0.0
    otherwise, which is the conventional degenerate-case handling.
    """
    act = np.asarray(actual, dtype=float)
    pred = np.asarray(predicted, dtype=float)
    if act.shape != pred.shape:
        raise ValueError("actual and predicted must have the same length")
    if act.size == 0:
        raise ValueError("cannot compute R^2 of empty sequences")
    ss_res = float(np.sum((act - pred) ** 2))
    ss_tot = float(np.sum((act - np.mean(act)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def cumulative_distribution(values: Iterable[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, cdf)`` for an empirical distribution."""
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        return arr, arr
    cdf = np.arange(1, arr.size + 1, dtype=float) / arr.size
    return arr, cdf


def d_statistic(sample: Iterable[float], population: Iterable[float]) -> float:
    """Kolmogorov-Smirnov D-statistic between two empirical distributions.

    Used (as in Leskovec & Faloutsos) to score how closely the property
    distribution of a sampled graph matches that of the original graph.
    Smaller is better; 0 means identical empirical CDFs.
    """
    s_vals, s_cdf = cumulative_distribution(sample)
    p_vals, p_cdf = cumulative_distribution(population)
    if s_vals.size == 0 or p_vals.size == 0:
        raise ValueError("d_statistic requires non-empty inputs")
    grid = np.union1d(s_vals, p_vals)
    s_at = np.searchsorted(s_vals, grid, side="right") / s_vals.size
    p_at = np.searchsorted(p_vals, grid, side="right") / p_vals.size
    return float(np.max(np.abs(s_at - p_at)))


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot compute geometric mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def percentile(values: Sequence[float], q: float) -> float:
    """Return the ``q``-th percentile (0-100) of ``values``."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot compute percentile of empty sequence")
    return float(np.percentile(arr, q))
