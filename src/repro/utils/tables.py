"""Plain-text table and series formatting for the benchmark harness.

The benchmarks print the same rows/series the paper's tables and figures
report.  Keeping the formatting in one place makes the bench output uniform
and easy to diff across runs.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
    title: str | None = None,
) -> str:
    """Render one or more named series against a shared x axis.

    This is the textual equivalent of the paper's line plots: one row per x
    value, one column per series.
    """
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        row = [x]
        for name in series:
            values = series[name]
            row.append(values[i] if i < len(values) else "")
        rows.append(row)
    return format_table(headers, rows, title=title)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
