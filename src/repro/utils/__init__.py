"""Small shared utilities: deterministic RNG helpers, statistics, tables."""

from repro.utils.rng import make_rng, spawn_rng
from repro.utils.stats import (
    coefficient_of_determination,
    cumulative_distribution,
    d_statistic,
    geometric_mean,
    mean_absolute_relative_error,
    relative_error,
    signed_relative_error,
)
from repro.utils.tables import format_series, format_table

__all__ = [
    "make_rng",
    "spawn_rng",
    "relative_error",
    "signed_relative_error",
    "mean_absolute_relative_error",
    "coefficient_of_determination",
    "cumulative_distribution",
    "d_statistic",
    "geometric_mean",
    "format_table",
    "format_series",
]
