#!/usr/bin/env python3
"""Markdown link checker for the repo docs (no third-party dependencies).

Scans the given markdown files for inline links and images
(``[text](target)`` / ``![alt](target)``) and reference-style link
definitions (``[ref]: target``) and verifies that

* relative file targets exist on disk (resolved against the linking file),
* ``#fragment`` anchors -- bare or attached to a local markdown file --
  match a heading in the target document (GitHub-style slugs, including
  ATX ``#`` headings, setext underlined headings and the ``-1``/``-2``
  suffixes GitHub appends to duplicated headings),
* external ``http(s)://`` / ``mailto:`` targets are skipped (CI must not
  depend on the network).

Exit status is non-zero when any link is broken, printing one line per
problem.  Used by ``make docs-check`` and the CI docs job::

    python scripts/check_doc_links.py README.md docs/*.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links/images: [text](target) with no nested parentheses.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Reference-style link definitions: [label]: target (optionally "title").
REF_DEF_RE = re.compile(r"^ {0,3}\[([^\]]+)\]:\s*(\S+)")
#: Setext heading underlines: a run of = or - under a paragraph line.
SETEXT_RE = re.compile(r"^ {0,3}(=+|-+)\s*$")
#: Fenced code blocks are excluded from link scanning.
FENCE_RE = re.compile(r"^(```|~~~)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading line (lowercased, hyphenated)."""
    text = heading.strip().strip("#").strip()
    text = re.sub(r"`([^`]*)`", r"\1", text)  # inline code keeps its text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links keep text
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set:
    """All anchor slugs of a markdown document.

    Recognises ATX (``# Title``) and setext (``Title`` over ``====`` or
    ``----``) headings, and mirrors GitHub's handling of duplicates: the
    second ``## Setup`` becomes ``setup-1``, the third ``setup-2``...
    """
    headings = []
    in_fence = False
    previous = ""
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            previous = ""
            continue
        if in_fence:
            continue
        stripped = line.lstrip()
        if stripped.startswith("#"):
            headings.append(github_slug(line))
        elif SETEXT_RE.match(line) and previous.strip() and not previous.lstrip().startswith(("#", "-", "*", ">", "|")):
            # A = / - underline promotes the preceding paragraph line to a
            # heading; the guards exclude thematic breaks after blank lines,
            # list items and table separator rows.
            headings.append(github_slug(previous))
        previous = line
    slugs = set()
    seen = {}
    for slug in headings:
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        slugs.add(slug if count == 0 else f"{slug}-{count}")
    return slugs


def iter_links(path: Path):
    """Yield ``(line_number, target)`` for every checkable link target.

    Covers inline links/images and the targets of reference-style link
    definitions (``[ref]: target``) -- the latter used to be silently
    skipped, so a stale reference target never failed ``docs-check``.
    """
    in_fence = False
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        definition = REF_DEF_RE.match(line)
        if definition:
            yield number, definition.group(2)
            continue
        for match in LINK_RE.finditer(line):
            yield number, match.group(1)


def check_file(path: Path) -> list:
    problems = []
    for line_number, target in iter_links(path):
        if target.startswith(SKIP_PREFIXES):
            continue
        base, _, fragment = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                problems.append(f"{path}:{line_number}: broken link -> {target}")
                continue
        else:
            resolved = path.resolve()
        if fragment and resolved.suffix.lower() in (".md", ".markdown"):
            if fragment not in heading_slugs(resolved):
                problems.append(
                    f"{path}:{line_number}: missing anchor -> {target}"
                )
    return problems


def main(argv) -> int:
    if not argv:
        print("usage: check_doc_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    problems = []
    for name in argv:
        path = Path(name)
        if not path.exists():
            problems.append(f"{name}: file not found")
            continue
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} broken link(s)")
        return 1
    print(f"checked {len(argv)} file(s): all links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
