#!/usr/bin/env python3
"""Summarise a trace file written by ``--trace`` / ``repro.obs`` exporters.

Stdlib-only on purpose (usable on a bare host where the repo's sources are
not importable): reads either exporter format -- Chrome ``trace_event`` JSON
(the default ``--trace`` output) or JSONL -- and prints per-span aggregates
plus the superstep measured-vs-modeled table.

Usage::

    python scripts/trace_summary.py out.json
    python scripts/trace_summary.py out.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

#: (name, duration_s, attrs) -- the common denominator of both formats.
SpanRow = Tuple[str, float, dict]


def load_spans(path: str) -> List[SpanRow]:
    """Parse ``path`` as Chrome trace JSON or JSONL, whichever it is."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        # Chrome trace_event JSON: one object with a traceEvents array.
        # (JSONL also starts with "{", but a multi-line file fails this parse.)
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = None
    if isinstance(payload, dict) and "traceEvents" in payload:
        return [
            (e["name"], e.get("dur", 0.0) / 1e6, e.get("args") or {})
            for e in payload.get("traceEvents", [])
            if e.get("ph") == "X"
        ]
    rows = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if record.get("type") == "span":
            rows.append(
                (record["name"], record.get("duration_s", 0.0),
                 record.get("attrs") or {})
            )
    return rows


def format_table(headers: List[str], rows: List[tuple], title: Optional[str] = None) -> str:
    """Minimal aligned-table renderer (mirrors repro.utils.tables)."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines += [title, "=" * len(title)]
    fmt = lambda cells: "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)).rstrip()
    lines.append(fmt(headers))
    lines.append(fmt(["-" * w for w in widths]))
    lines += [fmt(row) for row in str_rows]
    return "\n".join(lines)


def summarise(spans: List[SpanRow]) -> str:
    """Aggregate report text for one trace."""
    by_name: Dict[str, List[float]] = {}
    for name, duration, _ in spans:
        by_name.setdefault(name, []).append(duration)
    parts = [format_table(
        ["span", "count", "total_s", "mean_s", "max_s"],
        [
            (name, len(d), f"{sum(d):.6f}", f"{sum(d) / len(d):.6f}", f"{max(d):.6f}")
            for name, d in sorted(by_name.items(), key=lambda kv: -sum(kv[1]))
        ],
        title="Span summary",
    )]

    supersteps = sorted(
        ((duration, attrs) for name, duration, attrs in spans
         if name == "superstep" and "superstep" in attrs),
        key=lambda row: row[1]["superstep"],
    )
    if supersteps:
        parts.append(format_table(
            ["superstep", "measured_s", "modeled_s", "active",
             "messages", "remote_bytes", "imbalance"],
            [
                (a["superstep"], f"{duration:.6f}",
                 f"{a.get('modeled_s', 0.0):.6f}", a.get("active_vertices"),
                 a.get("messages_sent"), a.get("remote_message_bytes"),
                 a.get("worker_imbalance"))
                for duration, a in supersteps
            ],
            title="Measured vs modeled supersteps",
        ))
        measured = sum(duration for duration, _ in supersteps)
        modeled = sum(a.get("modeled_s", 0.0) for _, a in supersteps)
        parts.append(
            f"superstep totals: measured {measured:.6f}s, modeled {modeled:.3f}s "
            f"(simulated cluster time; see docs/OBSERVABILITY.md)"
        )
    return "\n\n".join(parts)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace file (--trace output: Chrome JSON or JSONL)")
    args = parser.parse_args(argv)
    spans = load_spans(args.trace)
    if not spans:
        print(f"{args.trace}: no spans found", file=sys.stderr)
        return 1
    print(summarise(spans))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
