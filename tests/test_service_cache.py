"""Canonical request hashing and the pluggable service caches.

The service's "identical question, identical answer, paid for once" promise
rests on two properties these tests pin:

* **Key stability.**  Cache keys are sha256 over canonically serialised
  payloads -- independent of dict insertion order, of the interpreter's
  ``PYTHONHASHSEED``, and of process restarts (a sqlite cache written by one
  daemon must be warm for the next).
* **Key scope.**  ``prediction_key`` covers everything that can change a
  prediction (budget included -- a tighter superstep budget can truncate
  convergence); ``profile_key`` drops the fields that only affect
  training-table assembly, so overlapping sweeps share per-ratio cells.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.graph import generators
from repro.service.cache import (
    InMemoryLRUCache,
    NullCache,
    SqliteCache,
    cache_by_name,
)
from repro.service.canonical import (
    PredictRequest,
    canonical_hash,
    prediction_key,
    profile_key,
    sample_key,
)
from repro.utils.canonical import config_token, graph_token

CONTEXT = {
    "dataset_scale": 0.4,
    "seed": 42,
    "num_workers": 8,
    "partitioner": "hash",
    "transform": "default",
}

REQUEST = PredictRequest(
    dataset="livejournal",
    algorithm="pagerank",
    sampling_ratio=0.1,
    training_ratios=(0.05, 0.1, 0.15, 0.2),
    sampler="BRJ",
    budget=200,
)


# ------------------------------------------------------------- canonical hash
def test_canonical_hash_ignores_insertion_order():
    assert canonical_hash({"a": 1, "b": 2.5}) == canonical_hash({"b": 2.5, "a": 1})


def test_canonical_hash_is_float_exact():
    """Floats hash by shortest-round-trip repr: bit-equal doubles collide,
    adjacent doubles do not (the cache must never blur 0.1 + 0.2 into 0.3)."""
    assert canonical_hash({"x": 0.3}) == canonical_hash({"x": float("0.3")})
    assert canonical_hash({"x": 0.1 + 0.2}) != canonical_hash({"x": 0.3})


def _subprocess_key(hashseed: str) -> str:
    """Compute REQUEST's prediction key in a fresh interpreter."""
    code = (
        "from repro.service.canonical import PredictRequest, prediction_key\n"
        f"ctx = {CONTEXT!r}\n"
        "req = PredictRequest(dataset='livejournal', algorithm='pagerank',\n"
        "                     sampling_ratio=0.1, training_ratios=(0.05, 0.1, 0.15, 0.2),\n"
        "                     sampler='BRJ', budget=200)\n"
        "print(prediction_key(req, ctx))\n"
    )
    env = dict(os.environ, PYTHONHASHSEED=hashseed)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.path.dirname(__file__), "..", "src"),
                    env.get("PYTHONPATH")) if p
    )
    out = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True, check=True
    )
    return out.stdout.strip()


def test_keys_stable_across_process_restarts_and_hash_seeds():
    """The same request hashes identically in fresh interpreters with
    different ``PYTHONHASHSEED`` -- the property a persistent sqlite cache
    depends on (builtin ``hash()`` would break it silently)."""
    here = prediction_key(REQUEST, CONTEXT)
    assert _subprocess_key("0") == here
    assert _subprocess_key("12345") == here


# ----------------------------------------------------------------- key scope
def test_prediction_key_includes_budget():
    tight = PredictRequest(**{**REQUEST.__dict__, "budget": 50})
    assert prediction_key(REQUEST, CONTEXT) != prediction_key(tight, CONTEXT)


def test_prediction_key_includes_context():
    other = dict(CONTEXT, seed=43)
    assert prediction_key(REQUEST, CONTEXT) != prediction_key(REQUEST, other)


def test_profile_key_drops_training_assembly_fields():
    """Two sweeps differing only in training ratios / history / feature level
    share every per-ratio profile cell."""
    other = PredictRequest(
        dataset="livejournal",
        algorithm="pagerank",
        sampling_ratio=0.15,  # prediction ratio also excluded
        training_ratios=(0.1, 0.15),
        history=("wikipedia",),
        feature_level="graph",
        sampler="BRJ",
        budget=200,
    )
    assert profile_key(REQUEST, CONTEXT, 0.1) == profile_key(other, CONTEXT, 0.1)


@pytest.mark.parametrize(
    "field, value",
    [
        ("dataset", "wikipedia"),
        ("algorithm", "connected-components"),
        ("sampler", "RJ"),
        ("budget", 50),
        ("cluster", {"workers_per_node": 3}),
    ],
)
def test_profile_key_keeps_trajectory_fields(field, value):
    changed = PredictRequest(**{**REQUEST.__dict__, field: value})
    assert profile_key(REQUEST, CONTEXT, 0.1) != profile_key(changed, CONTEXT, 0.1)


def test_sample_key_is_profile_key_at_the_prediction_ratio():
    assert sample_key(REQUEST, CONTEXT).endswith(
        profile_key(REQUEST, CONTEXT, REQUEST.sampling_ratio).split(":", 1)[1]
    )


def test_request_wire_roundtrip():
    request = PredictRequest(
        dataset="livejournal",
        algorithm="topk",
        config={"values": {"k": 5}, "needs_ranks": True},
        history=("wikipedia", "uk-2002"),
        budget=100,
        cluster={"num_nodes": 2},
    )
    assert PredictRequest.from_wire(request.to_wire()) == request


def test_request_rejects_unknown_and_missing_fields():
    with pytest.raises(ValueError, match="unknown predict parameter"):
        PredictRequest.from_wire({"dataset": "a", "algorithm": "b", "bogus": 1})
    with pytest.raises(ValueError, match="requires"):
        PredictRequest.from_wire({"dataset": "a"})


# -------------------------------------------------------------------- tokens
def test_graph_token_is_content_addressed():
    g1 = generators.preferential_attachment(80, out_degree=3, seed=9).freeze()
    g2 = generators.preferential_attachment(80, out_degree=3, seed=9).freeze()
    g3 = generators.preferential_attachment(80, out_degree=3, seed=10).freeze()
    assert graph_token(g1) == graph_token(g2)  # same content, distinct objects
    assert graph_token(g1) != graph_token(g3)
    assert graph_token(g1).startswith("csr:")


def test_graph_token_mutable_graph_falls_back_to_identity():
    g = generators.preferential_attachment(40, out_degree=3, seed=1)
    assert graph_token(g) == f"obj:{id(g)}"


def test_config_token_sees_dict_valued_fields():
    from repro.algorithms.topk_ranking import TopKRankingConfig

    base = TopKRankingConfig(k=5)
    with_ranks = TopKRankingConfig(k=5, ranks={0: 0.5, 1: 0.25})
    other_ranks = TopKRankingConfig(k=5, ranks={0: 0.5, 1: 0.26})
    assert config_token(base) == config_token(TopKRankingConfig(k=5))
    # ``ranks`` is compare=False on the dataclass (derived data), but the
    # cache key must see it: different attached ranks, different token.
    assert config_token(base) != config_token(with_ranks)
    assert config_token(with_ranks) != config_token(other_ranks)


# ------------------------------------------------------------------- backends
def test_lru_cache_evicts_least_recently_used():
    cache = InMemoryLRUCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh "a": "b" is now the LRU entry
    cache.put("c", 3)
    assert cache.get("b", "gone") == "gone"
    assert cache.get("a") == 1 and cache.get("c") == 3
    stats = cache.stats()
    assert stats["evictions"] == 1 and stats["entries"] == 2


def test_lru_cache_thread_safety():
    cache = InMemoryLRUCache(capacity=64)

    def hammer(tid):
        for i in range(200):
            cache.put(f"k{i % 40}", (tid, i))
            cache.get(f"k{(i * 7) % 40}")

    threads = [threading.Thread(target=hammer, args=(t,)) for t in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(cache) <= 64


def test_sqlite_cache_roundtrip_and_persistence(tmp_path):
    path = tmp_path / "cache.db"
    cache = SqliteCache(str(path))
    cache.put("prediction:abc", {"answer": 42.0, "runtimes": [1.0, 2.0]})
    cache.put("prediction:abc", {"answer": 43.0})  # last write wins
    assert cache.get("prediction:abc") == {"answer": 43.0}
    cache.close()

    reopened = SqliteCache(str(path))  # a daemon restart keeps warm entries
    assert reopened.get("prediction:abc") == {"answer": 43.0}
    reopened.delete("prediction:abc")
    assert reopened.get("prediction:abc") is None
    reopened.close()


def test_sqlite_cache_clear_and_keys(tmp_path):
    cache = SqliteCache(str(tmp_path / "c.db"))
    for i in range(5):
        cache.put(f"k{i}", i)
    assert sorted(cache.keys()) == [f"k{i}" for i in range(5)]
    cache.clear()
    assert len(cache) == 0
    cache.close()


def test_null_cache_never_stores():
    cache = NullCache()
    cache.put("k", 1)
    assert cache.get("k", "miss") == "miss"
    assert len(cache) == 0


def test_cache_by_name_parsing(tmp_path):
    assert isinstance(cache_by_name(None), InMemoryLRUCache)
    assert isinstance(cache_by_name("memory"), InMemoryLRUCache)
    assert cache_by_name("memory:7").capacity == 7
    sqlite_cache = cache_by_name(f"sqlite:{tmp_path / 'x.db'}")
    assert isinstance(sqlite_cache, SqliteCache)
    sqlite_cache.close()
    assert isinstance(cache_by_name("none"), NullCache)
    with pytest.raises(ConfigurationError):
        cache_by_name("memory:lots")
    with pytest.raises(ConfigurationError):
        cache_by_name("sqlite:")
    with pytest.raises(ConfigurationError):
        cache_by_name("redis:whatever")
