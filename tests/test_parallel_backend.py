"""Differential + lifecycle tests for the shared-memory process backend.

The process backend (``EngineConfig(backend="process")``) promises to be
*observationally identical* to the inline engine: same vertex values, same
convergence history, same value for every per-worker, per-superstep Table 1
counter and simulated runtime.  This module enforces that promise across
every registry algorithm and the cluster shapes of the differential suite,
and pins the backend's operational contract: persistent pools survive many
runs, child failures surface as :class:`BSPError` with the worker traceback,
ineligible runs fall back to the inline loop, and no shared-memory segment
outlives its run (``/dev/shm`` stays clean).

The worker processes are spawned (``start_method="spawn"``), so these tests
also catch pickling regressions in everything that ships to a worker:
algorithms, configs, engine configs, plane init payloads.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from test_differential_engine import (
    ALGORITHM_NAMES,
    algorithm_settings,
    assert_profiles_identical,
)

from repro.algorithms.pagerank import PageRank, PageRankConfig
from repro.algorithms.registry import algorithm_by_name
from repro.bsp.engine import BSPEngine, EngineConfig
from repro.bsp.parallel.shared_csr import SharedCSR
from repro.cluster.cost_profile import CostProfile
from repro.cluster.spec import ClusterSpec
from repro.exceptions import BSPError
from repro.graph import generators

PROCESSES = 2


@pytest.fixture(scope="module")
def process_engine():
    """One engine for the whole module: every run reuses its worker pool."""
    engine = BSPEngine(
        cluster=ClusterSpec(num_nodes=1, workers_per_node=5),
        cost_profile=CostProfile(noise_std=0.0, congestion_factor=0.0),
    )
    yield engine
    engine.close_pools()


@pytest.fixture(scope="module")
def diff_graph():
    return generators.preferential_attachment(150, out_degree=4, seed=3).freeze()


def shm_segments():
    """Names of live POSIX shared-memory segments created by this backend.

    ``psm_`` is CPython's default random-name prefix (used by the master's
    ``SharedCSR`` export); ``repro_shm_`` is the deterministic prefix of
    worker-owned arena blocks (see ``shared_csr.create_owned_shared_memory``).
    """
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux hosts
        return None
    return {
        name for name in os.listdir("/dev/shm")
        if name.startswith(("psm_", "repro_shm_"))
    }


def run_backends(engine, graph, algorithm_name, backend, num_workers,
                 processes=PROCESSES, **overrides):
    config, max_supersteps = algorithm_settings(algorithm_name)
    engine_config = EngineConfig(
        num_workers=num_workers, max_supersteps=max_supersteps, runtime_seed=7,
        collect_vertex_values=True, backend=backend, processes=processes,
        **overrides,
    )
    return engine.run(graph, algorithm_by_name(algorithm_name), config, engine_config)


# ------------------------------------------------------------ differential
@pytest.mark.parametrize("num_workers", [1, 2, 8])
@pytest.mark.parametrize("algorithm_name", ALGORITHM_NAMES)
def test_process_backend_bit_identical(
    process_engine, diff_graph, algorithm_name, num_workers
):
    """Every registry algorithm, every cluster shape: process == inline.

    The inline batch planes are themselves pinned against the scalar path by
    ``test_differential_engine``, so equality here gives process == scalar
    transitively -- values, counters, histories and per-worker byte/time
    accounting included.
    """
    inline = run_backends(process_engine, diff_graph, algorithm_name, "inline", num_workers)
    process = run_backends(process_engine, diff_graph, algorithm_name, "process", num_workers)
    assert_profiles_identical(inline, process)


@pytest.mark.parametrize("algorithm_name", ["pagerank", "topk-ranking"])
def test_process_count_does_not_change_results(
    process_engine, diff_graph, algorithm_name
):
    """Worker blocks per process are an implementation detail: P=2 == P=3."""
    two = run_backends(process_engine, diff_graph, algorithm_name, "process", 8, processes=2)
    three = run_backends(process_engine, diff_graph, algorithm_name, "process", 8, processes=3)
    assert_profiles_identical(two, three)


def test_process_backend_object_plane(process_engine):
    """The Python-object fold (numeric plane declined) also shards correctly."""
    graph = generators.two_level_hierarchy(4, 12, seed=1).freeze()
    kwargs = dict(semicluster_numeric=False)
    inline = run_backends(process_engine, graph, "semi-clustering", "inline", 4, **kwargs)
    process = run_backends(process_engine, graph, "semi-clustering", "process", 4, **kwargs)
    assert_profiles_identical(inline, process)


def test_process_backend_with_combiner_and_memory_model(process_engine, diff_graph):
    """Combined buffers + the memory model's delivered accounting survive."""
    kwargs = dict(use_combiner=True, enforce_memory=True)
    inline = run_backends(process_engine, diff_graph, "pagerank", "inline", 4, **kwargs)
    process = run_backends(process_engine, diff_graph, "pagerank", "process", 4, **kwargs)
    assert_profiles_identical(inline, process)


# ------------------------------------------------------------ eligibility
def test_process_backend_falls_back_inline_on_unfrozen_graph(process_engine):
    """No CSR arrays to share: the run executes inline, results identical."""
    graph = generators.preferential_attachment(80, out_degree=3, seed=5)
    inline = run_backends(process_engine, graph, "pagerank", "inline", 4)
    fallback = run_backends(process_engine, graph, "pagerank", "process", 4)
    assert_profiles_identical(inline, fallback)


def test_process_backend_falls_back_on_gather_layout(process_engine, diff_graph):
    """partition_native=False has no contiguous shards: inline fallback."""
    inline = run_backends(
        process_engine, diff_graph, "pagerank", "inline", 4, partition_native=False
    )
    fallback = run_backends(
        process_engine, diff_graph, "pagerank", "process", 4, partition_native=False
    )
    assert_profiles_identical(inline, fallback)


def test_unknown_backend_raises(process_engine, diff_graph):
    with pytest.raises(BSPError):
        process_engine.run(
            diff_graph, PageRank(), PageRankConfig(),
            EngineConfig(backend="threads"),
        )


# --------------------------------------------------------------- lifecycle
def test_pool_is_persistent_and_reused(process_engine, diff_graph):
    run_backends(process_engine, diff_graph, "pagerank", "process", 4)
    pool = process_engine.process_pool(PROCESSES)
    run_backends(process_engine, diff_graph, "connected-components", "process", 4)
    assert process_engine.process_pool(PROCESSES) is pool
    assert pool.alive


class ExplodingPageRank(PageRank):
    """Raises inside a worker process after the run is underway."""

    def compute_batch(self, batch, config):
        if batch.superstep == 2:
            raise RuntimeError("boom in worker process")
        super().compute_batch(batch, config)


def test_child_error_propagates_and_pool_recovers(process_engine, diff_graph):
    before = shm_segments()
    with pytest.raises(BSPError, match="boom in worker process"):
        process_engine.run(
            diff_graph, ExplodingPageRank(), PageRankConfig(tolerance=1e-5),
            EngineConfig(num_workers=4, max_supersteps=10, runtime_seed=7,
                         backend="process", processes=PROCESSES),
        )
    # The failed pool is closed; the next run transparently gets a fresh one.
    inline = run_backends(process_engine, diff_graph, "pagerank", "inline", 4)
    process = run_backends(process_engine, diff_graph, "pagerank", "process", 4)
    assert_profiles_identical(inline, process)
    if before is not None:
        leaked = shm_segments() - before
        assert not leaked, f"stale shared-memory segments after failed run: {leaked}"


class ChildKillingPageRank(PageRank):
    """SIGKILLs its own worker process mid-superstep (crash injection).

    Unlike :class:`ExplodingPageRank`, the child gets no chance to run any
    cleanup -- no ``finally``, no atexit, no resource tracker.  Its arena
    blocks (created while packing superstep 0's send stream) can only be
    reclaimed by the master's pid-based sweep in ``ProcessWorkerPool.close``.
    """

    def compute_batch(self, batch, config):
        if batch.superstep == 1:
            os.kill(os.getpid(), signal.SIGKILL)
        super().compute_batch(batch, config)


def test_sigkilled_child_leaves_no_shm_segments(process_engine, diff_graph):
    """Regression: a SIGKILLed child used to leak its /dev/shm arena blocks."""
    before = shm_segments()
    if before is None:  # pragma: no cover - non-Linux hosts
        pytest.skip("/dev/shm not available")
    with pytest.raises(BSPError, match="died mid-run"):
        process_engine.run(
            diff_graph, ChildKillingPageRank(), PageRankConfig(tolerance=1e-5),
            EngineConfig(num_workers=4, max_supersteps=10, runtime_seed=7,
                         backend="process", processes=PROCESSES),
        )
    leaked = shm_segments() - before
    assert not leaked, f"stale shared-memory segments after SIGKILL: {leaked}"
    # The dead pool was torn down; the next process run gets a fresh one.
    inline = run_backends(process_engine, diff_graph, "pagerank", "inline", 4)
    process = run_backends(process_engine, diff_graph, "pagerank", "process", 4)
    assert_profiles_identical(inline, process)


def test_interrupt_mid_run_sweeps_segments(diff_graph):
    """A KeyboardInterrupt on the master mid-run must not leak segments.

    ``run_process_backend`` catches ``BaseException`` (not just ``Exception``)
    so an interrupted session still joins the children and sweeps their arena
    blocks; this pins that path by injecting the interrupt at the first
    master->pool broadcast, when every child has already packed superstep 0's
    stream into its arena.
    """
    before = shm_segments()
    if before is None:  # pragma: no cover - non-Linux hosts
        pytest.skip("/dev/shm not available")
    engine = BSPEngine(
        cluster=ClusterSpec(num_nodes=1, workers_per_node=5),
        cost_profile=CostProfile(noise_std=0.0, congestion_factor=0.0),
    )
    try:
        pool = engine.process_pool(PROCESSES)

        def interrupting_broadcast(message):
            raise KeyboardInterrupt

        pool.broadcast = interrupting_broadcast
        with pytest.raises(KeyboardInterrupt):
            run_backends(engine, diff_graph, "pagerank", "process", 4)
        assert not pool.alive
        leaked = shm_segments() - before
        assert not leaked, f"stale shared-memory segments after interrupt: {leaked}"
    finally:
        engine.close_pools()


# ----------------------------------------------------------- shared memory
def test_shared_csr_roundtrip(diff_graph):
    batch_graph = diff_graph
    shared = SharedCSR.export(batch_graph)
    try:
        attached = SharedCSR.attach(shared.handle)
        try:
            clone = attached.graph()
            assert clone.num_vertices == batch_graph.num_vertices
            assert clone.num_edges == batch_graph.num_edges
            assert clone.ids == batch_graph.ids
            assert np.array_equal(clone.indptr, batch_graph.indptr)
            assert np.array_equal(clone.targets, batch_graph.targets)
            assert np.array_equal(clone.weights, batch_graph.weights)
            # Zero-copy: the clone's arrays alias the shared block, and the
            # block outlives the exporter's mapping.
            assert not clone.targets.flags.owndata
        finally:
            attached.close()
    finally:
        shared.close()
        shared.unlink()


def test_process_run_leaves_no_shm_segments(process_engine, diff_graph):
    before = shm_segments()
    if before is None:  # pragma: no cover - non-Linux hosts
        pytest.skip("/dev/shm not available")
    run_backends(process_engine, diff_graph, "pagerank", "process", 4)
    run_backends(process_engine, diff_graph, "neighborhood-estimation", "process", 4)
    leaked = shm_segments() - before
    assert not leaked, f"stale shared-memory segments after runs: {leaked}"


def test_close_pools_shuts_processes_down(diff_graph):
    before = shm_segments()
    engine = BSPEngine(
        cluster=ClusterSpec(num_nodes=1, workers_per_node=5),
        cost_profile=CostProfile(noise_std=0.0, congestion_factor=0.0),
    )
    run_backends(engine, diff_graph, "pagerank", "process", 4)
    pool = engine.process_pool(PROCESSES)
    procs = list(pool._procs)
    assert all(proc.is_alive() for proc in procs)
    engine.close_pools()
    assert not pool.alive
    assert all(not proc.is_alive() for proc in procs)
    if before is not None:
        leaked = shm_segments() - before
        assert not leaked, f"stale shared-memory segments after close: {leaked}"
