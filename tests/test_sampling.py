"""Unit tests for the graph samplers and the sample-quality report."""

import pytest

from repro.exceptions import ConfigurationError, SamplingError
from repro.graph import generators
from repro.graph.digraph import DiGraph
from repro.sampling import (
    BiasedRandomJump,
    ForestFire,
    MetropolisHastingsRandomWalk,
    RandomJump,
    RandomWalkSampler,
    available_samplers,
    sampler_by_name,
)
from repro.sampling.quality import quality_report

ALL_SAMPLERS = [RandomJump, BiasedRandomJump, MetropolisHastingsRandomWalk, RandomWalkSampler, ForestFire]


class TestSamplerContract:
    @pytest.mark.parametrize("sampler_cls", ALL_SAMPLERS)
    def test_sample_size_matches_ratio(self, sampler_cls, medium_scale_free_graph):
        sampler = sampler_cls(seed=1)
        result = sampler.sample(medium_scale_free_graph, 0.1)
        expected = int(round(medium_scale_free_graph.num_vertices * 0.1))
        assert result.num_vertices == expected
        assert result.ratio == 0.1
        assert result.technique == sampler_cls.name

    @pytest.mark.parametrize("sampler_cls", ALL_SAMPLERS)
    def test_sample_vertices_are_unique_and_from_graph(self, sampler_cls, medium_scale_free_graph):
        sampler = sampler_cls(seed=2)
        result = sampler.sample(medium_scale_free_graph, 0.05)
        assert len(set(result.vertices)) == len(result.vertices)
        assert all(medium_scale_free_graph.has_vertex(v) for v in result.vertices)

    @pytest.mark.parametrize("sampler_cls", ALL_SAMPLERS)
    def test_sample_graph_is_induced_subgraph(self, sampler_cls, medium_scale_free_graph):
        sampler = sampler_cls(seed=3)
        result = sampler.sample(medium_scale_free_graph, 0.1)
        picked = set(result.vertices)
        for source, target, _ in result.graph.edges():
            assert source in picked and target in picked
            assert medium_scale_free_graph.has_edge(source, target)

    @pytest.mark.parametrize("sampler_cls", ALL_SAMPLERS)
    def test_deterministic_given_seed(self, sampler_cls, medium_scale_free_graph):
        first = sampler_cls(seed=7).sample(medium_scale_free_graph, 0.1)
        second = sampler_cls(seed=7).sample(medium_scale_free_graph, 0.1)
        assert first.vertices == second.vertices

    def test_full_ratio_returns_whole_graph(self, small_scale_free_graph):
        result = BiasedRandomJump(seed=1).sample(small_scale_free_graph, 1.0)
        assert result.num_vertices == small_scale_free_graph.num_vertices

    def test_invalid_ratio_rejected(self, small_scale_free_graph):
        with pytest.raises(SamplingError):
            RandomJump(seed=1).sample(small_scale_free_graph, 0.0)
        with pytest.raises(SamplingError):
            RandomJump(seed=1).sample(small_scale_free_graph, 1.5)

    def test_empty_graph_rejected(self):
        with pytest.raises(SamplingError):
            RandomJump(seed=1).sample(DiGraph(), 0.1)

    def test_invalid_restart_probability(self):
        with pytest.raises(SamplingError):
            RandomJump(restart_probability=0.0)

    def test_scaling_factors(self, medium_scale_free_graph):
        result = BiasedRandomJump(seed=4).sample(medium_scale_free_graph, 0.1)
        ev = result.vertex_scaling_factor(medium_scale_free_graph)
        ee = result.edge_scaling_factor(medium_scale_free_graph)
        assert ev == pytest.approx(medium_scale_free_graph.num_vertices / result.num_vertices)
        assert ee >= 1.0


class TestBiasedRandomJump:
    def test_seeds_are_highest_out_degree_vertices(self, medium_scale_free_graph):
        sampler = BiasedRandomJump(seed_fraction=0.01, seed=5)
        seeds = sampler.select_seeds(medium_scale_free_graph)
        assert len(seeds) == max(1, round(medium_scale_free_graph.num_vertices * 0.01))
        min_seed_degree = min(medium_scale_free_graph.out_degree(v) for v in seeds)
        non_seed_degrees = [
            medium_scale_free_graph.out_degree(v)
            for v in medium_scale_free_graph.vertices()
            if v not in set(seeds)
        ]
        # Seeds are the top out-degree vertices: no non-seed can beat the
        # weakest seed.
        assert min_seed_degree >= max(non_seed_degrees)

    def test_seed_result_recorded(self, medium_scale_free_graph):
        result = BiasedRandomJump(seed=6).sample(medium_scale_free_graph, 0.05)
        assert result.seed_vertices
        assert all(medium_scale_free_graph.has_vertex(v) for v in result.seed_vertices)

    def test_invalid_seed_fraction(self):
        with pytest.raises(SamplingError):
            BiasedRandomJump(seed_fraction=0.0)

    def test_brj_sample_denser_than_rj(self, medium_scale_free_graph):
        # BRJ biases towards the hub core, so the induced sample keeps more
        # edges per vertex than the uniform-jump sample at small ratios.
        brj = BiasedRandomJump(seed=8).sample(medium_scale_free_graph, 0.1)
        rj = RandomJump(seed=8).sample(medium_scale_free_graph, 0.1)
        assert brj.num_edges >= rj.num_edges


class TestForestFire:
    def test_invalid_forward_probability(self):
        with pytest.raises(SamplingError):
            ForestFire(forward_probability=1.0)


class TestSamplerRegistry:
    def test_available_samplers(self):
        assert {"BRJ", "RJ", "MHRW", "RW", "FF"} == set(available_samplers())

    def test_lookup_case_insensitive(self):
        assert sampler_by_name("brj").name == "BRJ"

    def test_unknown_sampler_raises(self):
        with pytest.raises(ConfigurationError):
            sampler_by_name("nope")


class TestQualityReport:
    def test_full_sample_preserves_everything(self, small_scale_free_graph):
        result = BiasedRandomJump(seed=9).sample(small_scale_free_graph, 1.0)
        report = quality_report(small_scale_free_graph, result, seed=2)
        assert report.out_degree_d_statistic == pytest.approx(0.0)
        assert report.connectivity_preserved
        assert report.diameter_preserved

    def test_report_fields_and_dict(self, medium_scale_free_graph):
        result = BiasedRandomJump(seed=10).sample(medium_scale_free_graph, 0.15)
        report = quality_report(medium_scale_free_graph, result, seed=2)
        assert 0.0 <= report.out_degree_d_statistic <= 1.0
        assert 0.0 <= report.in_degree_d_statistic <= 1.0
        as_dict = report.as_dict()
        assert as_dict["technique"] == "BRJ"
        assert as_dict["ratio"] == 0.15

    def test_brj_preserves_connectivity_at_small_ratio(self, medium_scale_free_graph):
        result = BiasedRandomJump(seed=11).sample(medium_scale_free_graph, 0.1)
        report = quality_report(medium_scale_free_graph, result, seed=2)
        assert report.wcc_fraction_sample > 0.5
