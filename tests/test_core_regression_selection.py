"""Unit tests for the linear regression, cross validation and forward feature
selection that make up the cost model."""

import numpy as np
import pytest

from repro.core.feature_selection import forward_select
from repro.core.features import FeatureTable
from repro.core.regression import cross_validate, fit_linear_model
from repro.exceptions import ModelingError


def make_linear_table(num_rows=40, coef_a=3.0, coef_b=0.5, intercept=1.0, noise=0.0, seed=0):
    """A feature table whose response is an exact (or noisy) linear function."""
    rng = np.random.default_rng(seed)
    table = FeatureTable()
    for _ in range(num_rows):
        a = float(rng.uniform(0, 100))
        b = float(rng.uniform(0, 1000))
        irrelevant = float(rng.uniform(0, 50))
        response = coef_a * a + coef_b * b + intercept + float(rng.normal(0, noise))
        table.append({"A": a, "B": b, "Noise": irrelevant}, response)
    return table


class TestLinearModel:
    def test_recovers_exact_coefficients(self):
        table = make_linear_table()
        model = fit_linear_model(table.matrix(["A", "B"]), table.response(), ["A", "B"])
        coefficients = model.coefficient_dict()
        assert coefficients["A"] == pytest.approx(3.0, abs=1e-8)
        assert coefficients["B"] == pytest.approx(0.5, abs=1e-8)
        assert model.intercept == pytest.approx(1.0, abs=1e-6)
        assert model.r_squared == pytest.approx(1.0)

    def test_predict_row_and_matrix_agree(self):
        table = make_linear_table()
        model = fit_linear_model(table.matrix(["A", "B"]), table.response(), ["A", "B"])
        row = {"A": 10.0, "B": 20.0}
        matrix = np.array([[10.0, 20.0]])
        assert model.predict_row(row) == pytest.approx(float(model.predict_matrix(matrix)[0]))

    def test_extrapolation_beyond_training_range(self):
        # The fixed functional form must extrapolate: train on small values,
        # predict on values 100x larger (the sample-run -> actual-run regime).
        table = make_linear_table()
        model = fit_linear_model(table.matrix(["A", "B"]), table.response(), ["A", "B"])
        assert model.predict_row({"A": 10_000.0, "B": 100_000.0}) == pytest.approx(
            3.0 * 10_000 + 0.5 * 100_000 + 1.0, rel=1e-6
        )

    def test_predict_row_missing_feature_raises(self):
        table = make_linear_table()
        model = fit_linear_model(table.matrix(["A"]), table.response(), ["A"])
        with pytest.raises(ModelingError):
            model.predict_row({"B": 1.0})

    def test_predict_matrix_wrong_width_raises(self):
        table = make_linear_table()
        model = fit_linear_model(table.matrix(["A"]), table.response(), ["A"])
        with pytest.raises(ModelingError):
            model.predict_matrix(np.zeros((3, 2)))

    def test_noisy_fit_r_squared_below_one(self):
        table = make_linear_table(noise=25.0, seed=3)
        model = fit_linear_model(table.matrix(["A", "B"]), table.response(), ["A", "B"])
        assert 0.5 < model.r_squared < 1.0

    def test_empty_observations_raise(self):
        with pytest.raises(ModelingError):
            fit_linear_model(np.zeros((0, 1)), [], ["A"])

    def test_shape_mismatches_raise(self):
        with pytest.raises(ModelingError):
            fit_linear_model(np.zeros((3, 1)), [1.0, 2.0], ["A"])
        with pytest.raises(ModelingError):
            fit_linear_model(np.zeros((2, 2)), [1.0, 2.0], ["A"])
        with pytest.raises(ModelingError):
            fit_linear_model(np.zeros(3), [1.0, 2.0, 3.0], ["A"])

    def test_non_negative_constraint(self):
        rng = np.random.default_rng(1)
        # Response depends only on A; B is pure noise that an unconstrained
        # fit may give a small negative weight.
        rows = []
        for _ in range(60):
            a = float(rng.uniform(0, 10))
            b = float(rng.uniform(0, 10))
            rows.append((a, b, 2.0 * a + float(rng.normal(0, 0.5))))
        matrix = np.array([[a, b] for a, b, _ in rows])
        response = [r for _, _, r in rows]
        model = fit_linear_model(matrix, response, ["A", "B"], non_negative=True)
        assert all(value >= 0 for value in model.coefficient_dict().values())


class TestCrossValidation:
    def test_cross_validation_error_small_for_exact_data(self):
        table = make_linear_table()
        result = cross_validate(table.matrix(["A", "B"]), table.response(), ["A", "B"])
        assert result.mean_absolute_error == pytest.approx(0.0, abs=1e-6)
        assert len(result.fold_errors) > 1

    def test_cross_validation_requires_two_observations(self):
        with pytest.raises(ModelingError):
            cross_validate(np.zeros((1, 1)), [1.0], ["A"])


class TestForwardSelection:
    def test_selects_true_features_before_noise(self):
        table = make_linear_table(noise=1.0, seed=5)
        result = forward_select(table, ["A", "B", "Noise"], criterion="r2")
        assert "B" in result.selected
        assert result.selected[0] in {"A", "B"}
        # The irrelevant feature does not enter before the real ones.
        if "Noise" in result.selected:
            assert result.selected.index("Noise") > 0

    def test_cv_criterion_also_works(self):
        table = make_linear_table(noise=1.0, seed=6)
        result = forward_select(table, ["A", "B", "Noise"], criterion="cv")
        assert set(result.selected) & {"A", "B"}

    def test_max_features_cap(self):
        table = make_linear_table(noise=0.5, seed=7)
        result = forward_select(table, ["A", "B", "Noise"], max_features=1)
        assert len(result.selected) == 1

    def test_constant_features_excluded(self):
        table = FeatureTable()
        for i in range(10):
            table.append({"Const": 5.0, "X": float(i)}, 2.0 * i)
        result = forward_select(table, ["Const", "X"])
        assert result.selected == ["X"]

    def test_no_variance_anywhere_raises(self):
        table = FeatureTable()
        for _ in range(5):
            table.append({"Const": 5.0}, 1.0)
        with pytest.raises(ModelingError):
            forward_select(table, ["Const"])

    def test_unknown_criterion_raises(self):
        table = make_linear_table()
        with pytest.raises(ModelingError):
            forward_select(table, ["A"], criterion="aic")

    def test_empty_table_raises(self):
        with pytest.raises(ModelingError):
            forward_select(FeatureTable(), ["A"])

    def test_history_tracks_incremental_sets(self):
        table = make_linear_table(noise=0.1, seed=8)
        result = forward_select(table, ["A", "B", "Noise"])
        assert len(result.history) == len(result.selected)
        assert result.history[-1] == result.selected
