"""Engine and harness lifecycle: context managers release process pools.

``BSPEngine`` caches its process pools across runs (by design -- the spawn
cost amortises over a whole experiment sweep), which means someone has to
call :meth:`BSPEngine.close_pools` eventually.  The context-manager protocol
on :class:`BSPEngine` and :class:`ExperimentContext` makes that automatic;
these tests pin that the ``with`` exit really tears the pool down and that a
full harness run over the process backend leaves ``/dev/shm`` clean.
"""

from __future__ import annotations

import pytest

from test_parallel_backend import PROCESSES, run_backends, shm_segments

from repro.algorithms.pagerank import PageRank, PageRankConfig
from repro.bsp.engine import BSPEngine
from repro.cluster.cost_profile import CostProfile
from repro.cluster.spec import ClusterSpec
from repro.experiments.harness import ExperimentContext
from repro.graph import generators


@pytest.fixture(scope="module")
def graph():
    return generators.preferential_attachment(120, out_degree=4, seed=5).freeze()


def make_engine() -> BSPEngine:
    return BSPEngine(
        cluster=ClusterSpec(num_nodes=1, workers_per_node=5),
        cost_profile=CostProfile(noise_std=0.0, congestion_factor=0.0),
    )


def test_engine_context_manager_returns_engine():
    engine = make_engine()
    with engine as bound:
        assert bound is engine


def test_engine_context_manager_closes_pools(graph):
    before = shm_segments()
    with make_engine() as engine:
        run_backends(engine, graph, "pagerank", "process", 4)
        pool = engine.process_pool(PROCESSES)
        procs = list(pool._procs)
        assert all(proc.is_alive() for proc in procs)
    assert not pool.alive
    assert all(not proc.is_alive() for proc in procs)
    if before is not None:
        leaked = shm_segments() - before
        assert not leaked, f"stale shared-memory segments after with-exit: {leaked}"


def test_engine_context_manager_closes_pools_on_error(graph):
    with pytest.raises(RuntimeError, match="boom"):
        with make_engine() as engine:
            run_backends(engine, graph, "pagerank", "process", 4)
            pool = engine.process_pool(PROCESSES)
            assert pool.alive
            raise RuntimeError("boom")
    assert not pool.alive


def test_engine_context_manager_without_pools_is_noop():
    # Inline-only usage never creates a pool; the exit must still be safe.
    with make_engine() as engine:
        assert engine is not None


def test_harness_run_leaves_dev_shm_clean(graph):
    """Regression: an ExperimentContext over the process backend used to
    leave its persistent pool (and, if interrupted, /dev/shm arena blocks)
    behind because nothing ever called close_pools()."""
    before = shm_segments()
    if before is None:  # pragma: no cover - non-Linux hosts
        pytest.skip("/dev/shm not available")
    with ExperimentContext(
        cluster=ClusterSpec(num_nodes=1, workers_per_node=5),
        cost_profile=CostProfile(noise_std=0.0, congestion_factor=0.0),
        dataset_scale=0.02,
        num_workers=4,
        backend="process",
        processes=PROCESSES,
    ) as ctx:
        dataset = ctx.load("wikipedia")
        config = PageRankConfig.for_tolerance_level(0.01, dataset.num_vertices)
        result = ctx.actual_run("wikipedia", PageRank(), config)
        assert result.num_iterations >= 1
        pool = ctx.engine.process_pool(PROCESSES)
        assert pool.alive
    assert not pool.alive
    leaked = shm_segments() - before
    assert not leaked, f"stale shared-memory segments after harness run: {leaked}"
