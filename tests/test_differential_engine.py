"""Differential testing: scalar DiGraph path vs. frozen CSR / vectorized path.

The engine's batch planes (the scalar-payload fast path of
``_VectorizedState`` and the ragged message plane of
:mod:`repro.bsp.ragged`) promise to be *observationally identical* to the
per-vertex scalar path: same vertex values, same convergence history, and the
same value for every per-worker, per-superstep key-input-feature counter.
PREDIcT's whole methodology rests on those profiles, so the promise is
enforced here exhaustively -- and *automatically*: the test matrix is built
from :func:`repro.algorithms.registry.available_algorithms`, so an algorithm
that gains ``compute_batch`` is differentially tested on the full graph pool
without editing this file.  Every algorithm runs through both paths on a pool
of 20+ seeded random graphs of varied shape -- scale-free, uniform,
log-normal, R-MAT, and the degenerate structures of §3.5 -- and every field
of the two :class:`repro.bsp.result.RunResult` objects is compared exactly
(``==``, not approximately: the batch planes replicate the scalar float
accumulation order).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.algorithms.neighborhood import NeighborhoodConfig
from repro.algorithms.pagerank import PageRank, PageRankConfig
from repro.algorithms.registry import (
    algorithm_by_name,
    available_algorithms,
    supports_batch,
)
from repro.algorithms.semi_clustering import SemiClusteringConfig
from repro.algorithms.topk_ranking import TopKRankingConfig
from repro.bsp.engine import BSPEngine, EngineConfig
from repro.bsp.kernels import available_kernel_tiers
from repro.cluster.cost_profile import DEFAULT_PROFILE, CostProfile
from repro.cluster.spec import ClusterSpec
from repro.graph import generators
from repro.graph.partition import (
    ChunkPartitioner,
    HashPartitioner,
    LDGPartitioner,
    RangePartitioner,
)

COUNTER_FIELDS = (
    "worker_id",
    "superstep",
    "total_vertices",
    "active_vertices",
    "messages_sent",
    "local_messages",
    "remote_messages",
    "local_message_bytes",
    "remote_message_bytes",
    "compute_time",
    "messaging_time",
)

# ------------------------------------------------------------ algorithm pool
#: Per-algorithm run settings: ``(config_factory, max_supersteps)``.  An
#: algorithm absent from this table runs with its default configuration --
#: new registry entries are covered automatically, these overrides only keep
#: the suite fast and the runs short-but-representative.
ALGORITHM_OVERRIDES = {
    "pagerank": (lambda: PageRankConfig(tolerance=1e-5), 60),
    "topk-ranking": (lambda: TopKRankingConfig(k=3, tolerance=0.01), 60),
    "semi-clustering": (
        lambda: SemiClusteringConfig(c_max=2, s_max=2, v_max=6, tolerance=0.02),
        10,
    ),
    "neighborhood-estimation": (
        lambda: NeighborhoodConfig(num_sketches=3, max_hops=12, tolerance=0.005),
        14,
    ),
}

ALGORITHM_NAMES = available_algorithms()

#: The concrete kernel tiers runnable on this host.  The full differential
#: matrix repeats per tier, so when numba is installed (CI's numba leg, or
#: `pip install .[numba]` locally) the compiled kernels are pinned against
#: the scalar path on exactly the same algorithm x graph x layout grid as
#: the reference kernels.
KERNEL_TIERS = available_kernel_tiers()


def algorithm_settings(name: str):
    """Return ``(config, max_supersteps)`` for one differential run."""
    factory, max_supersteps = ALGORITHM_OVERRIDES.get(name, (lambda: None, 30))
    return factory(), max_supersteps


# ----------------------------------------------------------------- graph pool
def _graph_pool():
    """20+ seeded random graphs of varied shape, as (label, builder) pairs."""
    pool = []
    for seed in range(5):
        pool.append((
            f"er-{seed}",
            lambda seed=seed: generators.erdos_renyi(80, 0.05, seed=seed),
        ))
    for seed in range(5):
        pool.append((
            f"pa-{seed}",
            lambda seed=seed: generators.preferential_attachment(120, out_degree=4, seed=seed),
        ))
    for seed in range(4):
        pool.append((
            f"copy-{seed}",
            lambda seed=seed: generators.copying_model(100, out_degree=3, seed=seed),
        ))
    for seed in range(3):
        pool.append((
            f"lognorm-{seed}",
            lambda seed=seed: generators.lognormal_digraph(90, mean_out_degree=5.0, seed=seed),
        ))
    for seed in range(3):
        pool.append((
            f"rmat-{seed}",
            lambda seed=seed: generators.rmat(6, edge_factor=4, seed=seed),
        ))
    pool.append(("chain", lambda: generators.chain(50)))
    pool.append(("star", lambda: generators.star(40)))
    pool.append(("complete", lambda: generators.complete(12)))
    pool.append((
        "communities",
        lambda: generators.two_level_hierarchy(4, 12, seed=1),
    ))
    return pool


GRAPH_POOL = _graph_pool()
GRAPH_IDS = [label for label, _ in GRAPH_POOL]

# A couple of larger graphs exercise the same contract at scale; they are
# marked slow so `pytest -m "not slow"` keeps the fast suite fast.
LARGE_POOL = [
    ("pa-large", lambda: generators.preferential_attachment(2000, out_degree=6, seed=23)),
    ("uniform-large", lambda: generators.uniform_csr(3000, 18_000, seed=29).to_digraph()),
]


@pytest.fixture(scope="module")
def diff_engine() -> BSPEngine:
    return BSPEngine(
        cluster=ClusterSpec(num_nodes=1, workers_per_node=5),
        cost_profile=CostProfile(noise_std=0.0, congestion_factor=0.0),
    )


# ----------------------------------------------------------------- assertions
def assert_profiles_identical(scalar, vectorized):
    """Assert two RunResults are exactly equal, field by field."""
    assert scalar.num_iterations == vectorized.num_iterations
    assert scalar.converged == vectorized.converged
    assert scalar.num_workers == vectorized.num_workers
    assert scalar.num_vertices == vectorized.num_vertices
    assert scalar.num_edges == vectorized.num_edges
    assert scalar.convergence_history == vectorized.convergence_history
    assert scalar.vertex_values == vectorized.vertex_values
    assert dataclasses.asdict(scalar.phase_times) == dataclasses.asdict(vectorized.phase_times)
    for left, right in zip(scalar.iterations, vectorized.iterations):
        assert left.superstep == right.superstep
        assert left.critical_worker == right.critical_worker
        assert left.runtime == right.runtime
        assert left.barrier_time == right.barrier_time
        assert left.convergence_metric == right.convergence_metric
        assert left.aggregates == right.aggregates
        assert len(left.worker_counters) == len(right.worker_counters)
        for counters_left, counters_right in zip(left.worker_counters, right.worker_counters):
            for field in COUNTER_FIELDS:
                assert getattr(counters_left, field) == getattr(counters_right, field), (
                    f"superstep {left.superstep}, worker {counters_left.worker_id}: "
                    f"{field} differs"
                )
        assert left.graph_feature_dict() == right.graph_feature_dict()
        assert left.critical_feature_dict() == right.critical_feature_dict()


def run_both_paths(
    engine, graph, algorithm_factory, config, use_combiner=False, max_supersteps=60,
    num_workers=4, partitioner_factory=None, partition_native=True, kernel_tier=None,
):
    """Run scalar-on-DiGraph and vectorized-on-CSR, return both results."""
    frozen = graph.freeze()

    def engine_config(vectorized):
        kwargs = dict(
            num_workers=num_workers, max_supersteps=max_supersteps, runtime_seed=7,
            collect_vertex_values=True, use_combiner=use_combiner,
            vectorized=vectorized, partition_native=partition_native,
            kernel_tier=kernel_tier,
        )
        if partitioner_factory is not None:
            kwargs["partitioner"] = partitioner_factory()
        return EngineConfig(**kwargs)

    scalar = engine.run(graph, algorithm_factory(), config, engine_config(False))
    vectorized = engine.run(frozen, algorithm_factory(), config, engine_config(True))
    return scalar, vectorized


# ---------------------------------------------------------------------- tests
@pytest.mark.parametrize("kernel_tier", KERNEL_TIERS)
@pytest.mark.parametrize("label,builder", GRAPH_POOL, ids=GRAPH_IDS)
@pytest.mark.parametrize("algorithm_name", ALGORITHM_NAMES)
class TestDifferentialAllAlgorithmsAllGraphs:
    """Every registry algorithm, every pool graph, both engine paths --
    repeated per available kernel tier."""

    def test_differential(self, diff_engine, algorithm_name, label, builder, kernel_tier):
        graph = builder()
        config, max_supersteps = algorithm_settings(algorithm_name)
        scalar, vectorized = run_both_paths(
            diff_engine,
            graph,
            lambda: algorithm_by_name(algorithm_name),
            config,
            max_supersteps=max_supersteps,
            kernel_tier=kernel_tier,
        )
        assert_profiles_identical(scalar, vectorized)


# ----------------------------------------- partition-native layout coverage
#: Graphs for the worker-count / partitioner matrix (kept small: the matrix
#: multiplies over every registry algorithm).
LAYOUT_GRAPHS = [GRAPH_POOL[1], GRAPH_POOL[7]]
LAYOUT_PARTITIONERS = [
    ("hash", HashPartitioner),
    ("chunk", ChunkPartitioner),
    ("range", RangePartitioner),
    ("ldg", LDGPartitioner),
]


@pytest.mark.parametrize("kernel_tier", KERNEL_TIERS)
@pytest.mark.parametrize("num_workers", [1, 2, 8])
@pytest.mark.parametrize("algorithm_name", ALGORITHM_NAMES)
class TestDifferentialWorkerCounts:
    """Partition-native path vs. scalar path across worker counts.

    The partition-contiguous relabelling changes with the worker count (the
    layout *is* the partitioning), so every Table 1 counter, per-worker
    local/remote split and convergence history must stay bit-identical for
    skewed (1), tiny (2) and wide (8) cluster shapes alike -- on every
    available kernel tier.
    """

    @pytest.mark.parametrize(
        "label,builder", LAYOUT_GRAPHS, ids=[l for l, _ in LAYOUT_GRAPHS]
    )
    def test_differential_across_worker_counts(
        self, diff_engine, algorithm_name, num_workers, label, builder, kernel_tier
    ):
        graph = builder()
        config, max_supersteps = algorithm_settings(algorithm_name)
        scalar, vectorized = run_both_paths(
            diff_engine,
            graph,
            lambda: algorithm_by_name(algorithm_name),
            config,
            max_supersteps=max_supersteps,
            num_workers=num_workers,
            kernel_tier=kernel_tier,
        )
        assert_profiles_identical(scalar, vectorized)


@pytest.mark.parametrize("partitioner_name,partitioner_cls", LAYOUT_PARTITIONERS)
@pytest.mark.parametrize("algorithm_name", ALGORITHM_NAMES)
def test_differential_across_partitioners(
    diff_engine, algorithm_name, partitioner_name, partitioner_cls
):
    """Every partitioner produces a valid contiguous layout on every plane."""
    graph = GRAPH_POOL[6][1]()
    config, max_supersteps = algorithm_settings(algorithm_name)
    scalar, vectorized = run_both_paths(
        diff_engine,
        graph,
        lambda: algorithm_by_name(algorithm_name),
        config,
        max_supersteps=max_supersteps,
        partitioner_factory=partitioner_cls,
    )
    assert_profiles_identical(scalar, vectorized)


@pytest.mark.parametrize("algorithm_name", ALGORITHM_NAMES)
def test_partition_native_equals_gather_layout(diff_engine, algorithm_name):
    """The relabelled layout and the legacy gather layout agree exactly."""
    graph = GRAPH_POOL[10][1]()
    config, max_supersteps = algorithm_settings(algorithm_name)
    _, native = run_both_paths(
        diff_engine, graph, lambda: algorithm_by_name(algorithm_name), config,
        max_supersteps=max_supersteps, partition_native=True,
    )
    _, gather = run_both_paths(
        diff_engine, graph, lambda: algorithm_by_name(algorithm_name), config,
        max_supersteps=max_supersteps, partition_native=False,
    )
    assert_profiles_identical(gather, native)


FALLBACK_GRAPHS = [GRAPH_POOL[0], GRAPH_POOL[5], GRAPH_POOL[14], GRAPH_POOL[18],
                   GRAPH_POOL[20]]


@pytest.mark.parametrize(
    "label,builder", FALLBACK_GRAPHS, ids=[l for l, _ in FALLBACK_GRAPHS]
)
@pytest.mark.parametrize("algorithm_name", ALGORITHM_NAMES)
def test_scalar_fallback_on_frozen_graph(diff_engine, algorithm_name, label, builder):
    """Scalar compute over CSR adjacency must equal compute over DiGraph.

    Every registry algorithm now defines ``compute_batch``, so the engine's
    fallback -- per-vertex ``compute`` on a *frozen* graph when no batch
    plane engages -- would otherwise go untested.  Stripping ``compute_batch``
    from a subclass forces that fallback under ``vectorized=True``.
    """
    algorithm_cls = type(algorithm_by_name(algorithm_name))

    class ScalarOnly(algorithm_cls):
        compute_batch = None

    graph = builder()
    config, max_supersteps = algorithm_settings(algorithm_name)
    scalar, fallback = run_both_paths(
        diff_engine, graph, ScalarOnly, config, max_supersteps=max_supersteps
    )
    assert_profiles_identical(scalar, fallback)


# -------------------------------------------- numeric semi-clustering plane
SEMICLUSTER_GRAPHS = [GRAPH_POOL[2], GRAPH_POOL[8], GRAPH_POOL[16], GRAPH_POOL[21]]


@pytest.mark.parametrize(
    "label,builder", SEMICLUSTER_GRAPHS, ids=[l for l, _ in SEMICLUSTER_GRAPHS]
)
def test_semicluster_numeric_equals_object_plane(diff_engine, label, builder):
    """The numeric record plane and the Python-object fold agree exactly.

    The registry-wide matrix above already pins numeric-vs-scalar (the
    numeric plane is the default); this pins the two ``"object"``-kind
    planes against each other so ``semicluster_numeric=False`` remains a
    valid differential baseline.
    """
    graph = builder()
    config, max_supersteps = algorithm_settings("semi-clustering")

    def run(numeric: bool):
        return diff_engine.run(
            graph.freeze(),
            algorithm_by_name("semi-clustering"),
            config,
            EngineConfig(
                num_workers=4, max_supersteps=max_supersteps, runtime_seed=7,
                collect_vertex_values=True, semicluster_numeric=numeric,
            ),
        )

    assert_profiles_identical(run(False), run(True))


def test_semicluster_numeric_plane_is_actually_taken(diff_engine):
    """Guard against silent fallback to the object fold.

    The numeric plane never builds ``SemiCluster`` objects during
    supersteps, so trapping the shared Python fold helper proves the run
    stayed on the record kernels end to end.
    """
    from repro.algorithms.semi_clustering import SemiClustering

    class Trap(SemiClustering):
        def _fold_vertex(self, *args, **kwargs):  # pragma: no cover - trap
            raise AssertionError("Python cluster fold called on the numeric plane")

    graph = generators.preferential_attachment(150, out_degree=4, seed=9).freeze()
    config, max_supersteps = algorithm_settings("semi-clustering")
    result = diff_engine.run(
        graph, Trap(), config,
        EngineConfig(num_workers=4, max_supersteps=max_supersteps, runtime_seed=1),
    )
    assert result.num_iterations > 1


def test_semicluster_numeric_declines_on_string_id_collision(diff_engine):
    """Ids whose str() forms collide fall back to the object fold, correctly.

    The numeric plane reproduces the scalar sort tie-break
    (``sorted(map(str, members))``) through a per-vertex string rank, which
    is only a total order when all ``str(id)`` values are distinct.  A graph
    mixing the int ``0`` and the string ``"0"`` must therefore decline the
    encoding -- and still match the scalar path through the object fold.
    """
    from repro.graph.digraph import DiGraph

    graph = DiGraph(name="collide")
    vertices = [0, "0", 1, "2", 3]
    for vertex in vertices:
        graph.add_vertex(vertex)
    for i, source in enumerate(vertices):
        graph.add_edge(source, vertices[(i + 1) % len(vertices)], 1.0 + i)
        graph.add_edge(source, vertices[(i + 2) % len(vertices)], 2.0)
    config, max_supersteps = algorithm_settings("semi-clustering")
    scalar, vectorized = run_both_paths(
        diff_engine, graph, lambda: algorithm_by_name("semi-clustering"), config,
        max_supersteps=max_supersteps, num_workers=2,
    )
    assert_profiles_identical(scalar, vectorized)


@pytest.mark.parametrize("label,builder", GRAPH_POOL, ids=GRAPH_IDS)
def test_pagerank_with_combiner(diff_engine, label, builder):
    graph = builder()
    scalar, vectorized = run_both_paths(
        diff_engine, graph, PageRank, PageRankConfig(tolerance=1e-5),
        use_combiner=True,
    )
    assert_profiles_identical(scalar, vectorized)


@pytest.mark.slow
@pytest.mark.parametrize("label,builder", LARGE_POOL, ids=[l for l, _ in LARGE_POOL])
def test_differential_large_graphs(diff_engine, label, builder):
    graph = builder()
    scalar, vectorized = run_both_paths(
        diff_engine, graph, PageRank, PageRankConfig(tolerance=1e-6)
    )
    assert_profiles_identical(scalar, vectorized)


@pytest.mark.slow
@pytest.mark.parametrize(
    "algorithm_name", [n for n in ALGORITHM_NAMES if supports_batch(n)]
)
def test_differential_ragged_large_graph(diff_engine, algorithm_name):
    """The batch planes hold up at a few thousand vertices, too."""
    graph = generators.preferential_attachment(1200, out_degree=5, seed=31)
    config, max_supersteps = algorithm_settings(algorithm_name)
    scalar, vectorized = run_both_paths(
        diff_engine,
        graph,
        lambda: algorithm_by_name(algorithm_name),
        config,
        max_supersteps=max_supersteps,
    )
    assert_profiles_identical(scalar, vectorized)


@pytest.mark.parametrize(
    "algorithm_name", [n for n in ALGORITHM_NAMES if supports_batch(n)]
)
def test_batch_path_is_actually_taken(diff_engine, algorithm_name):
    """Guard against silent fallback: compute() must not run on a batch plane."""

    algorithm = algorithm_by_name(algorithm_name)

    class Trap(type(algorithm)):
        def compute(self, ctx, messages, config):  # pragma: no cover - trap
            raise AssertionError("scalar compute called on the vectorized path")

    graph = generators.preferential_attachment(200, out_degree=4, seed=5).freeze()
    config, max_supersteps = algorithm_settings(algorithm_name)
    result = diff_engine.run(
        graph, Trap(), config,
        EngineConfig(num_workers=4, max_supersteps=max_supersteps, runtime_seed=1),
    )
    assert result.num_iterations > 1


def test_vectorized_flag_forces_scalar_path(diff_engine):
    """EngineConfig(vectorized=False) must run compute() even on CSR."""
    calls = []

    class CountingPageRank(PageRank):
        def compute(self, ctx, messages, config):
            calls.append(ctx.vertex_id)
            super().compute(ctx, messages, config)

    graph = generators.erdos_renyi(40, 0.1, seed=2).freeze()
    diff_engine.run(
        graph, CountingPageRank(), PageRankConfig(tolerance=1e-3),
        EngineConfig(num_workers=2, max_supersteps=5, runtime_seed=1, vectorized=False),
    )
    assert calls


def test_differential_with_runtime_noise(diff_engine):
    """Seeded runtime noise draws once per superstep on both paths."""
    engine = BSPEngine(
        cluster=ClusterSpec(num_nodes=1, workers_per_node=5),
        cost_profile=DEFAULT_PROFILE,
    )
    graph = generators.preferential_attachment(150, out_degree=4, seed=11)
    scalar, vectorized = run_both_paths(
        engine, graph, PageRank, PageRankConfig(tolerance=1e-5)
    )
    assert_profiles_identical(scalar, vectorized)
