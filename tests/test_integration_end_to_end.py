"""End-to-end integration tests reproducing the paper's workflow in miniature.

These tests run the complete PREDIcT pipeline -- sample run with transform,
feature extrapolation, cost-model training (with and without history) and
runtime prediction -- against actual runs on small stand-in graphs, and check
the qualitative claims of the paper:

* the predicted number of iterations tracks the actual number of iterations,
* runtime prediction errors are bounded,
* adding history does not break the prediction (and typically improves R²),
* the transform function is required for PageRank iteration invariance,
* documented limitations (degenerate graphs) indeed degrade the prediction.
"""

import pytest

from repro.algorithms.pagerank import PageRank, PageRankConfig
from repro.algorithms.semi_clustering import SemiClustering, SemiClusteringConfig
from repro.bsp.engine import BSPEngine, EngineConfig
from repro.cluster.cost_profile import CostProfile
from repro.core.errors import evaluate_prediction
from repro.core.history import HistoryStore
from repro.core.predictor import Predictor
from repro.core.transform import IDENTITY_TRANSFORM
from repro.exceptions import ConfigurationError
from repro.graph import generators
from repro.sampling.biased_random_jump import BiasedRandomJump
from repro.utils.stats import relative_error


@pytest.fixture(scope="module")
def quiet_engine():
    return BSPEngine(cost_profile=CostProfile(noise_std=0.0, congestion_factor=0.0))


@pytest.fixture(scope="module")
def engine_config_module():
    return EngineConfig(num_workers=4, max_supersteps=150, runtime_seed=5)


@pytest.fixture(scope="module")
def web_graph():
    return generators.preferential_attachment(1200, out_degree=7, seed=21, name="web-standin")


class TestPageRankEndToEnd:
    def test_iteration_and_runtime_prediction(self, quiet_engine, engine_config_module, web_graph):
        config = PageRankConfig.for_tolerance_level(0.001, web_graph.num_vertices)
        actual = quiet_engine.run(web_graph, PageRank(), config, engine_config_module)
        predictor = Predictor(
            quiet_engine, PageRank(), sampler=BiasedRandomJump(seed=4),
            training_ratios=(0.05, 0.1, 0.15, 0.2), engine_config=engine_config_module,
        )
        prediction = predictor.predict(web_graph, config, sampling_ratio=0.1)

        assert relative_error(prediction.predicted_iterations, actual.num_iterations) <= 0.5
        assert relative_error(
            prediction.predicted_superstep_runtime, actual.superstep_runtime
        ) <= 0.6
        assert prediction.cost_model.r_squared > 0.9

        evaluation = evaluate_prediction(prediction, actual, dataset="web-standin")
        assert evaluation.algorithm == "pagerank"
        assert abs(evaluation.remote_bytes_error) <= 0.6

    def test_transform_needed_for_iteration_invariance(self, quiet_engine, engine_config_module, web_graph):
        config = PageRankConfig.for_tolerance_level(0.001, web_graph.num_vertices)
        actual = quiet_engine.run(web_graph, PageRank(), config, engine_config_module)

        with_transform = Predictor(
            quiet_engine, PageRank(), sampler=BiasedRandomJump(seed=4),
            training_ratios=(0.1,), engine_config=engine_config_module,
        ).predict_iterations(web_graph, config, sampling_ratio=0.1)
        without_transform = Predictor(
            quiet_engine, PageRank(), sampler=BiasedRandomJump(seed=4),
            transform=IDENTITY_TRANSFORM,
            training_ratios=(0.1,), engine_config=engine_config_module,
        ).predict_iterations(web_graph, config, sampling_ratio=0.1)

        error_with = relative_error(with_transform, actual.num_iterations)
        error_without = relative_error(without_transform, actual.num_iterations)
        # Without threshold scaling the sample run systematically converges at
        # the wrong iteration; the transform must not be worse.
        assert error_with <= error_without


class TestHistoryImprovesTraining:
    def test_history_keeps_prediction_sound(self, quiet_engine, engine_config_module, web_graph):
        other_graph = generators.copying_model(900, out_degree=6, seed=31, name="other-web")
        config_web = PageRankConfig.for_tolerance_level(0.001, web_graph.num_vertices)
        config_other = PageRankConfig.for_tolerance_level(0.001, other_graph.num_vertices)

        actual_web = quiet_engine.run(web_graph, PageRank(), config_web, engine_config_module)
        actual_other = quiet_engine.run(other_graph, PageRank(), config_other, engine_config_module)

        history = HistoryStore()
        history.record(actual_other, dataset="other-web")

        predictor = Predictor(
            quiet_engine, PageRank(), sampler=BiasedRandomJump(seed=4), history=history,
            training_ratios=(0.05, 0.1, 0.15), engine_config=engine_config_module,
        )
        prediction = predictor.predict(
            web_graph, config_web, sampling_ratio=0.1, dataset_name="web-standin"
        )
        assert prediction.used_history
        assert prediction.cost_model.r_squared > 0.9
        assert relative_error(
            prediction.predicted_superstep_runtime, actual_web.superstep_runtime
        ) <= 0.6


class TestSemiClusteringEndToEnd:
    def test_runtime_prediction_with_variable_iteration_cost(self, quiet_engine, engine_config_module):
        graph = generators.preferential_attachment(500, out_degree=5, seed=41, name="sc-graph")
        config = SemiClusteringConfig(tolerance=0.01, v_max=6)
        actual = quiet_engine.run(graph, SemiClustering(), config, engine_config_module)
        predictor = Predictor(
            quiet_engine, SemiClustering(), sampler=BiasedRandomJump(seed=4),
            training_ratios=(0.1, 0.2), engine_config=engine_config_module,
        )
        prediction = predictor.predict(graph, config, sampling_ratio=0.15)
        assert prediction.predicted_iterations >= 2
        # Semi-clustering runtimes vary per iteration; the per-iteration model
        # must still land within a factor-of-two band on this small graph.
        assert relative_error(
            prediction.predicted_superstep_runtime, actual.superstep_runtime
        ) <= 1.0


class TestDocumentedLimitations:
    def test_degenerate_chain_graph_is_a_bad_fit(self, quiet_engine, engine_config_module):
        # §3.5: degenerate structures (lists) are not amenable to the
        # methodology -- sampling a chain changes the diameter drastically, so
        # the iteration prediction is far off.
        chain = generators.chain(400)
        config = PageRankConfig.for_tolerance_level(0.001, chain.num_vertices)
        actual = quiet_engine.run(chain, PageRank(), config, engine_config_module)
        predictor = Predictor(
            quiet_engine, PageRank(), sampler=BiasedRandomJump(seed=4),
            training_ratios=(0.1,), engine_config=engine_config_module,
        )
        predicted_iterations = predictor.predict_iterations(chain, config, sampling_ratio=0.1)
        assert relative_error(predicted_iterations, actual.num_iterations) > 0.3

    def test_sample_without_edges_is_rejected(self, quiet_engine, engine_config_module):
        # A graph of isolated vertices cannot produce a usable sample: the
        # induced sample has no edges, so the sample run is refused instead of
        # silently predicting nonsense.
        from repro.graph.digraph import DiGraph

        isolated = DiGraph(name="isolated")
        for vertex in range(100):
            isolated.add_vertex(vertex)
        config = PageRankConfig.for_tolerance_level(0.01, isolated.num_vertices)
        predictor = Predictor(
            quiet_engine, PageRank(), sampler=BiasedRandomJump(seed=1),
            training_ratios=(0.1,), engine_config=engine_config_module,
        )
        with pytest.raises(ConfigurationError):
            predictor.predict(isolated, config, sampling_ratio=0.1)
