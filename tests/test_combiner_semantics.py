"""Regression tests pinning the combiner's sent-vs-delivered semantics.

Giraph combiners fold messages addressed to the same destination vertex.
That creates two distinct statistics which earlier versions of the engine
conflated in the memory accounting:

* **sent** counts/bytes (pre-combining) -- what the sending worker's compute
  loop pays for and what the paper's Table 1 features measure.  These must be
  *identical* with and without a combiner.
* **delivered** counts/bytes (post-combining) -- what actually occupies the
  receiving worker's message buffers.  These must *shrink* with a combiner,
  and they (not the sent bytes) must feed the out-of-memory model, because
  Giraph buffers only the combined payloads.

See the semantics note in :mod:`repro.bsp.messages`.
"""

from __future__ import annotations

import pytest

from repro.algorithms.pagerank import PageRank, PageRankConfig
from repro.bsp.engine import BSPEngine, EngineConfig
from repro.bsp.messages import MessageStore, SumCombiner
from repro.cluster.cost_profile import DETERMINISTIC_PROFILE
from repro.cluster.spec import ClusterSpec
from repro.exceptions import OutOfMemoryError
from repro.graph import generators


class TestMessageStoreCounts:
    def test_without_combiner_sent_equals_delivered(self):
        store = MessageStore()
        for payload in (1.0, 2.0, 3.0):
            store.deliver("v", payload, 8)
        assert store.buffered_messages == 3
        assert store.delivered_messages == 3
        assert store.buffered_bytes == 24
        assert store.messages_for("v") == [1.0, 2.0, 3.0]

    def test_with_combiner_sent_counts_delivered_shrinks(self):
        store = MessageStore(combiner=SumCombiner())
        for payload in (1.0, 2.0, 3.0):
            store.deliver("v", payload, 8)
        store.deliver("w", 5.0, 8)
        # Sent stream: every deliver() call counts.
        assert store.buffered_messages == 4
        assert store.buffered_bytes == 32
        # Delivered buffer: one combined payload per destination.
        assert store.delivered_messages == 2
        assert store.messages_for("v") == [6.0]
        assert store.messages_for("w") == [5.0]


class TestEngineCombinerCounters:
    """Table 1 feature counters must be pre-combining, on both engine paths."""

    @pytest.fixture()
    def engine(self):
        return BSPEngine(
            cluster=ClusterSpec(num_nodes=1, workers_per_node=4),
            cost_profile=DETERMINISTIC_PROFILE,
        )

    @pytest.mark.parametrize("vectorized", [False, True], ids=["scalar", "vectorized"])
    def test_sent_counters_identical_with_and_without_combiner(self, engine, vectorized):
        graph = generators.preferential_attachment(250, out_degree=5, seed=9)
        if vectorized:
            graph = graph.freeze()
        pagerank = PageRank()
        config = PageRankConfig(tolerance=1e-12)

        def run(use_combiner):
            return engine.run(
                graph, pagerank, config,
                EngineConfig(
                    num_workers=4, max_supersteps=4, runtime_seed=2,
                    use_combiner=use_combiner, vectorized=vectorized,
                ),
            )

        plain, combined = run(False), run(True)
        for left, right in zip(plain.iterations, combined.iterations):
            assert left.graph_feature_dict() == right.graph_feature_dict()
            for counters_left, counters_right in zip(
                left.worker_counters, right.worker_counters
            ):
                assert counters_left.feature_dict() == counters_right.feature_dict()


class TestMemoryUsesDeliveredBytes:
    """The OOM model sees the combined buffers, not the raw sent stream.

    ``complete(n)`` concentrates n*(n-1) PageRank messages on n destination
    buckets; with the allocation below, the raw (sent) footprint exceeds the
    budget while the combined (delivered) footprint fits.  A single worker
    makes the numbers deterministic.
    """

    ALLOCATION = 25_000  # bytes: between combined (~19k) and raw (~46k)

    def _engine(self):
        return BSPEngine(
            cluster=ClusterSpec(
                num_nodes=1, workers_per_node=1,
                worker_memory_bytes=self.ALLOCATION,
            ),
            cost_profile=DETERMINISTIC_PROFILE,
        )

    def _config(self, use_combiner):
        return EngineConfig(
            num_workers=1, max_supersteps=3, runtime_seed=1,
            enforce_memory=True, use_combiner=use_combiner,
        )

    @pytest.mark.parametrize("frozen", [False, True], ids=["scalar", "vectorized"])
    def test_combiner_avoids_oom(self, frozen):
        graph = generators.complete(30)
        if frozen:
            graph = graph.freeze()
        result = self._engine().run(
            graph, PageRank(), PageRankConfig(tolerance=1e-12), self._config(True)
        )
        # Ranks on a complete graph are uniform, so PageRank converges after
        # two supersteps -- both of which passed the memory check with the
        # full message load buffered (combined) for delivery.
        assert result.num_iterations == 2
        assert result.iterations[0].total_messages == graph.num_edges

    @pytest.mark.parametrize("frozen", [False, True], ids=["scalar", "vectorized"])
    def test_without_combiner_same_run_ooms(self, frozen):
        graph = generators.complete(30)
        if frozen:
            graph = graph.freeze()
        with pytest.raises(OutOfMemoryError):
            self._engine().run(
                graph, PageRank(), PageRankConfig(tolerance=1e-12), self._config(False)
            )
