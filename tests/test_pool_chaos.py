"""Barrier fault classification and pool teardown under hostile children.

The chaos matrix: each way a worker process can go wrong maps to exactly one
:class:`repro.bsp.resilience.BarrierFault` kind --

==========================  ============  ================================
injected fault              classified    detector
==========================  ============  ================================
SIGKILL (dead pid)          ``crash``     pipe EOF / dead pid at deadline
SIGSTOP (alive but late)    ``straggler``  liveness probe at the deadline
raise in the algorithm      ``poison``    child ``error`` report
stream metadata mutation    ``corrupt``   owner-side stream validation
==========================  ============  ================================

-- and every path, recovered or not, leaves ``/dev/shm`` clean.  Also pins
the ``ProcessWorkerPool.close()`` escalation: a child that ignores SIGTERM
(SIGSTOP queues it undelivered) must be SIGKILLed and reaped, never
abandoned as a zombie.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from test_differential_engine import algorithm_settings
from test_parallel_backend import shm_segments

from repro.algorithms.registry import algorithm_by_name
from repro.bsp.engine import BSPEngine, EngineConfig
from repro.bsp.parallel.pool import ProcessWorkerPool
from repro.bsp.resilience import BarrierFault, FaultPlan
from repro.cluster.cost_profile import CostProfile
from repro.cluster.spec import ClusterSpec
from repro.graph import generators

PROCESSES = 2


@pytest.fixture(scope="module")
def chaos_engine():
    engine = BSPEngine(
        cluster=ClusterSpec(num_nodes=1, workers_per_node=5),
        cost_profile=CostProfile(noise_std=0.0, congestion_factor=0.0),
    )
    yield engine
    engine.close_pools()


@pytest.fixture(scope="module")
def diff_graph():
    return generators.preferential_attachment(150, out_degree=4, seed=3).freeze()


def run_with_fault(engine, graph, spec, **overrides):
    config, max_supersteps = algorithm_settings("pagerank")
    engine_config = EngineConfig(
        num_workers=5, max_supersteps=max_supersteps, runtime_seed=7,
        backend="process", processes=PROCESSES,
        fault_plan=FaultPlan.parse([spec]), **overrides,
    )
    return engine.run(graph, algorithm_by_name("pagerank"), config, engine_config)


# -------------------------------------------------------- classification
#: (spec, expected kind, expected processes, engine-config overrides).
#: ``corrupt`` leaves the blamed process unasserted -- the *detector* is
#: whichever process reduces the corrupt stream, not the injector.
CLASSIFICATION_MATRIX = [
    ("kill:1:2", "crash", [1], {}),
    ("stop:1:2", "straggler", [1], {"barrier_timeout_s": 1.5}),
    ("poison:1:2", "poison", [1], {}),
    ("corrupt:1:2", "corrupt", None, {}),
]


@pytest.mark.parametrize(
    "spec,expected_kind,expected_processes,overrides",
    CLASSIFICATION_MATRIX,
    ids=[kind for _, kind, _, _ in CLASSIFICATION_MATRIX],
)
def test_fault_classification(
    chaos_engine, diff_graph, spec, expected_kind, expected_processes, overrides
):
    """Without checkpointing every fault kind surfaces, correctly labelled,
    the pool is torn down (stragglers shot, not leaked), and /dev/shm is
    swept."""
    before = shm_segments()
    pool = chaos_engine.process_pool(PROCESSES)
    procs = list(pool._procs)
    with pytest.raises(BarrierFault) as excinfo:
        run_with_fault(chaos_engine, diff_graph, spec, **overrides)
    assert excinfo.value.kind == expected_kind
    if expected_processes is not None:
        assert excinfo.value.processes == expected_processes
    assert not pool.alive
    # Teardown reaped every child -- including a SIGSTOPped straggler.
    deadline = time.monotonic() + 10.0
    while any(p.is_alive() for p in procs) and time.monotonic() < deadline:
        time.sleep(0.05)
    assert all(not p.is_alive() for p in procs)
    if before is not None:
        leaked = shm_segments() - before
        assert not leaked, f"stale segments after {expected_kind}: {leaked}"


def test_crash_classification_with_deadline_armed(chaos_engine, diff_graph):
    """A dead worker is a crash whichever detector fires first -- the pipe
    EOF usually wins, but with a barrier deadline armed the timeout path's
    pid probe must reach the same classification."""
    with pytest.raises(BarrierFault) as excinfo:
        run_with_fault(
            chaos_engine, diff_graph, "kill:1:2", barrier_timeout_s=5.0
        )
    assert excinfo.value.kind == "crash"


def test_recovered_chaos_paths_leave_shm_clean(chaos_engine, diff_graph):
    """The recovery paths (respawn + rewind) sweep the dead child's arenas."""
    before = shm_segments()
    if before is None:  # pragma: no cover - non-Linux hosts
        pytest.skip("/dev/shm not available")
    for spec, overrides in (
        ("kill:1:2", {}),
        ("stop:0:2", {"barrier_timeout_s": 1.5}),
        ("corrupt:1:2", {}),
    ):
        result = run_with_fault(
            chaos_engine, diff_graph, spec, checkpoint_every=1, **overrides
        )
        assert result.recovery.rewinds == 1
        leaked = shm_segments() - before
        assert not leaked, f"stale segments after recovering {spec}: {leaked}"


# --------------------------------------------------------- close escalation
def test_close_reaps_sigstopped_child():
    """Regression: ``close()`` used to abandon a child that survived
    ``terminate()`` -- a SIGSTOPped process queues SIGTERM without dying, so
    only the SIGKILL escalation reaps it."""
    pool = ProcessWorkerPool(2)
    try:
        victim = pool._procs[1]
        # Let the child finish booting before stopping it, so it is not
        # stopped inside interpreter startup with the pipe half-open.
        deadline = time.monotonic() + 10.0
        while not victim.is_alive() and time.monotonic() < deadline:
            time.sleep(0.05)
        os.kill(victim.pid, signal.SIGSTOP)
        pool.JOIN_TIMEOUT = 0.2  # instance attrs: shrink the escalation
        pool.TERMINATE_TIMEOUT = 0.2
        pool.close()
        assert not victim.is_alive()
        assert victim.exitcode is not None
    finally:
        if pool.alive:  # pragma: no cover - failure cleanup
            os.kill(pool._procs[1].pid, signal.SIGCONT)
            pool.close()


def test_force_kill_ends_sigstopped_child():
    """Straggler recovery's kill path, unit-level."""
    pool = ProcessWorkerPool(2)
    try:
        victim = pool._procs[0]
        os.kill(victim.pid, signal.SIGSTOP)
        pool.TERMINATE_TIMEOUT = 0.2
        pool.force_kill([0])
        assert not victim.is_alive()
        pool.respawn([0])
        assert pool._procs[0].is_alive()
        assert pool._procs[0] is not victim
    finally:
        pool.close()


def test_respawn_after_sigkill_reuses_slot():
    pool = ProcessWorkerPool(2)
    try:
        victim = pool._procs[1]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=5.0)
        pool.respawn([1])
        assert pool._procs[1].is_alive()
        assert pool._procs[1].pid != victim.pid
        # The fresh pipe is live: a shutdown command is accepted.
        pool.send(1, ("shutdown",))
        pool._procs[1].join(timeout=5.0)
        assert not pool._procs[1].is_alive()
    finally:
        pool.close()
